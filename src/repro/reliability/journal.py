"""The write-ahead ledger journal: durable privacy accounting.

:class:`~repro.core.accounting.PrivacyLedger`'s two-phase reserve/commit
state lives in process memory; a crash mid-explore would silently forget
both committed spend and in-flight reservations, letting a restarted
service overspend the owner budget ``B``.  :class:`LedgerJournal` closes
that hole with the classic database move: an append-only, fsync'd,
checksummed log written **before** every in-memory mutation.

Record format
-------------

One record per line::

    <crc32 of payload, 8 hex chars> <canonical JSON payload>\\n

The payload is ``json.dumps(..., sort_keys=True)`` of a flat object that
always carries ``seq`` (strictly increasing) and ``op`` (``reserve`` /
``commit`` / ``release`` / ``deny``), plus the op's fields (``rid`` ties a
commit or release back to its reservation's ``seq``; ``eps_upper`` /
``eps_spent`` carry the losses; ``query`` / ``kind`` / ``mechanism`` /
``alpha`` / ``beta`` / ``analyst`` let recovery reconstruct transcript
entries).  JSON round-trips floats exactly, so recovered epsilons are
bit-identical to what was charged.

Write-ahead ordering and what each crash point means
----------------------------------------------------

Every record is appended (and, with ``sync=True``, fsync'd) *before* the
ledger mutates its state, so the journal is always a **superset** of what
memory knew:

* crash before the append -- neither journal nor memory saw the op; the
  mechanism never ran; nothing to recover;
* crash between append and mutation -- recovery replays the journaled op;
  for a ``reserve`` this *over*-counts (the mechanism never ran) which is
  the safe direction, never the unsafe one;
* crash after mutation -- journal and memory agree.

Recovery semantics (:class:`JournalRecovery`)
---------------------------------------------

Committed spend is replayed exactly; every reservation with no matching
commit or release is **conservatively charged at its worst case**
``eps_upper`` -- the crashed process may or may not have run the mechanism,
and the analyst may have seen the answer, so under-counting is forbidden
while over-counting merely wastes budget.  A torn or rotted **tail** (the
partially written last records of a crashed process) fails its checksum and
is truncated; corruption *before* valid records cannot come from a torn
write and raises :class:`~repro.core.exceptions.JournalCorruptError`
instead of silently dropping the committed spend recorded after it.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

from repro.core.exceptions import ApexError, JournalCorruptError
from repro.reliability.faults import fail_point

__all__ = ["JournalRecord", "JournalRecovery", "LedgerJournal", "read_journal"]

#: Journal ops understood by recovery.  Unknown ops in a valid record are
#: preserved in ``records`` but ignored by the replay (forward compat).
OPS = ("reserve", "commit", "release", "deny")

#: A parsed journal record: the payload object, as written.
JournalRecord = Mapping[str, Any]


def _encode(payload: Mapping[str, Any]) -> bytes:
    data = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(data) & 0xFFFFFFFF
    return b"%08x " % crc + data + b"\n"


def _decode(line: bytes) -> dict[str, Any] | None:
    """The payload of one complete line, or ``None`` when it fails the gate."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        declared = int(line[:8], 16)
    except ValueError:
        return None
    data = line[9:]
    if zlib.crc32(data) & 0xFFFFFFFF != declared:
        return None
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    seq = payload.get("seq")
    if not isinstance(seq, int) or not isinstance(payload.get("op"), str):
        return None
    return payload


def read_journal(
    path: str, *, repair: bool = False
) -> tuple[list[dict[str, Any]], int]:
    """Parse a journal file; return ``(records, truncated_bytes)``.

    Scans record by record.  The first bad record (checksum, JSON or framing
    failure, or a missing trailing newline) ends the scan: if *everything*
    from there to EOF is also bad, it is a torn tail -- ``truncated_bytes``
    reports its size and, with ``repair=True``, the file is physically
    truncated back to the last good record.  If any *valid* record follows
    the bad one, the damage is mid-file rot, not a torn write, and
    :class:`~repro.core.exceptions.JournalCorruptError` is raised (see the
    module docstring for why truncating there would be unsound).
    """
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except FileNotFoundError:
        return [], 0

    records: list[dict[str, Any]] = []
    offset = 0
    good_end = 0
    last_seq: int | None = None
    bad_at: int | None = None
    while offset < len(blob):
        newline = blob.find(b"\n", offset)
        if newline < 0:
            bad_at = offset  # unterminated final record: torn write
            break
        payload = _decode(blob[offset:newline])
        if payload is None:
            bad_at = offset
            break
        if last_seq is not None and payload["seq"] <= last_seq:
            # A sequence regression means interleaved writers or replayed
            # blocks -- not a torn tail; refuse rather than guess.
            raise JournalCorruptError(
                f"journal {path!r}: sequence regressed from {last_seq} to "
                f"{payload['seq']} at byte {offset}"
            )
        last_seq = payload["seq"]
        records.append(payload)
        offset = newline + 1
        good_end = offset

    if bad_at is not None:
        # Torn tail iff no complete valid record exists after the bad one.
        rest = blob[bad_at:]
        search = 0
        while True:
            newline = rest.find(b"\n", search)
            if newline < 0:
                break
            if _decode(rest[search:newline]) is not None:
                raise JournalCorruptError(
                    f"journal {path!r}: corrupt record at byte {bad_at} is "
                    f"followed by valid records -- mid-file corruption, "
                    f"refusing to truncate committed history"
                )
            search = newline + 1
        if repair:
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
        return records, len(blob) - good_end
    return records, 0


@dataclass(frozen=True)
class JournalRecovery:
    """What a replayed journal says the ledger state must be, at minimum.

    :ivar committed: the ``commit`` records, in commit order.
    :ivar denials: the ``deny`` records, in order.
    :ivar inflight: ``reserve`` records with no matching commit/release --
        the crashed process's in-flight queries, each conservatively charged
        at its ``eps_upper``.
    :ivar committed_epsilon: exact replayed spend.
    :ivar inflight_epsilon: the conservative surcharge for in-flight work.
    :ivar truncated_bytes: size of the torn tail dropped during the scan
        (``0`` for a clean shutdown).
    """

    records: tuple[JournalRecord, ...]
    committed: tuple[JournalRecord, ...]
    denials: tuple[JournalRecord, ...]
    inflight: tuple[JournalRecord, ...]
    committed_epsilon: float
    inflight_epsilon: float
    truncated_bytes: int

    @property
    def spent(self) -> float:
        """The recovered spend: exact commits + conservative in-flight."""
        return self.committed_epsilon + self.inflight_epsilon

    @property
    def empty(self) -> bool:
        return not self.records

    @classmethod
    def from_records(
        cls, records: Iterable[JournalRecord], truncated_bytes: int = 0
    ) -> "JournalRecovery":
        """Replay parsed records into the recovered accounting state."""
        records = tuple(records)
        inflight: dict[int, JournalRecord] = {}
        committed: list[JournalRecord] = []
        denials: list[JournalRecord] = []
        committed_epsilon = 0.0
        for record in records:
            op = record["op"]
            if op == "reserve":
                inflight[record["seq"]] = record
            elif op == "commit":
                rid = record.get("rid")
                if rid is not None:
                    inflight.pop(rid, None)
                committed.append(record)
                committed_epsilon += float(record.get("eps_spent", 0.0))
            elif op == "release":
                rid = record.get("rid")
                if rid is not None:
                    inflight.pop(rid, None)
            elif op == "deny":
                denials.append(record)
            # unknown ops: kept in `records`, ignored by the replay
        pending = tuple(inflight.values())
        return cls(
            records=records,
            committed=tuple(committed),
            denials=tuple(denials),
            inflight=pending,
            committed_epsilon=committed_epsilon,
            inflight_epsilon=sum(float(r.get("eps_upper", 0.0)) for r in pending),
            truncated_bytes=truncated_bytes,
        )


class LedgerJournal:
    """An append-only, fsync'd, checksummed ledger journal on one file.

    Opening the journal scans (and, for a torn tail, repairs) whatever a
    previous process left behind; the replayed state is available as
    :attr:`recovery` and must be adopted by exactly one ledger or pool
    (:meth:`~repro.core.accounting.PrivacyLedger.adopt_recovery`) before
    new operations are journaled.  Appends are thread-safe; the journal is
    single-writer by design -- one service process owns one journal file
    (the sharded/multi-process story goes through one journal per process).

    :param path: the journal file (created if missing; parent directories
        are created too).
    :param sync: ``True`` (default) fsyncs every append -- the durability
        the recovery guarantee is stated for.  ``False`` trades crash
        durability for speed (still torn-tail-safe thanks to the per-record
        checksum); useful for tests and for measuring the fsync cost.
    """

    def __init__(self, path: str, *, sync: bool = True) -> None:
        self._path = os.path.abspath(str(path))
        self._sync = bool(sync)
        self._lock = threading.Lock()
        parent = os.path.dirname(self._path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        records, truncated = read_journal(self._path, repair=True)
        self._recovery = JournalRecovery.from_records(records, truncated)
        self._next_seq = (records[-1]["seq"] + 1) if records else 1
        self._appended = 0
        self._handle = open(self._path, "ab")
        if self._sync:
            # Make the (possibly just-created, possibly just-truncated)
            # file itself durable before the first record relies on it.
            os.fsync(self._handle.fileno())
            self._fsync_dir(parent)

    # -- accessors ---------------------------------------------------------------

    @property
    def path(self) -> str:
        return self._path

    @property
    def sync(self) -> bool:
        return self._sync

    @property
    def recovery(self) -> JournalRecovery:
        """The state replayed from whatever was on disk when we opened."""
        return self._recovery

    def stats(self) -> dict[str, int]:
        """Counters: records recovered, records appended, torn bytes dropped."""
        with self._lock:
            return {
                "recovered_records": len(self._recovery.records),
                "recovered_inflight": len(self._recovery.inflight),
                "truncated_bytes": self._recovery.truncated_bytes,
                "appended_records": self._appended,
                "next_seq": self._next_seq,
            }

    # -- append ------------------------------------------------------------------

    def append(self, op: str, **fields: Any) -> int:
        """Durably append one record; returns its ``seq``.

        The record is on disk (and fsync'd, when ``sync=True``) before this
        returns -- callers mutate in-memory state only *after* that, which
        is the whole write-ahead contract.
        """
        if op not in OPS:
            raise ApexError(f"unknown journal op {op!r}; expected one of {OPS}")
        with self._lock:
            if self._handle.closed:
                raise ApexError(f"journal {self._path!r} is closed")
            seq = self._next_seq
            self._next_seq += 1
            line = _encode({"op": op, "seq": seq, **fields})
            fail_point("journal.append.before_write")
            self._handle.write(line)
            self._handle.flush()
            fail_point("journal.append.before_fsync")
            if self._sync:
                os.fsync(self._handle.fileno())
            fail_point("journal.append.after_fsync")
            self._appended += 1
            return seq

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "LedgerJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    @staticmethod
    def _fsync_dir(parent: str) -> None:
        """Best-effort fsync of the containing directory (entry durability)."""
        try:
            fd = os.open(parent or ".", os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LedgerJournal(path={self._path!r}, sync={self._sync})"
