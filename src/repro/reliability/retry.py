"""Retry-with-exponential-backoff for transient failures.

Used by the artifact store's IO paths: a flaky disk, a saturated NFS mount
or an injected ``store.load.read`` fault gets a few quick retries before the
store gives up (and, past its degradation threshold, falls back to the
in-memory tiers entirely -- see ``docs/reliability.md``).
"""

from __future__ import annotations

import time
from typing import Callable, TypeVar

T = TypeVar("T")

__all__ = ["retry_with_backoff"]


def retry_with_backoff(
    fn: Callable[[], T],
    *,
    retries: int,
    base_delay: float,
    retry_on: tuple[type[BaseException], ...] = (OSError,),
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Call ``fn``, retrying up to ``retries`` times on ``retry_on`` failures.

    Sleeps ``base_delay * 2**attempt`` between attempts (0-indexed), so
    ``retries=2, base_delay=0.01`` sleeps 10ms then 20ms.  The final
    exception propagates unchanged.  ``on_retry(attempt, exc)`` is invoked
    before each sleep -- callers use it to count retries.
    """
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    attempt = 0
    while True:
        try:
            return fn()
        except retry_on as exc:
            if attempt >= retries:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            time.sleep(base_delay * (2.0**attempt))
            attempt += 1
