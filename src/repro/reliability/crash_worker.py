"""Subprocess worker driven by the reliability exerciser and crash tests.

``python -m repro.reliability.crash_worker --journal PATH --ops JSON ...``
stands up a real :class:`~repro.service.ExplorationService` over the
deterministic bench table, attaches the write-ahead
:class:`~repro.reliability.journal.LedgerJournal` at ``PATH`` (recovering
whatever a previous incarnation left there), arms any failpoints named in
``REPRO_FAILPOINTS``, and executes a scripted list of operations.  After
each operation completes it prints **one JSON line to stdout and flushes
it** -- that line is the operation's *acknowledgement*.  When the process
is killed mid-script (by an armed ``crash`` failpoint or an external
``kill -9``), the parent knows exactly which operations were acknowledged
before the crash and can check the recovery invariants:

* every acknowledged, answered explore's ``epsilon_spent`` must be covered
  by the next incarnation's recovered spend (**no under-counting**);
* recovered spend never exceeds the budget ``B`` and the recovered merged
  transcript passes the Theorem 6.2 validity check;
* given identical seeds/scripts, two incarnations recovering from copies
  of the same journal produce **bit-identical** acknowledgement streams.

Supported operations (``--ops`` is a JSON list of objects):

==============  ================================================================
``op``          fields
==============  ================================================================
``explore``     ``analyst``, ``bins`` (histogram width), ``alpha_frac``
                (alpha as a fraction of the table size), ``name``, and an
                optional ``attribute`` (default ``amount``) whose histogram
                range is taken from the table schema's declared domain
``preview``     same fields as ``explore``; costs no privacy
``append``      ``n`` rows appended to the table, generated from ``seed``
``append_rows`` ``rows``: explicit ``{attribute: value}`` dicts to append
                (how generated microsimulation batches reach the worker)
``compact``     fold the table's small shards together
``crash``       ``os.kill(SIGKILL)`` -- an unconditional scripted crash
==============  ================================================================

By default the worker hosts the deterministic bench table;
``--workloads-config`` (a :class:`~repro.workloads.config.GeneratorConfig`
JSON object) hosts a generated microsimulation population instead, so the
exerciser can crash-test the engine under generated longitudinal streams.

A final ``{"event": "done", ...}`` line carries the incarnation's closing
books (total spent, transcript validity, ledger-invariant check) so a
*cleanly finished* worker can be audited too.  Keeping this scenario in an
importable module (rather than inline ``-c`` scripts) keeps it identical
across the exerciser, the crash-recovery tests and the benchmark suite.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys

from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import ApexError
from repro.mechanisms.registry import default_registry
from repro.queries.builders import histogram_workload
from repro.queries.query import WorkloadCountingQuery
from repro.reliability.faults import arm_from_env
from repro.reliability.journal import LedgerJournal
from repro.store import ArtifactStore

__all__ = ["run_script", "main"]

#: Exit code for a script that ran to completion (distinct from crash kills).
EXIT_OK = 0


def _emit(payload: dict[str, object]) -> None:
    """One acknowledgement line, durable in the pipe before we move on."""
    sys.stdout.write(json.dumps(payload, sort_keys=True))
    sys.stdout.write("\n")
    sys.stdout.flush()


def _append_rows(n: int, seed: int) -> list[dict[str, object]]:
    """Deterministic rows matching the bench schema (amount/age/region/channel)."""
    import numpy as np

    rng = np.random.default_rng(seed)
    regions = ["north", "south", "east", "west"]
    channels = ["web", "store", "phone"]
    rows: list[dict[str, object]] = []
    for _ in range(n):
        rows.append(
            {
                "region": regions[int(rng.integers(0, len(regions)))],
                "channel": channels[int(rng.integers(0, len(channels)))],
                "amount": float(rng.uniform(0, 10_000)),
                "age": float(rng.integers(0, 101)),
            }
        )
    return rows


def run_script(
    journal_path: str,
    ops: list[dict[str, object]],
    *,
    budget: float,
    n_rows: int,
    seed: int,
    mc_samples: int,
    store_dir: str | None = None,
    request_deadline: float | None = None,
    workloads_config: dict | None = None,
    trace_out: str | None = None,
) -> int:
    """Execute ``ops`` against a journaled service; ack each op on stdout.

    With ``trace_out``, every request is traced (full sampling) and the span
    trees are dumped as a Chrome trace-event file when the incarnation ends
    -- cleanly or by a propagating error.  A SIGKILL mid-script writes
    nothing (nothing can), but the *recovery* incarnations of a history
    always finish, so a failing history still yields causally-ordered
    traces of the runs that exposed it.
    """
    from repro.bench.microbench import build_bench_table
    from repro.service import ExplorationService

    arm_from_env()
    tracer = None
    if trace_out is not None:
        from repro.obs.tracing import Tracer, install_tracer

        tracer = Tracer(1.0, keep_traces=4096, seed=seed)
        install_tracer(tracer)
    if workloads_config is not None:
        from repro.workloads import GeneratorConfig, MicrosimulationGenerator

        table = MicrosimulationGenerator(
            GeneratorConfig.from_json(workloads_config)
        ).build_table()
    else:
        table = build_bench_table(n_rows, seed=seed)
    journal = LedgerJournal(journal_path)
    service = ExplorationService(
        table,
        budget=budget,
        registry=default_registry(mc_samples=mc_samples),
        seed=seed,
        batch_window=0.0,
        store=None if store_dir is None else ArtifactStore(store_dir),
        journal=journal,
        request_deadline=request_deadline,
    )
    recovery = journal.recovery
    _emit(
        {
            "event": "recovered",
            "spent": service.budget_spent,
            "records": len(recovery.records),
            "inflight": len(recovery.inflight),
            "truncated_bytes": recovery.truncated_bytes,
            "valid": service.validate(),
        }
    )

    analysts: set[str] = set()

    def _handle(analyst: str):
        if analyst not in analysts:
            service.register_analyst(analyst)
            analysts.add(analyst)
        return analyst

    try:
        for index, op in enumerate(ops):
            kind = str(op["op"])
            ack: dict[str, object] = {"event": "ack", "index": index, "op": kind}
            if kind in ("explore", "preview"):
                analyst = _handle(str(op.get("analyst", "a0")))
                bins = int(op.get("bins", 8))
                alpha_frac = float(op.get("alpha_frac", 0.05))
                name = str(op.get("name", f"q-{index}"))
                attribute = str(op.get("attribute", "amount"))
                domain = table.schema[attribute].domain
                query = WorkloadCountingQuery(
                    histogram_workload(
                        attribute,
                        start=float(domain.low),
                        stop=float(domain.high),
                        bins=bins,
                    ),
                    name=name,
                )
                accuracy = AccuracySpec(
                    alpha=max(alpha_frac * len(table), 1.0), beta=5e-4
                )
                if kind == "preview":
                    costs = service.preview_cost(analyst, query, accuracy)
                    ack["costs"] = {
                        mech: [float(lo), float(hi)]
                        for mech, (lo, hi) in costs.items()
                    }
                else:
                    try:
                        result = service.explore(analyst, query, accuracy)
                    except ApexError as exc:
                        # Denials-by-exception (e.g. exhausted share) still
                        # ack: the op completed, it just spent nothing.
                        ack["error"] = type(exc).__name__
                        ack["epsilon_spent"] = 0.0
                    else:
                        ack["denied"] = bool(result.denied)
                        ack["epsilon_spent"] = float(result.epsilon_spent)
                        counts = (
                            result.noisy_counts
                            if result.noisy_counts is not None
                            else result.answer
                        )
                        if counts is not None:
                            ack["answer"] = [float(v) for v in counts]
            elif kind == "append":
                version = service.append_rows(
                    "default",
                    _append_rows(
                        int(op.get("n", 50)), int(op.get("seed", seed + index))
                    ),
                )
                ack["version"] = version.ordinal
            elif kind == "append_rows":
                rows = [dict(row) for row in op.get("rows", ())]
                if not rows:
                    raise ApexError("an append_rows op needs a non-empty 'rows' list")
                version = service.append_rows("default", rows)
                ack["version"] = version.ordinal
                ack["rows"] = len(rows)
            elif kind == "compact":
                ack["compacted"] = bool(table.compact())
            elif kind == "crash":
                _emit({"event": "crashing", "index": index})
                os.kill(os.getpid(), signal.SIGKILL)
            else:
                raise ApexError(f"unknown scripted op {kind!r}")
            ack["spent_total"] = service.budget_spent
            _emit(ack)

        service.assert_invariants()
        _emit(
            {
                "event": "done",
                "spent": service.budget_spent,
                "valid": service.validate(),
                "journal": journal.stats(),
            }
        )
        journal.close()
        return EXIT_OK
    finally:
        if tracer is not None:
            from repro.obs.export import write_chrome_trace

            write_chrome_trace(trace_out, tracer.drain())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.reliability.crash_worker")
    parser.add_argument("--journal", required=True, help="write-ahead journal path")
    parser.add_argument("--ops", required=True, help="JSON list of scripted ops")
    parser.add_argument("--budget", type=float, default=2.0)
    parser.add_argument("--rows", type=int, default=800)
    parser.add_argument("--seed", type=int, default=20190501)
    parser.add_argument("--mc-samples", type=int, default=200)
    parser.add_argument("--store", default=None, help="artifact store directory")
    parser.add_argument("--deadline", type=float, default=None)
    parser.add_argument(
        "--workloads-config",
        default=None,
        help="GeneratorConfig JSON: host a generated population instead of "
        "the bench table",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="dump this incarnation's span trees as a Chrome trace-event "
        "JSON file at exit",
    )
    args = parser.parse_args(argv)
    ops = json.loads(args.ops)
    if not isinstance(ops, list):
        raise SystemExit("--ops must be a JSON list")
    workloads_config = (
        None if args.workloads_config is None else json.loads(args.workloads_config)
    )
    if workloads_config is not None and not isinstance(workloads_config, dict):
        raise SystemExit("--workloads-config must be a JSON object")
    return run_script(
        args.journal,
        ops,
        budget=args.budget,
        n_rows=args.rows,
        seed=args.seed,
        mc_samples=args.mc_samples,
        store_dir=args.store,
        request_deadline=args.deadline,
        workloads_config=workloads_config,
        trace_out=args.trace_out,
    )


if __name__ == "__main__":
    sys.exit(main())
