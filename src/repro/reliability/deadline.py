"""Per-request deadlines with a cooperative, reservation-safe abort.

A mechanism run is GIL-releasing numpy that cannot be preempted mid-array,
so deadlines here are *cooperative*: the engine checks the request's
:class:`Deadline` at its natural safe points (after mechanism selection,
before the mechanism runs, and after it runs but before the privacy charge)
and aborts with :class:`~repro.core.exceptions.RequestTimeoutError` when it
has expired.  The abort always happens where the budget reservation can
still be released, so a timed-out explore never leaks reserved headroom and
never charges privacy -- its (never-published) draw costs nothing under the
standard DP accounting, exactly like a mechanism failure.
"""

from __future__ import annotations

import time

from repro.core.exceptions import ApexError, RequestTimeoutError

__all__ = ["Deadline"]


class Deadline:
    """A wall-clock budget for one request.

    :param seconds: time allowed from construction.  Must be positive.
    """

    __slots__ = ("_start", "_seconds")

    def __init__(self, seconds: float) -> None:
        if not seconds > 0:
            raise ApexError(f"deadline must be positive, got {seconds}")
        self._seconds = float(seconds)
        self._start = time.perf_counter()

    @classmethod
    def after(cls, seconds: float | None) -> "Deadline | None":
        """A deadline ``seconds`` from now, or ``None`` for no deadline."""
        return None if seconds is None else cls(seconds)

    @property
    def seconds(self) -> float:
        return self._seconds

    def elapsed(self) -> float:
        return time.perf_counter() - self._start

    def remaining(self) -> float:
        return self._seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, what: str) -> None:
        """Raise :class:`RequestTimeoutError` when the deadline has passed."""
        elapsed = self.elapsed()
        if elapsed > self._seconds:
            raise RequestTimeoutError(
                f"{what} exceeded its {self._seconds:.3g}s deadline "
                f"(elapsed {elapsed:.3g}s)",
                elapsed=elapsed,
                deadline=self._seconds,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(seconds={self._seconds}, remaining={self.remaining():.3g})"
