"""Property-based history exerciser: random ops, real crashes, checked recovery.

:func:`run_history` is the reliability subsystem's acceptance engine.  From
one integer seed it derives a random but **reproducible** scenario:

1. a script of service operations (explores, previews, streaming appends,
   shard compactions) across a few concurrent analyst sessions;
2. a *fault plan* -- either a scripted ``kill -9``, or a crash failpoint
   armed (via ``REPRO_FAILPOINTS``) at one of the accounting-critical sites
   in :data:`~repro.reliability.faults.FAILPOINT_SITES`, sometimes after a
   few survivable hits; optionally, garbage appended to the journal tail
   after the crash (a torn last write);
3. a first worker incarnation (:mod:`repro.reliability.crash_worker`, a
   real subprocess) that runs the script until the fault kills it -- or to
   completion when the fault never fires;
4. a second incarnation over the **same journal path** that recovers and
   runs a post-crash script.

After every recovery the invariants of ``docs/reliability.md`` are checked
and each violation is recorded in the returned report:

* **budget conservation** -- the recovered spend covers every epsilon that
  incarnation 1 *acknowledged* before dying (an answer the analyst saw is
  never forgotten), and total spend never exceeds ``B`` at any ack;
* **transcript validity** -- the recovered merged transcript passes the
  Theorem 6.2 check on startup and after every subsequent operation
  (incarnation 2 runs ``assert_invariants`` before exiting);
* **deterministic recovery** -- incarnation 2 is run *twice* against
  byte-for-byte copies of the post-crash journal (and artifact store); the
  two acknowledgement streams, noisy answers included, must be
  bit-identical.  Post-recovery appends and compactions are part of the
  replayed script, so snapshot-pinned answers surviving concurrent table
  mutation is covered by the same bit-identity check.

The tests (``tests/reliability/test_exerciser.py``) and the ``--suite
reliability`` benchmark both drive this module with bounded seed sets; CI
runs it as a named gate.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import subprocess
import sys

from repro.reliability.faults import ENV_VAR

__all__ = [
    "generate_script",
    "generate_workload_script",
    "run_history",
    "run_worker",
]

#: Failpoint sites where a crash is most likely to catch the books mid-flight.
CRASH_SITES = (
    "journal.append.before_write",
    "journal.append.before_fsync",
    "journal.append.after_fsync",
    "ledger.reserve.after_journal",
    "ledger.charge.before_journal",
    "ledger.charge.after_journal",
    "engine.explore.after_reserve",
    "engine.explore.after_run",
    "service.explore.admitted",
    "pool.commit.drain",
)

_EPS_TOLERANCE = 1e-9


def generate_script(rng: random.Random, n_ops: int) -> list[dict[str, object]]:
    """A random mixed-op script over up to three analyst sessions."""
    analysts = [f"a{i}" for i in range(rng.randint(1, 3))]
    script: list[dict[str, object]] = []
    for index in range(n_ops):
        roll = rng.random()
        if roll < 0.55:
            script.append(
                {
                    "op": "explore",
                    "analyst": rng.choice(analysts),
                    "bins": rng.choice([4, 8, 12]),
                    "alpha_frac": rng.choice([0.04, 0.06, 0.08]),
                    "name": f"q-{index}",
                }
            )
        elif roll < 0.75:
            script.append(
                {
                    "op": "preview",
                    "analyst": rng.choice(analysts),
                    "bins": rng.choice([4, 8, 12]),
                    "alpha_frac": rng.choice([0.04, 0.06, 0.08]),
                    "name": f"q-{index}",
                }
            )
        elif roll < 0.92:
            script.append(
                {"op": "append", "n": rng.randint(10, 120), "seed": rng.randint(0, 2**31)}
            )
        else:
            script.append({"op": "compact"})
    return script


def generate_workload_script(
    rng: random.Random, n_ops: int, workloads_config: dict
) -> list[dict[str, object]]:
    """A random mixed-op script over a generated microsimulation stream.

    Appends consume the stream's period batches *in order* (so the drift
    schedule survives the shuffle); explores and previews are income
    histograms against the generated population.  Once the configured
    periods are exhausted, would-be appends degrade to compactions.
    """
    from repro.workloads import GeneratorConfig, MicrosimulationGenerator

    generator = MicrosimulationGenerator(
        GeneratorConfig.from_json(workloads_config)
    )
    batches = list(generator.batches())
    analysts = [f"a{i}" for i in range(rng.randint(1, 3))]
    script: list[dict[str, object]] = []
    for index in range(n_ops):
        roll = rng.random()
        if roll < 0.5:
            script.append(
                {
                    "op": "explore",
                    "analyst": rng.choice(analysts),
                    "bins": rng.choice([4, 6, 8]),
                    "alpha_frac": rng.choice([0.06, 0.08, 0.1]),
                    "attribute": "income",
                    "name": f"wq-{index}",
                }
            )
        elif roll < 0.7:
            script.append(
                {
                    "op": "preview",
                    "analyst": rng.choice(analysts),
                    "bins": rng.choice([4, 6, 8]),
                    "alpha_frac": rng.choice([0.06, 0.08, 0.1]),
                    "attribute": "income",
                    "name": f"wq-{index}",
                }
            )
        elif roll < 0.92 and batches:
            batch = batches.pop(0)
            script.append(
                {
                    "op": "append_rows",
                    "rows": [dict(row) for row in batch.rows],
                    "period": batch.period,
                    "changes_fingerprint": batch.changes_fingerprint,
                }
            )
        else:
            script.append({"op": "compact"})
    return script


def run_worker(
    journal_path: str,
    ops: list[dict[str, object]],
    *,
    budget: float,
    n_rows: int,
    seed: int,
    mc_samples: int,
    store_dir: str | None = None,
    failpoints: str | None = None,
    workloads_config: dict | None = None,
    trace_out: str | None = None,
    timeout: float = 300.0,
) -> tuple[int, list[dict[str, object]], str]:
    """One crash-worker incarnation; returns (returncode, acked lines, stderr)."""
    import repro

    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    if failpoints:
        env[ENV_VAR] = failpoints
    else:
        env.pop(ENV_VAR, None)
    argv = [
        sys.executable,
        "-m",
        "repro.reliability.crash_worker",
        "--journal",
        journal_path,
        "--ops",
        json.dumps(ops),
        "--budget",
        repr(budget),
        "--rows",
        str(n_rows),
        "--seed",
        str(seed),
        "--mc-samples",
        str(mc_samples),
    ]
    if store_dir is not None:
        argv += ["--store", store_dir]
    if workloads_config is not None:
        argv += ["--workloads-config", json.dumps(workloads_config)]
    if trace_out is not None:
        argv += ["--trace-out", trace_out]
    completed = subprocess.run(
        argv, capture_output=True, text=True, env=env, timeout=timeout
    )
    events: list[dict[str, object]] = []
    for line in completed.stdout.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            # A crash can tear the last stdout line exactly like a torn
            # journal write; an unparseable tail is simply not an ack.
            continue
    return completed.returncode, events, completed.stderr


def _acked_epsilon(events: list[dict[str, object]]) -> float:
    """Total epsilon of answers the first incarnation acknowledged."""
    total = 0.0
    for event in events:
        if event.get("event") == "ack" and event.get("op") == "explore":
            total += float(event.get("epsilon_spent", 0.0))
    return total


def run_history(
    seed: int,
    *,
    work_dir: str,
    n_ops: int = 10,
    budget: float = 2.0,
    n_rows: int = 400,
    mc_samples: int = 150,
    use_store: bool = False,
    workloads_config: dict | None = None,
) -> dict[str, object]:
    """One full generate / run / crash / recover / check cycle for ``seed``.

    Returns a report dict whose ``violations`` list is empty iff every
    invariant held; callers assert on ``report["violations"] == []`` so a
    failure message carries the whole scenario (seed, fault plan, books).
    For a *failing* history the report's ``trace_files`` lists the Chrome
    trace-event dumps of the two recovery incarnations (kept under
    ``work_dir``); clean histories delete them and report an empty list.

    With ``workloads_config`` the scenario runs over a generated
    microsimulation stream instead of the bench table: the scripts come
    from :func:`generate_workload_script` and both incarnations host the
    config's population (the second rebuilds the same initial population
    from the config's seed, as a restarted service would).
    """
    rng = random.Random(seed)
    os.makedirs(work_dir, exist_ok=True)
    journal_path = os.path.join(work_dir, "ledger.wal")
    store_dir = os.path.join(work_dir, "store") if use_store else None

    if workloads_config is None:
        script = generate_script(rng, n_ops)
        post_script = generate_script(rng, max(2, n_ops // 2))
    else:
        script = generate_workload_script(rng, n_ops, workloads_config)
        post_script = generate_workload_script(
            rng, max(2, n_ops // 2), workloads_config
        )

    # -- fault plan ------------------------------------------------------------
    fault_kind = rng.choice(["failpoint", "scripted", "none"])
    failpoints = None
    if fault_kind == "failpoint":
        site = rng.choice(CRASH_SITES)
        count = rng.randint(1, 3)
        failpoints = f"{site}=crash:{count}"
    elif fault_kind == "scripted":
        script.insert(rng.randint(0, len(script)), {"op": "crash"})
    corrupt_tail = rng.random() < 0.4

    common = dict(
        budget=budget,
        n_rows=n_rows,
        seed=seed,
        mc_samples=mc_samples,
        workloads_config=workloads_config,
    )
    violations: list[str] = []

    returncode, events, stderr = run_worker(
        journal_path, script, store_dir=store_dir, failpoints=failpoints, **common
    )
    crashed = returncode != 0
    if returncode not in (0, -9):
        # A SIGKILL (rc -9) is the *planned* failure mode; any other nonzero
        # exit is the worker tripping over a real bug -- surface it.
        violations.append(
            f"incarnation 1 died abnormally: rc={returncode} {stderr.strip()!r}"
        )
    if fault_kind == "scripted" and returncode != -9:
        violations.append(f"scripted crash never fired (rc={returncode})")
    acked = _acked_epsilon(events)
    for event in events:
        spent = event.get("spent_total", event.get("spent"))
        if spent is not None and float(spent) > budget + _EPS_TOLERANCE:
            violations.append(f"incarnation 1 overspent: {spent} > {budget}")

    if corrupt_tail and os.path.exists(journal_path):
        with open(journal_path, "ab") as handle:
            handle.write(rng.randbytes(rng.randint(1, 40)))

    # -- recovery, twice over byte-identical copies ---------------------------
    streams: list[list[dict[str, object]]] = []
    trace_files: list[str] = []
    for copy in ("r1", "r2"):
        copy_dir = os.path.join(work_dir, copy)
        os.makedirs(copy_dir, exist_ok=True)
        copy_journal = os.path.join(copy_dir, "ledger.wal")
        if os.path.exists(journal_path):
            shutil.copy2(journal_path, copy_journal)
        copy_store = None
        if store_dir is not None:
            copy_store = os.path.join(copy_dir, "store")
            if os.path.isdir(store_dir):
                shutil.copytree(store_dir, copy_store, dirs_exist_ok=True)
        # Recovery incarnations always run to completion, so (unlike the
        # possibly SIGKILL'd incarnation 1) their traces are always written;
        # a failing history keeps them for post-mortem, a clean one doesn't.
        copy_trace = os.path.join(copy_dir, "trace.json")
        rc2, events2, stderr2 = run_worker(
            copy_journal,
            post_script,
            store_dir=copy_store,
            trace_out=copy_trace,
            **common,
        )
        if os.path.exists(copy_trace):
            trace_files.append(copy_trace)
        if rc2 != 0:
            violations.append(
                f"recovery incarnation ({copy}) failed: rc={rc2} {stderr2.strip()!r}"
            )
            streams.append(events2)
            continue
        recovered = next(
            (e for e in events2 if e.get("event") == "recovered"), None
        )
        if recovered is None:
            violations.append(f"({copy}) emitted no recovery report")
        else:
            if float(recovered["spent"]) + _EPS_TOLERANCE < acked:
                violations.append(
                    f"({copy}) under-counted: recovered {recovered['spent']} "
                    f"< acked {acked}"
                )
            if not recovered["valid"]:
                violations.append(f"({copy}) recovered transcript is invalid")
        done = next((e for e in events2 if e.get("event") == "done"), None)
        if done is None:
            violations.append(f"({copy}) never reached a clean shutdown")
        else:
            if not done["valid"]:
                violations.append(f"({copy}) final transcript is invalid")
            if float(done["spent"]) > budget + _EPS_TOLERANCE:
                violations.append(
                    f"({copy}) overspent after recovery: {done['spent']} > {budget}"
                )
        for event in events2:
            spent = event.get("spent_total")
            if spent is not None and float(spent) > budget + _EPS_TOLERANCE:
                violations.append(f"({copy}) overspent mid-script: {spent}")
        streams.append(events2)

    if len(streams) == 2 and streams[0] != streams[1]:
        violations.append(
            "recovery is nondeterministic: the two incarnations over "
            "identical journals diverged"
        )

    if not violations:
        for path in trace_files:
            try:
                os.remove(path)
            except OSError:
                pass
        trace_files = []

    return {
        "seed": seed,
        "fault": failpoints or fault_kind,
        "workloads": workloads_config is not None,
        "corrupt_tail": corrupt_tail,
        "crashed": crashed,
        "incarnation1_events": len(events),
        "acked_epsilon": acked,
        "recovered_spent": (
            None
            if not streams or not streams[0]
            else next(
                (
                    float(e["spent"])
                    for e in streams[0]
                    if e.get("event") == "recovered"
                ),
                None,
            )
        ),
        "trace_files": trace_files,
        "violations": violations,
        "ok": not violations,
    }
