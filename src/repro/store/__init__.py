"""Persistent artifact store with domain-fingerprint revalidation.

This package is the disk-backed third tier under the engine's in-memory
memos.  The expensive derivations of the APEx stack -- exact-domain
workload matrices (:class:`~repro.queries.workload.WorkloadMatrix`),
accuracy-to-privacy translation lists
(:class:`~repro.core.translator.AccuracyTranslator`), and WCQ-SM's
Monte-Carlo epsilon searches
(:class:`~repro.mechanisms.strategy_mechanism.StrategyMechanism`) -- are
pure functions of (workload structure, attribute domains, alpha, beta).
Three cooperating pieces exploit that purity:

* **domain fingerprints** (:meth:`repro.data.Table.domain_fingerprint`,
  bundled into :class:`repro.data.DomainStamp`) -- cheap per-attribute
  digests that change only when a mutation actually touches the attribute's
  domain, letting the memo layers *revalidate* (re-tag an existing artifact
  for the new version) instead of rebuilding after domain-preserving
  appends;
* **process-stable content digests** (:func:`repro.store.stable_digest`) --
  the on-disk key schema, derived from canonical value forms rather than
  per-process ``hash()``/identity;
* the :class:`ArtifactStore` itself -- content-addressed files with atomic
  write-rename publication, checksum-verified corruption-safe loads,
  advisory cross-process file locking, and size-capped LRU eviction.

Attach a store with ``APExEngine(..., store=ArtifactStore(path))`` or
``ExplorationService(..., store=...)``; a restarted service pointed at the
previous run's directory answers structurally identical ``preview_cost``
requests with zero matrix rebuilds and zero Monte-Carlo re-searches.  The
full key schema, revalidation contract and eviction policy are documented
in ``docs/store.md``; ``python -m repro.bench --suite store`` measures the
cold vs warm-start and revalidate-vs-rebuild wins (``BENCH_5.json``).
"""

from repro.store.artifact_store import DEFAULT_STORE_DIR, ArtifactStore
from repro.store.fingerprint import canonical_form, stable_digest

__all__ = [
    "ArtifactStore",
    "DEFAULT_STORE_DIR",
    "canonical_form",
    "stable_digest",
]
