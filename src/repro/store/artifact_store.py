"""A content-addressed, disk-backed artifact cache shared across processes.

The expensive artifacts of this engine -- exact-domain workload matrices,
accuracy-to-privacy translation lists, WCQ-SM's Monte-Carlo epsilon
searches -- are pure functions of (workload structure, attribute domains,
alpha, beta).  :class:`ArtifactStore` persists them under content digests
(:mod:`repro.store.fingerprint`) so a *restarted* process, or a sibling
process on the same machine, warm-starts instead of re-deriving everything.

Design constraints, all stdlib-only:

* **atomic publication** -- payloads are written to a temporary file in the
  target directory and ``os.replace``-d into place, so a reader can never
  observe a half-written artifact; concurrent writers of the same key both
  produce valid files and the last rename wins;
* **corruption safety** -- every file carries a magic header and a SHA-256
  checksum of its payload; a truncated, torn or bit-flipped file fails
  verification, is deleted best-effort, and the caller silently rebuilds
  (a cache must never turn disk rot into a wrong answer);
* **cross-process exclusion** -- size accounting and eviction serialize on
  an advisory file lock (``fcntl.flock`` where available, no-op otherwise;
  reads and writes themselves need no lock thanks to atomic renames).
  Acquisition is bounded: instead of blocking indefinitely on a stuck
  sibling process, a :class:`~repro.core.exceptions.StoreLockTimeout` is
  raised after ``lock_timeout`` seconds, and the internal callers (the
  eviction pass) degrade past it -- skip the pass, count it, keep serving;
* **bounded footprint** -- the store is LRU-evicted by file mtime (bumped
  on every hit) down to ``max_bytes`` whenever a write pushes it over;
* **fault tolerance** -- transient IO failures are retried with exponential
  backoff (``io_retries``); a persistent streak of failures trips a
  degradation gate that bypasses the disk tier entirely (loads miss, saves
  no-op -- the in-memory memo tiers above keep the engine correct) until a
  cooldown expires and the disk is re-probed.  Corruption-triggered
  rebuilds are no longer silent: each evicted artifact is named in a
  ``logging`` warning and counted in ``corrupt_loads``;
* **observability** -- per-process hit/miss/write/corrupt/evict/retry/
  degradation counters via :meth:`stats`, surfaced through
  ``APExEngine.cache_stats()``.

Payloads are serialized with :mod:`pickle`.  The store directory is trusted
local cache state (same trust domain as the process's own memory); the
checksum guards against *corruption*, not against an adversary who can
already write arbitrary files as this user.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
import threading
import time

from repro.core.exceptions import StoreLockTimeout
from repro.reliability.faults import fail_point
from repro.reliability.retry import retry_with_backoff

__all__ = ["ArtifactStore", "DEFAULT_STORE_DIR"]

logger = logging.getLogger("repro.store")

#: Conventional store location (git-ignored); pass any path to override.
DEFAULT_STORE_DIR = ".repro-store"

#: File format marker; bump when the on-disk layout changes so old caches
#: read as misses instead of unpickling garbage.
_MAGIC = b"repro-store/1\n"

#: Default size cap (bytes) before LRU eviction kicks in.
_DEFAULT_MAX_BYTES = 256 * 1024 * 1024

#: Eviction target: shrink to this fraction of the cap so each eviction
#: pass buys headroom instead of re-triggering on the next write.
_EVICT_TO_FRACTION = 0.8

try:  # POSIX advisory locking; Windows/exotic platforms fall back to no-op.
    import fcntl
except ImportError:  # pragma: no cover - platform-dependent
    fcntl = None  # type: ignore[assignment]


class _FileLock:
    """Advisory cross-process lock on one file (no-op without ``fcntl``).

    Acquisition is non-blocking with retry: rather than parking forever in
    ``flock`` behind a stuck or dead-slow sibling process, the lock is
    polled every ``interval`` seconds until ``timeout`` elapses, then
    :class:`~repro.core.exceptions.StoreLockTimeout` is raised.
    ``timeout=None`` restores the old block-forever behaviour.
    """

    def __init__(
        self,
        path: str,
        *,
        timeout: float | None = 5.0,
        interval: float = 0.02,
    ) -> None:
        self._path = path
        self._timeout = timeout
        self._interval = interval
        self._handle = None

    def __enter__(self) -> "_FileLock":
        if fcntl is None:
            return self
        fail_point("store.lock.acquire")
        handle = open(self._path, "a+b")
        try:
            if self._timeout is None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            else:
                deadline = time.monotonic() + self._timeout
                while True:
                    try:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
                        break
                    except OSError:
                        if time.monotonic() >= deadline:
                            raise StoreLockTimeout(
                                f"could not acquire the store lock "
                                f"{self._path!r} within {self._timeout:.3g}s "
                                "-- another process holds it"
                            ) from None
                        time.sleep(self._interval)
        except BaseException:
            handle.close()
            raise
        self._handle = handle
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._handle is not None:
            try:
                fcntl.flock(self._handle.fileno(), fcntl.LOCK_UN)
            finally:
                self._handle.close()
                self._handle = None


class ArtifactStore:
    """Persist derived artifacts under ``(kind, content digest)`` keys.

    :param root: directory holding the cache (created if missing).  One
        store directory may be shared by any number of processes.
    :param max_bytes: size cap; a write that pushes the store past it
        evicts least-recently-used artifacts down to 80% of the cap.
    :param lock_timeout: seconds to wait for the eviction/clear file lock
        before raising :class:`StoreLockTimeout` (``None`` blocks forever).
    :param io_retries: transient-``OSError`` retries per load/save attempt.
    :param retry_base_delay: first backoff sleep; doubles per retry.
    :param degrade_after: consecutive hard IO failures before the disk tier
        is bypassed entirely (``0`` disables the gate).
    :param degrade_cooldown: seconds the gate stays closed before the disk
        is probed again.

    Thread-safe; every method may also race freely with other processes on
    the same directory (see the module docstring for the protocol).
    """

    def __init__(
        self,
        root: str,
        *,
        max_bytes: int = _DEFAULT_MAX_BYTES,
        lock_timeout: float | None = 5.0,
        io_retries: int = 2,
        retry_base_delay: float = 0.005,
        degrade_after: int = 4,
        degrade_cooldown: float = 30.0,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError("max_bytes must be positive")
        if io_retries < 0:
            raise ValueError("io_retries must be >= 0")
        if degrade_after < 0:
            raise ValueError("degrade_after must be >= 0")
        self._root = os.path.abspath(str(root))
        os.makedirs(self._root, exist_ok=True)
        self._max_bytes = int(max_bytes)
        self._lock_path = os.path.join(self._root, ".lock")
        self._lock_timeout = lock_timeout
        self._io_retries = int(io_retries)
        self._retry_base_delay = float(retry_base_delay)
        self._degrade_after = int(degrade_after)
        self._degrade_cooldown = float(degrade_cooldown)
        self._stats_lock = threading.Lock()
        self._fail_streak = 0
        self._degraded_until: float | None = None
        self._stats = {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "corrupt": 0,
            "corrupt_loads": 0,
            "evicted": 0,
            "io_errors": 0,
            "io_retries": 0,
            "lock_timeouts": 0,
            "degraded_skips": 0,
        }

    # -- accessors ---------------------------------------------------------------

    @property
    def root(self) -> str:
        """Absolute path of the store directory."""
        return self._root

    @property
    def max_bytes(self) -> int:
        return self._max_bytes

    def stats(self) -> dict[str, int]:
        """This process's hit/miss/write/corrupt/evict counters plus size.

        The size figures come from one directory walk per call; fine for
        observability polling, but do not put this on a per-request path.
        """
        with self._stats_lock:
            out = dict(self._stats)
            degraded = (
                self._degraded_until is not None
                and time.monotonic() < self._degraded_until
            )
        out["degraded"] = int(degraded)
        entries = 0
        disk_bytes = 0
        for _, size, _ in self._iter_files():
            entries += 1
            disk_bytes += size
        out["disk_bytes"] = disk_bytes
        out["entries"] = entries
        return out

    def disk_bytes(self) -> int:
        """Total bytes currently held by artifact files."""
        return sum(size for _, size, _ in self._iter_files())

    # -- load / save -------------------------------------------------------------

    def load(self, kind: str, digest: str) -> object | None:
        """The artifact stored under ``(kind, digest)``, or ``None``.

        ``None`` covers both absence and corruption: a file that fails the
        magic/checksum/unpickle gate is counted in ``corrupt`` (and
        ``corrupt_loads``), named in a warning, removed best-effort, and
        reported as a miss so the caller rebuilds.  Transient read errors
        are retried with backoff; a persistent failure streak trips the
        degradation gate and subsequent loads miss without touching disk.
        """
        path = self._path(kind, digest)
        if not self._disk_available():
            self._count("misses")
            return None

        def _read_blob() -> bytes | None:
            fail_point("store.load.read")
            try:
                with open(path, "rb") as handle:
                    return handle.read()
            except FileNotFoundError:
                return None

        try:
            blob = retry_with_backoff(
                _read_blob,
                retries=self._io_retries,
                base_delay=self._retry_base_delay,
                on_retry=self._on_io_retry,
            )
        except OSError:
            self._record_io_failure()
            self._count("misses")
            return None
        self._record_io_success()
        if blob is None:
            self._count("misses")
            return None
        payload = self._verify(blob)
        if payload is None:
            self._evict_corrupt(kind, digest, path, "checksum/header verification")
            return None
        try:
            value = pickle.loads(payload)
        except Exception:
            self._evict_corrupt(kind, digest, path, "unpickling")
            return None
        try:  # bump mtime: the eviction order is least-recently-*used*
            os.utime(path)
        except OSError:
            pass
        self._count("hits")
        return value

    def save(self, kind: str, digest: str, artifact: object) -> bool:
        """Persist ``artifact`` under ``(kind, digest)``; ``False`` on failure.

        Failures (unpicklable artifact, full disk, permission trouble) are
        swallowed: the store is an accelerator, never a correctness
        dependency, so the caller keeps its freshly built in-memory value
        either way.  Transient ``OSError`` failures are retried with
        backoff; while the degradation gate is tripped, saves no-op.
        """
        path = self._path(kind, digest)
        if not self._disk_available():
            return False
        try:
            payload = pickle.dumps(artifact, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        blob = (
            _MAGIC
            + hashlib.sha256(payload).hexdigest().encode("ascii")
            + b"\n"
            + payload
        )
        directory = os.path.dirname(path)

        def _write_blob() -> None:
            fail_point("store.save.write")
            os.makedirs(directory, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.remove(tmp_path)
                except OSError:
                    pass
                raise

        try:
            retry_with_backoff(
                _write_blob,
                retries=self._io_retries,
                base_delay=self._retry_base_delay,
                on_retry=self._on_io_retry,
            )
        except OSError:
            self._record_io_failure()
            return False
        self._record_io_success()
        self._count("writes")
        self._evict_if_needed()
        return True

    def clear(self) -> None:
        """Remove every artifact (the lock file and directories stay).

        Raises :class:`StoreLockTimeout` if the cross-process lock cannot
        be acquired within ``lock_timeout`` -- an explicit purge that
        silently did nothing would be worse than a typed failure.
        """
        with _FileLock(self._lock_path, timeout=self._lock_timeout):
            for path, _, _ in self._iter_files():
                try:
                    os.remove(path)
                except OSError:
                    pass
            self._sweep_stale_tmp_locked(max_age_seconds=0.0)

    # -- internals ---------------------------------------------------------------

    def _path(self, kind: str, digest: str) -> str:
        if not digest or not all(c in "0123456789abcdef" for c in digest):
            raise ValueError(f"malformed artifact digest: {digest!r}")
        safe_kind = "".join(c if c.isalnum() or c in "-_" else "_" for c in kind)
        return os.path.join(self._root, safe_kind, digest[:2], digest + ".bin")

    @staticmethod
    def _verify(blob: bytes) -> bytes | None:
        """The checksum-verified payload of one file, or ``None``."""
        if not blob.startswith(_MAGIC):
            return None
        rest = blob[len(_MAGIC) :]
        newline = rest.find(b"\n")
        if newline != 64:  # sha256 hex digest length
            return None
        declared = rest[:newline]
        payload = rest[newline + 1 :]
        actual = hashlib.sha256(payload).hexdigest().encode("ascii")
        if actual != declared:
            return None
        return payload

    def _iter_files(self):
        """Yield ``(path, size, mtime)`` for every artifact file."""
        for dirpath, _, filenames in os.walk(self._root):
            for filename in filenames:
                if not filename.endswith(".bin"):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    status = os.stat(path)
                except OSError:
                    continue
                yield path, status.st_size, status.st_mtime

    def _evict_if_needed(self) -> None:
        """LRU-evict (by mtime) down to 80% of the cap when over it.

        A lock-acquisition timeout skips the pass (counted in
        ``lock_timeouts``): whichever sibling holds the lock is evicting
        on our behalf, and a late eviction never threatens correctness.
        """
        files = list(self._iter_files())
        if sum(size for _, size, _ in files) <= self._max_bytes:
            return
        try:
            lock = _FileLock(self._lock_path, timeout=self._lock_timeout)
            lock.__enter__()
        except StoreLockTimeout:
            self._count("lock_timeouts")
            return
        try:
            files = list(self._iter_files())  # re-scan under the lock
            total = sum(size for _, size, _ in files)
            target = int(self._max_bytes * _EVICT_TO_FRACTION)
            for path, size, _ in sorted(files, key=lambda item: item[2]):
                if total <= target:
                    break
                try:
                    os.remove(path)
                except OSError:
                    continue
                total -= size
                self._count("evicted")
            self._sweep_stale_tmp_locked()
        finally:
            lock.__exit__(None, None, None)

    def _sweep_stale_tmp_locked(self, max_age_seconds: float = 3600.0) -> None:
        """Delete orphaned ``.tmp`` files left by crashed writers (lock held).

        A writer killed between ``mkstemp`` and ``os.replace`` leaks its
        temporary file; those never become artifacts, are invisible to the
        size accounting, and would otherwise accumulate forever.  Only
        files older than ``max_age_seconds`` are swept so an in-flight
        writer's temp file is never yanked from under it.
        """
        cutoff = time.time() - max_age_seconds
        for dirpath, _, filenames in os.walk(self._root):
            for filename in filenames:
                if not filename.endswith(".tmp"):
                    continue
                path = os.path.join(dirpath, filename)
                try:
                    if os.stat(path).st_mtime <= cutoff:
                        os.remove(path)
                except OSError:
                    continue

    def _count(self, key: str) -> None:
        with self._stats_lock:
            self._stats[key] += 1

    def _evict_corrupt(self, kind: str, digest: str, path: str, stage: str) -> None:
        """Count, log and best-effort remove one corrupt artifact file."""
        logger.warning(
            "evicting corrupt artifact kind=%s digest=%s (failed %s); "
            "the caller will rebuild it",
            kind,
            digest,
            stage,
        )
        self._count("corrupt")
        self._count("corrupt_loads")
        self._count("misses")
        try:
            os.remove(path)
        except OSError:
            pass

    # -- degradation gate --------------------------------------------------------

    def _disk_available(self) -> bool:
        """Whether the disk tier should be touched at all right now."""
        if self._degrade_after <= 0:
            return True
        with self._stats_lock:
            if self._degraded_until is None:
                return True
            if time.monotonic() >= self._degraded_until:
                # Cooldown expired: re-probe the disk with a clean streak.
                self._degraded_until = None
                self._fail_streak = 0
                return True
            self._stats["degraded_skips"] += 1
            return False

    def _record_io_failure(self) -> None:
        with self._stats_lock:
            self._stats["io_errors"] += 1
            self._fail_streak += 1
            tripped = (
                self._degrade_after > 0
                and self._fail_streak >= self._degrade_after
                and self._degraded_until is None
            )
            if tripped:
                self._degraded_until = time.monotonic() + self._degrade_cooldown
        if tripped:
            logger.warning(
                "artifact store %s: %d consecutive IO failures; bypassing "
                "the disk tier for %.3gs (in-memory tiers keep serving)",
                self._root,
                self._degrade_after,
                self._degrade_cooldown,
            )

    def _record_io_success(self) -> None:
        with self._stats_lock:
            self._fail_streak = 0

    def _on_io_retry(self, attempt: int, exc: BaseException) -> None:
        self._count("io_retries")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ArtifactStore(root={self._root!r}, max_bytes={self._max_bytes})"
