"""Process-stable content digests for artifact-store keys.

Disk keys must survive interpreter restarts, so they cannot rely on Python's
per-process ``hash()`` (salted for strings) or on object identity.  This
module canonicalises the value objects that appear in cache keys --
predicates (frozen dataclasses), schemas, workload name tuples, accuracy
floats, mechanism signatures -- into a deterministic JSON form and digests
it with SHA-256.

The canonical form is structural, driven by :mod:`dataclasses` metadata
rather than by importing every predicate class (which would invert the
package dependency graph):

* scalars encode with an explicit type tag (``float`` via ``float.hex`` so
  the digest is exact, not repr-rounded);
* tuples/lists/sets/mappings encode recursively (sets and mappings sorted);
* frozen dataclasses encode as ``[qualified type name, [field values...]]``,
  skipping underscore-prefixed fields (derived lookup tables such as
  ``Schema._by_name``);
* enums encode as ``[class name, value]``;
* objects exposing a ``__stable_identity__()`` method encode as
  ``[qualified type name, identity form]``.  The hook is how opaque-but-named
  values (a :class:`~repro.queries.predicates.FunctionPredicate` with a
  declared ``version=``) join disk keys without this module importing their
  classes; returning ``None`` from the hook means "no stable identity" and
  keeps the value uncanonicalisable.

Anything else -- opaque callables, bare :class:`FunctionPredicate` instances
and friends -- makes the whole key *uncanonicalisable*:
:func:`stable_digest` returns ``None`` and the caller simply skips the disk
tier, exactly as the in-memory memos skip unhashable keys.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Mapping

__all__ = ["stable_digest", "canonical_form"]


class _Uncanonical(Exception):
    """Raised internally when a key component has no stable content form."""


def canonical_form(obj: object) -> object:
    """A JSON-serialisable, content-deterministic form of ``obj``.

    Raises :class:`TypeError` when ``obj`` (or anything inside it) has no
    stable content representation; use :func:`stable_digest` for the
    ``None``-on-failure variant.
    """
    try:
        return _canonical(obj)
    except _Uncanonical as exc:
        raise TypeError(str(exc)) from None


def stable_digest(obj: object) -> str | None:
    """SHA-256 hex digest of ``obj``'s canonical form; ``None`` if unstable."""
    try:
        form = _canonical(obj)
    except _Uncanonical:
        return None
    payload = json.dumps(form, separators=(",", ":"), ensure_ascii=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _canonical(obj: object) -> object:
    if obj is None:
        return ["z"]
    if isinstance(obj, bool):  # before int: bool subclasses int
        return ["b", obj]
    if isinstance(obj, int):
        return ["i", str(obj)]
    if isinstance(obj, float):
        return ["f", obj.hex()]
    if isinstance(obj, str):
        return ["s", obj]
    if isinstance(obj, bytes):
        return ["y", obj.hex()]
    if isinstance(obj, enum.Enum):
        return ["e", type(obj).__name__, _canonical(obj.value)]
    if isinstance(obj, (tuple, list)):
        return ["t", [_canonical(item) for item in obj]]
    if isinstance(obj, (set, frozenset)):
        items = [_canonical(item) for item in obj]
        items.sort(key=lambda form: json.dumps(form, separators=(",", ":")))
        return ["S", items]
    if isinstance(obj, Mapping):
        items = [[_canonical(k), _canonical(v)] for k, v in obj.items()]
        items.sort(key=lambda pair: json.dumps(pair[0], separators=(",", ":")))
        return ["m", items]
    hook = getattr(type(obj), "__stable_identity__", None)
    if hook is not None and not isinstance(obj, type):
        identity = obj.__stable_identity__()
        if identity is None:
            raise _Uncanonical(
                f"{type(obj).__name__} declares no stable identity"
            )
        return [
            "I",
            f"{type(obj).__module__}.{type(obj).__qualname__}",
            _canonical(identity),
        ]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = [
            _canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if not f.name.startswith("_")
        ]
        return ["d", f"{type(obj).__module__}.{type(obj).__qualname__}", fields]
    raise _Uncanonical(
        f"{type(obj).__name__} has no process-stable content form"
    )
