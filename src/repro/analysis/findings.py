"""The finding model shared by every rule, plus suppression and baseline logic.

A :class:`Finding` is one rule violation at one source location.  Findings
are identified two ways:

* the *location* (``path:line``) -- what the text report prints and what an
  inline suppression comment silences;
* the *stable key* -- ``rule|path|context`` where ``context`` is a
  line-number-free description of the enclosing symbol and the violating
  construct.  The committed baseline file stores stable keys, so reformatting
  a file (which moves line numbers) does not invalidate the baseline, while
  adding a *second* violation of the same rule to the same function does
  surface as a new finding.

Suppression comments
--------------------

A finding is suppressed inline by a comment on its line (or on the line of
the enclosing statement for multi-line constructs)::

    cache[table] = mask  # apx: ignore[APX002] identity-keyed by design

The rule list is mandatory (``# apx: ignore`` without codes suppresses
nothing -- a bare blanket ignore would hide future rules); the trailing
justification is free text and strongly encouraged.

Baseline
--------

``analysis-baseline.json`` at the repository root records findings that are
*accepted* (each with a one-line justification).  ``--check`` fails only on
findings whose stable key is not baselined; ``--write-baseline`` regenerates
the file from the current tree (justifications of surviving entries are
preserved).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

__all__ = [
    "Finding",
    "Suppressions",
    "Baseline",
    "RULES",
    "findings_to_json",
]

#: The rule catalog: code -> one-line description (docs/analysis.md expands
#: each with rationale and examples).
RULES: dict[str, str] = {
    "APX001": "budget-flow: every reserve() must reach charge()/release() on "
    "all paths, including exception edges",
    "APX002": "cache-key completeness: table-derived cache keys must carry a "
    "version token / domain stamp / cache token",
    "APX003": "lock-order: lock acquisition edges must stay acyclic, and a "
    "non-reentrant Lock must never be re-acquired by its holder",
    "APX004": "failpoint registry: fail_point()/armed() names and "
    "FAILPOINT_SITES must agree in both directions",
    "APX005": "snapshot discipline: mechanism/engine read paths must admit "
    "raw tables through Table.snapshot()",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repository-relative, forward slashes
    line: int
    col: int
    message: str
    #: Line-free context for the stable key: usually ``Class.method`` plus a
    #: short token naming the violating construct.
    context: str = ""

    @property
    def key(self) -> str:
        """The stable (line-number-free) identity used by the baseline."""
        return f"{self.rule}|{self.path}|{self.context}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
            "key": self.key,
        }


_SUPPRESS_RE = re.compile(
    r"#\s*apx:\s*ignore\[(?P<codes>[A-Z0-9,\s]+)\](?P<reason>.*)$"
)


class Suppressions:
    """Per-file inline ``# apx: ignore[...]`` comments, parsed once."""

    def __init__(self, source: str) -> None:
        self._by_line: dict[int, frozenset[str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            codes = frozenset(
                code.strip() for code in match.group("codes").split(",") if code.strip()
            )
            if codes:
                self._by_line[lineno] = codes

    def covers(self, finding: Finding) -> bool:
        codes = self._by_line.get(finding.line)
        return codes is not None and finding.rule in codes

    def __len__(self) -> int:
        return len(self._by_line)


class Baseline:
    """The committed set of accepted findings (stable key -> justification)."""

    def __init__(self, entries: Mapping[str, str] | None = None) -> None:
        self._entries: dict[str, str] = dict(entries or {})

    @classmethod
    def load(cls, path: str) -> "Baseline":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return cls()
        entries = {
            str(item["key"]): str(item.get("reason", ""))
            for item in payload.get("findings", [])
        }
        return cls(entries)

    def covers(self, finding: Finding) -> bool:
        return finding.key in self._entries

    def reason(self, finding: Finding) -> str:
        return self._entries.get(finding.key, "")

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def keys(self) -> frozenset[str]:
        return frozenset(self._entries)

    def write(self, path: str, findings: Iterable[Finding]) -> None:
        """Regenerate the baseline from ``findings``, keeping old reasons."""
        items = []
        seen: set[str] = set()
        for finding in sorted(findings, key=lambda f: (f.path, f.rule, f.context)):
            if finding.key in seen:
                continue
            seen.add(finding.key)
            items.append(
                {
                    "key": finding.key,
                    "rule": finding.rule,
                    "path": finding.path,
                    "reason": self._entries.get(finding.key, "TODO: justify"),
                }
            )
        payload = {
            "comment": "Accepted repro.analysis findings; every entry needs a "
            "one-line justification.  Regenerate with "
            "`python -m repro.analysis --write-baseline src/`.",
            "findings": items,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=False)
            handle.write("\n")


@dataclass
class AnalysisReport:
    """Everything one analyzer run produced, pre-split by disposition."""

    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    errors: list[str] = field(default_factory=list)


def findings_to_json(report: AnalysisReport) -> dict[str, Any]:
    """The machine-readable payload of one run (the ``--json`` output).

    Schema (stable; checked by ``tests/analysis/test_cli.py``)::

        {"version": 1,
         "rules": {code: description, ...},
         "summary": {"files": int, "new": int, "baselined": int,
                     "suppressed": int, "errors": int},
         "findings": [{"rule", "path", "line", "col", "message",
                       "context", "key"}, ...],          # new findings only
         "baselined": [...same shape...],
         "errors": [str, ...]}
    """
    return {
        "version": 1,
        "rules": dict(RULES),
        "summary": {
            "files": report.files_analyzed,
            "new": len(report.new),
            "baselined": len(report.baselined),
            "suppressed": len(report.suppressed),
            "errors": len(report.errors),
        },
        "findings": [f.to_dict() for f in report.new],
        "baselined": [f.to_dict() for f in report.baselined],
        "errors": list(report.errors),
    }
