"""Invariant-aware static analysis for the repro codebase.

The analyzer proves (or flags violations of) the cross-cutting invariants
the rest of the stack relies on but no type checker can express:

========  ==================================================================
APX001    budget-flow: every ``reserve()`` reaches ``charge()``/``release()``
          on all paths, including exception edges
APX002    cache-key completeness: table-derived cache keys carry a version
          token / domain stamp / cache token
APX003    lock-order: the static lock-acquisition graph stays acyclic; no
          non-reentrant ``Lock`` is re-acquired by its holder
APX004    failpoint registry: ``fail_point()`` sites and ``FAILPOINT_SITES``
          agree in both directions
APX005    snapshot discipline: mechanism/engine read paths admit raw tables
          through ``Table.snapshot()``
========  ==================================================================

Run it with ``python -m repro.analysis --check src/``; see
``docs/analysis.md`` for the rule catalog, suppression syntax, and the
baseline workflow.  The runtime complement -- the lock-order watchdog -- is
:mod:`repro.analysis.runtime`.
"""

from repro.analysis.findings import (
    AnalysisReport,
    Baseline,
    Finding,
    RULES,
    Suppressions,
    findings_to_json,
)
from repro.analysis.runner import analyze, discover

__all__ = [
    "AnalysisReport",
    "Baseline",
    "Finding",
    "RULES",
    "Suppressions",
    "analyze",
    "discover",
    "findings_to_json",
]
