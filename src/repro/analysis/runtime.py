"""Runtime lock-order watchdog: the dynamic complement of APX003.

The static rule (:mod:`repro.analysis.rules.lock_order`) proves acyclicity
of the acquisition edges it can resolve; receivers it cannot type
(``handle.engine.explore`` reaching the ledger, callbacks, test doubles)
contribute no static edges.  The watchdog covers that remainder: it wraps
``threading.Lock``/``threading.RLock`` construction with instrumented
locks, records every *held -> acquired* edge with per-thread acquisition
stacks, and flags

* **order inversions** -- some thread acquired B while holding A after
  another (or the same) thread acquired A while holding B.  Two such
  threads interleaved are a deadlock; seeing both edges is proof the
  program admits the interleaving, whether or not this run hit it;
* **self-deadlock** -- a thread blocking on a non-reentrant ``Lock`` it
  already holds.  This one is not a probability, it is a hang: the
  watchdog raises :class:`LockInversionError` *before* blocking, in every
  mode, converting a frozen test run into a stack trace.

Lock identity is the *creation site* (``file:line`` of the ``Lock()``
call), which groups instances the way the static rule groups declarations:
two ledgers' ``_lock`` s are the same lock class, so an inversion between
two instances of the same pair of sites is still reported.

Usage -- ``record`` mode is what the reliability/service test suites run
under (a package-scoped autouse fixture installs it and fails the suite on
teardown if anything was recorded); ``raise`` mode turns the first
inversion into an exception at the acquisition site::

    from repro.analysis.runtime import LockOrderWatchdog

    watchdog = LockOrderWatchdog(mode="record")
    watchdog.install()
    try:
        ...  # exercise code; new Lock()/RLock() objects are instrumented
    finally:
        watchdog.uninstall()
    assert not watchdog.violations

Only locks *created while installed* are instrumented; import-time
singletons stay raw.  The watchdog's own bookkeeping uses a pre-patch
``_thread.allocate_lock`` so it is immune to its own instrumentation.
"""

from __future__ import annotations

import _thread
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "LockInversionError",
    "LockOrderViolation",
    "LockOrderWatchdog",
    "watching",
]

_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock
_RAW_LOCK = _thread.allocate_lock  # immune to instrumentation


class LockInversionError(RuntimeError):
    """Raised in ``raise`` mode (and always for certain self-deadlock)."""


@dataclass(frozen=True)
class LockOrderViolation:
    kind: str  # "inversion" | "self-deadlock"
    first: str  # creation site of the first lock (held / prior order)
    second: str  # creation site of the lock being acquired
    thread: str
    details: str

    def render(self) -> str:
        return f"{self.kind}: {self.details}"


def _caller_site() -> str:
    """``file:line`` of the frame that called ``Lock()``/``RLock()``."""
    frame = sys._getframe(2)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover
        return "<unknown>"
    filename = frame.f_code.co_filename
    for marker in ("/src/", "/tests/"):
        cut = filename.rfind(marker)
        if cut >= 0:
            filename = filename[cut + 1 :]
            break
    return f"{filename}:{frame.f_lineno}"


class _InstrumentedLock:
    """A Lock/RLock wrapper reporting acquisitions to the watchdog.

    Implements ``_is_owned``/``_release_save``/``_acquire_restore`` so a
    ``threading.Condition`` built on top of it keeps working.
    """

    def __init__(self, watchdog: "LockOrderWatchdog", inner, site: str, reentrant: bool):
        self._watchdog = watchdog
        self._inner = inner
        self.site = site
        self.reentrant = reentrant

    # -- core protocol ------------------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._watchdog._before_acquire(self, blocking)
        ok = self._inner.acquire(blocking, timeout)
        if ok:
            self._watchdog._acquired(self)
        return ok

    def release(self) -> None:
        self._inner.release()
        self._watchdog._released(self)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        inner_locked = getattr(self._inner, "locked", None)
        return bool(inner_locked()) if callable(inner_locked) else False

    def __repr__(self) -> str:  # pragma: no cover
        kind = "RLock" if self.reentrant else "Lock"
        return f"<watched {kind} from {self.site}>"

    # -- threading.Condition compatibility ----------------------------------------

    def _is_owned(self) -> bool:
        inner = getattr(self._inner, "_is_owned", None)
        if callable(inner):
            return inner()
        # plain Lock: owned iff a non-blocking acquire fails (CPython's own
        # fallback inside threading.Condition)
        if self._inner.acquire(False):
            self._inner.release()
            return False
        return True

    def _release_save(self):
        saved = (
            self._inner._release_save()
            if hasattr(self._inner, "_release_save")
            else self._inner.release()
        )
        self._watchdog._released(self, fully=True)
        return saved

    def _acquire_restore(self, saved) -> None:
        if hasattr(self._inner, "_acquire_restore"):
            self._inner._acquire_restore(saved)
        else:
            self._inner.acquire()
        # re-held after a Condition.wait: restore without order checks (the
        # ordering was already validated on the original acquisition)
        self._watchdog._acquired(self)


class LockOrderWatchdog:
    """Records lock-acquisition edges and reports ordering violations."""

    def __init__(self, mode: str = "record") -> None:
        if mode not in ("record", "raise"):
            raise ValueError(f"mode must be 'record' or 'raise', not {mode!r}")
        self.mode = mode
        self.violations: list[LockOrderViolation] = []
        #: (held_site, acquired_site) -> witness description
        self._edges: dict[tuple[str, str], str] = {}
        self._guard = _RAW_LOCK()
        self._held = threading.local()  # per-thread list of instances
        self._installed = False

    # -- installation -------------------------------------------------------------

    def install(self) -> None:
        """Monkeypatch the ``threading`` lock factories (idempotent)."""
        if self._installed:
            return
        watchdog = self

        def make_lock():
            return _InstrumentedLock(watchdog, _REAL_LOCK(), _caller_site(), False)

        def make_rlock():
            return _InstrumentedLock(watchdog, _REAL_RLOCK(), _caller_site(), True)

        threading.Lock = make_lock  # type: ignore[assignment]
        threading.RLock = make_rlock  # type: ignore[assignment]
        self._installed = True

    def uninstall(self) -> None:
        if not self._installed:
            return
        threading.Lock = _REAL_LOCK  # type: ignore[assignment]
        threading.RLock = _REAL_RLOCK  # type: ignore[assignment]
        self._installed = False

    # -- per-thread stack ----------------------------------------------------------

    def _stack(self) -> list:
        stack = getattr(self._held, "stack", None)
        if stack is None:
            stack = []
            self._held.stack = stack
        return stack

    # -- acquisition protocol ------------------------------------------------------

    def _before_acquire(self, lock: _InstrumentedLock, blocking: bool) -> None:
        stack = self._stack()
        already_held = any(entry is lock for entry in stack)
        if already_held:
            if not lock.reentrant and blocking:
                # Certain deadlock: raise instead of hanging, in every mode.
                violation = LockOrderViolation(
                    kind="self-deadlock",
                    first=lock.site,
                    second=lock.site,
                    thread=threading.current_thread().name,
                    details=(
                        f"thread {threading.current_thread().name!r} blocks "
                        f"on non-reentrant Lock ({lock.site}) it already "
                        "holds"
                    ),
                )
                with self._guard:
                    self.violations.append(violation)
                raise LockInversionError(violation.render())
            return  # RLock re-entry: no new ordering constraint
        if not blocking:
            return  # a trylock cannot block, hence cannot deadlock
        held_sites = []
        for entry in stack:
            if entry.site != lock.site and entry.site not in held_sites:
                held_sites.append(entry.site)
        if not held_sites:
            return
        thread = threading.current_thread().name
        with self._guard:
            for held_site in held_sites:
                reverse = self._edges.get((lock.site, held_site))
                if reverse is not None:
                    violation = LockOrderViolation(
                        kind="inversion",
                        first=held_site,
                        second=lock.site,
                        thread=thread,
                        details=(
                            f"thread {thread!r} acquires {lock.site} while "
                            f"holding {held_site}, but the opposite order "
                            f"was observed: {reverse}"
                        ),
                    )
                    self.violations.append(violation)
                    if self.mode == "raise":
                        raise LockInversionError(violation.render())
                self._edges.setdefault(
                    (held_site, lock.site),
                    f"{thread!r} held {held_site} acquiring {lock.site}",
                )

    def _acquired(self, lock: _InstrumentedLock) -> None:
        self._stack().append(lock)

    def _released(self, lock: _InstrumentedLock, fully: bool = False) -> None:
        stack = self._stack()
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is lock:
                del stack[index]
                if not fully:
                    break
                # _release_save drops every recursion level at once


@contextmanager
def watching(mode: str = "record"):
    """Install a watchdog for the duration of a ``with`` block."""
    watchdog = LockOrderWatchdog(mode=mode)
    watchdog.install()
    try:
        yield watchdog
    finally:
        watchdog.uninstall()
