"""A structural control-flow engine for intraprocedural dataflow rules.

Rather than materialising an explicit basic-block graph, the engine walks a
function's AST recursively and propagates *sets of abstract states* along
every control-flow edge a CFG would have -- fallthrough, branch true/false,
loop back-edges (iterated to a fixpoint), ``break``/``continue``/``return``,
and crucially **exception edges**: any statement the client declares
may-raise forks a state into the innermost ``try`` handler chain (or out of
the function).  ``try``/``except``/``else``/``finally`` composition follows
the language semantics, over-approximating where the handler types cannot be
matched statically.

The engine is deliberately client-agnostic: a rule subclasses
:class:`FlowClient` and interprets statements over its own abstract state
(hashable, small -- the engine unions states per program point, so lattices
should stay finite).  :mod:`repro.analysis.rules.budget_flow` uses it to
prove that every ledger reservation is consumed on all paths.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Hashable, Iterable

__all__ = ["FlowClient", "Outcomes", "run_flow"]

State = Hashable

# Outcome kinds: how control leaves a statement or block.
FALL = "fall"
RETURN = "return"
RAISE = "raise"
BREAK = "break"
CONTINUE = "continue"

#: Loop fixpoint guard: abstract states are tiny finite sets, so a handful of
#: iterations always converges; the cap only bounds pathological clients.
_MAX_LOOP_ITERATIONS = 16

#: Builtins that cannot raise on any argument the analyzed code passes them.
#: A statement whose only calls are these gets no exception edge -- otherwise
#: `registry[id(obj)] = obj` would fork a spurious raise path.
_NON_RAISING_CALLS = frozenset({"id", "isinstance", "type", "repr", "bool"})


@dataclass
class Outcomes:
    """State sets per control-exit kind of one statement or block."""

    fall: set[State] = field(default_factory=set)
    ret: set[State] = field(default_factory=set)
    raised: set[State] = field(default_factory=set)
    brk: set[State] = field(default_factory=set)
    cont: set[State] = field(default_factory=set)

    def absorb_nonlocal(self, other: "Outcomes") -> None:
        """Merge ``other``'s non-fallthrough exits into this accumulator."""
        self.ret |= other.ret
        self.raised |= other.raised
        self.brk |= other.brk
        self.cont |= other.cont


class FlowClient:
    """The rule-specific interpretation the engine parameterises over."""

    def transfer(self, stmt: ast.stmt, state: State) -> State | None:
        """State after ``stmt`` completes *normally* (``None`` = unreachable)."""
        return state

    def transfer_raise(self, stmt: ast.stmt, state: State) -> State | None:
        """State on ``stmt``'s *exceptional* exit (default: unchanged)."""
        return state

    def may_raise(self, stmt: ast.stmt) -> bool:
        """Whether ``stmt`` has an exception edge.

        Default: the statement contains at least one call that is not a
        known non-raising builtin (:data:`_NON_RAISING_CALLS`).
        """
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                func = node.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else ""
                )
                if name not in _NON_RAISING_CALLS:
                    return True
        return False

    def refine(self, test: ast.expr, state: State, branch: bool) -> State | None:
        """State refined by ``test`` being ``branch``; ``None`` = impossible."""
        return state


def _apply(states: Iterable[State], fn) -> set[State]:
    out: set[State] = set()
    for state in states:
        new = fn(state)
        if new is not None:
            out.add(new)
    return out


class _Engine:
    def __init__(self, client: FlowClient) -> None:
        self.client = client

    # -- blocks -------------------------------------------------------------------

    def block(self, stmts: list[ast.stmt], entry: set[State]) -> Outcomes:
        acc = Outcomes()
        current = set(entry)
        for stmt in stmts:
            if not current:
                break
            out = self.stmt(stmt, current)
            acc.absorb_nonlocal(out)
            current = out.fall
        acc.fall = current
        return acc

    # -- statements ---------------------------------------------------------------

    def stmt(self, stmt: ast.stmt, entry: set[State]) -> Outcomes:
        handler = getattr(self, f"_stmt_{type(stmt).__name__}", None)
        if handler is not None:
            return handler(stmt, entry)
        return self._simple(stmt, entry)

    def _simple(self, stmt: ast.stmt, entry: set[State]) -> Outcomes:
        out = Outcomes()
        out.fall = _apply(entry, lambda s: self.client.transfer(stmt, s))
        if self.client.may_raise(stmt):
            out.raised = _apply(entry, lambda s: self.client.transfer_raise(stmt, s))
        return out

    def _stmt_Return(self, stmt: ast.Return, entry: set[State]) -> Outcomes:
        out = Outcomes()
        out.ret = _apply(entry, lambda s: self.client.transfer(stmt, s))
        if stmt.value is not None and self.client.may_raise(stmt):
            out.raised = _apply(entry, lambda s: self.client.transfer_raise(stmt, s))
        return out

    def _stmt_Raise(self, stmt: ast.Raise, entry: set[State]) -> Outcomes:
        out = Outcomes()
        out.raised = _apply(entry, lambda s: self.client.transfer(stmt, s))
        return out

    def _stmt_Break(self, stmt: ast.Break, entry: set[State]) -> Outcomes:
        return Outcomes(brk=set(entry))

    def _stmt_Continue(self, stmt: ast.Continue, entry: set[State]) -> Outcomes:
        return Outcomes(cont=set(entry))

    def _stmt_Pass(self, stmt: ast.Pass, entry: set[State]) -> Outcomes:
        return Outcomes(fall=set(entry))

    def _stmt_Assert(self, stmt: ast.Assert, entry: set[State]) -> Outcomes:
        out = Outcomes()
        out.fall = _apply(entry, lambda s: self.client.refine(stmt.test, s, True))
        out.raised = _apply(entry, lambda s: self.client.refine(stmt.test, s, False))
        return out

    def _stmt_If(self, stmt: ast.If, entry: set[State]) -> Outcomes:
        true_states = _apply(entry, lambda s: self.client.refine(stmt.test, s, True))
        false_states = _apply(entry, lambda s: self.client.refine(stmt.test, s, False))
        out = Outcomes()
        if any(isinstance(n, ast.Call) for n in ast.walk(stmt.test)):
            out.raised |= set(entry)
        body_out = self.block(stmt.body, true_states)
        else_out = self.block(stmt.orelse, false_states)
        out.fall = body_out.fall | else_out.fall
        out.absorb_nonlocal(body_out)
        out.absorb_nonlocal(else_out)
        return out

    def _loop(
        self,
        body: list[ast.stmt],
        orelse: list[ast.stmt],
        entry: set[State],
        refine_test: ast.expr | None,
        head_raises: bool,
    ) -> Outcomes:
        out = Outcomes()
        head_states = set(entry)
        breaks: set[State] = set()
        normal_exit: set[State] = set()
        for _ in range(_MAX_LOOP_ITERATIONS):
            if refine_test is not None:
                enter = _apply(
                    head_states, lambda s: self.client.refine(refine_test, s, True)
                )
                normal_exit = _apply(
                    head_states, lambda s: self.client.refine(refine_test, s, False)
                )
            else:
                enter = set(head_states)
                normal_exit = set(head_states)  # zero-iteration / exhausted
            if head_raises:
                out.raised |= head_states
            body_out = self.block(body, enter)
            out.ret |= body_out.ret
            out.raised |= body_out.raised
            breaks |= body_out.brk
            new_head = head_states | body_out.fall | body_out.cont
            if new_head == head_states:
                break
            head_states = new_head
        else_out = self.block(orelse, normal_exit)
        out.absorb_nonlocal(else_out)
        out.fall = breaks | else_out.fall
        return out

    def _stmt_While(self, stmt: ast.While, entry: set[State]) -> Outcomes:
        head_raises = any(isinstance(n, ast.Call) for n in ast.walk(stmt.test))
        return self._loop(stmt.body, stmt.orelse, entry, stmt.test, head_raises)

    def _stmt_For(self, stmt: ast.For, entry: set[State]) -> Outcomes:
        head_raises = any(isinstance(n, ast.Call) for n in ast.walk(stmt.iter))
        return self._loop(stmt.body, stmt.orelse, entry, None, head_raises)

    _stmt_AsyncFor = _stmt_For

    def _stmt_With(self, stmt: ast.With, entry: set[State]) -> Outcomes:
        out = Outcomes()
        # __enter__ may raise before the body runs.
        if any(isinstance(n, ast.Call) for item in stmt.items for n in ast.walk(item)):
            out.raised |= set(entry)
        body_out = self.block(stmt.body, set(entry))
        out.fall = body_out.fall
        out.absorb_nonlocal(body_out)
        return out

    _stmt_AsyncWith = _stmt_With

    def _stmt_Try(self, stmt: ast.Try, entry: set[State]) -> Outcomes:
        out = Outcomes()
        body_out = self.block(stmt.body, set(entry))
        out.ret |= body_out.ret
        out.brk |= body_out.brk
        out.cont |= body_out.cont

        raise_states = body_out.raised
        caught_broadly = False
        for handler in stmt.handlers:
            if _handler_catches_everything(handler):
                caught_broadly = True
            handler_out = self.block(handler.body, set(raise_states))
            out.absorb_nonlocal(handler_out)
            out.fall |= handler_out.fall
        if not caught_broadly:
            # Some exception types may escape the handler chain.
            out.raised |= raise_states

        else_out = self.block(stmt.orelse, body_out.fall)
        out.fall |= else_out.fall
        out.absorb_nonlocal(else_out)

        if stmt.finalbody:
            out = self._through_finally(stmt.finalbody, out)
        return out

    _stmt_TryStar = _stmt_Try

    def _through_finally(self, finalbody: list[ast.stmt], out: Outcomes) -> Outcomes:
        """Route every exit kind through the ``finally`` block."""
        routed = Outcomes()
        for kind, states in (
            (FALL, out.fall),
            (RETURN, out.ret),
            (RAISE, out.raised),
            (BREAK, out.brk),
            (CONTINUE, out.cont),
        ):
            if not states:
                continue
            fin = self.block(finalbody, states)
            # The finally body's own abnormal exits win; its fallthrough
            # resumes the original exit kind.
            routed.ret |= fin.ret
            routed.raised |= fin.raised
            routed.brk |= fin.brk
            routed.cont |= fin.cont
            if kind == FALL:
                routed.fall |= fin.fall
            elif kind == RETURN:
                routed.ret |= fin.fall
            elif kind == RAISE:
                routed.raised |= fin.fall
            elif kind == BREAK:
                routed.brk |= fin.fall
            elif kind == CONTINUE:
                routed.cont |= fin.fall
        return routed

    def _stmt_Match(self, stmt: ast.Match, entry: set[State]) -> Outcomes:
        out = Outcomes()
        for case in stmt.cases:
            case_out = self.block(case.body, set(entry))
            out.fall |= case_out.fall
            out.absorb_nonlocal(case_out)
        out.fall |= set(entry)  # no case may match
        return out

    def _stmt_FunctionDef(self, stmt, entry: set[State]) -> Outcomes:
        # Nested defs/classes: no control flow, but the client may treat a
        # captured name as escaping (via transfer).
        return self._simple_no_raise(stmt, entry)

    _stmt_AsyncFunctionDef = _stmt_FunctionDef
    _stmt_ClassDef = _stmt_FunctionDef
    _stmt_Import = _stmt_FunctionDef
    _stmt_ImportFrom = _stmt_FunctionDef
    _stmt_Global = _stmt_FunctionDef
    _stmt_Nonlocal = _stmt_FunctionDef

    def _simple_no_raise(self, stmt: ast.stmt, entry: set[State]) -> Outcomes:
        return Outcomes(fall=_apply(entry, lambda s: self.client.transfer(stmt, s)))


def _handler_catches_everything(handler: ast.ExceptHandler) -> bool:
    """Whether the handler's type clause catches any exception."""
    if handler.type is None:
        return True
    names: list[str] = []
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for node in types:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return any(name in ("BaseException", "Exception") for name in names)


def run_flow(
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    client: FlowClient,
    entry_state: State,
) -> dict[str, set[State]]:
    """Run ``client`` over ``fn``'s body from ``entry_state``.

    Returns the function's exit states split by kind: ``"return"`` covers
    explicit returns *and* fallthrough off the end of the body, ``"raise"``
    is every state on which an exception propagates out of the function.
    """
    out = _Engine(client).block(list(fn.body), {entry_state})
    return {
        RETURN: out.ret | out.fall,
        RAISE: out.raised,
        # break/continue at function top level is a syntax error; ignore.
    }
