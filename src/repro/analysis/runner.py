"""File discovery and rule orchestration for one analyzer run."""

from __future__ import annotations

import ast
import os
from typing import Iterable, Sequence

from repro.analysis.findings import (
    AnalysisReport,
    Baseline,
    Finding,
    Suppressions,
)
from repro.analysis.rules import all_rules
from repro.analysis.rules.common import SourceFile

__all__ = ["discover", "analyze", "AnalysisReport"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


def _relative(path: str, root: str) -> str:
    """Repo-relative forward-slash path (the identity findings carry)."""
    try:
        rel = os.path.relpath(os.path.abspath(path), os.path.abspath(root))
    except ValueError:  # different drive (windows)
        rel = path
    if rel.startswith(".."):
        rel = path
    return rel.replace(os.sep, "/")


def discover(paths: Sequence[str], root: str = ".") -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[str] = set()
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                out.add(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d for d in dirnames if d not in _SKIP_DIRS and not d.startswith(".")
            )
            for filename in filenames:
                if filename.endswith(".py"):
                    out.add(os.path.join(dirpath, filename))
    return sorted(out)


def parse_files(
    filenames: Iterable[str], root: str = "."
) -> tuple[list[SourceFile], list[str]]:
    files: list[SourceFile] = []
    errors: list[str] = []
    for filename in filenames:
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=filename)
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{_relative(filename, root)}: {exc}")
            continue
        files.append(SourceFile(path=_relative(filename, root), source=source, tree=tree))
    return files, errors


def analyze(
    paths: Sequence[str],
    root: str = ".",
    baseline: Baseline | None = None,
    rules: Sequence[object] | None = None,
) -> AnalysisReport:
    """Run every rule over ``paths`` and classify the findings."""
    baseline = baseline or Baseline()
    filenames = discover(paths, root)
    files, errors = parse_files(filenames, root)
    suppressions = {sf.path: Suppressions(sf.source) for sf in files}

    findings: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        check = getattr(rule, "check", None)
        if callable(check):
            for sf in files:
                findings.extend(check(sf))
        check_project = getattr(rule, "check_project", None)
        if callable(check_project):
            findings.extend(check_project(files, root))

    report = AnalysisReport(files_analyzed=len(files), errors=errors)
    seen: set[tuple[str, int, str]] = set()
    for finding in sorted(findings, key=lambda f: (f.path, f.line, f.rule, f.context)):
        dedup = (finding.key, finding.line, finding.message)
        if dedup in seen:
            continue
        seen.add(dedup)
        supp = suppressions.get(finding.path)
        if supp is not None and supp.covers(finding):
            report.suppressed.append(finding)
        elif baseline.covers(finding):
            report.baselined.append(finding)
        else:
            report.new.append(finding)
    return report
