"""APX002 -- cache-key completeness: table-derived keys must carry a version.

``docs/consistency.md`` states the contract every cache in the stack obeys:
*a cached artifact is addressable only under the table state it was derived
from*.  Concretely, any memo keyed on "this table" must fold a
``TableVersion`` token, a ``DomainStamp``, a domain fingerprint, or a
derived ``cache_token``/``cache_key``/``stable_digest`` into the key -- a
key built from a raw ``Table``/``TableSnapshot`` reference alone would keep
serving pre-mutation artifacts after an ``append_rows``/``refresh``.

This rule inspects every *key expression* flowing into a cache operation:

* ``<cache>.get(key)`` / ``<cache>.put(key, ...)`` / ``<cache>.setdefault(key, ...)``
  where the receiver's final name segment matches ``cache``/``memo``;
* subscripts ``<cache>[key]`` on such receivers (read or store).

A key expression is flagged when it references a table-like object (an
identifier matching ``table``/``tbl``/``snapshot``/``snap``, however
qualified) without also referencing any version marker (an identifier
containing ``version``, ``token``, ``stamp``, ``fingerprint``, ``digest``,
or a ``cache_key``/``cache_token``/``mask_key`` accessor).

Keys that mention no table at all (structural keys, content digests) are
out of scope; so is keying by snapshot *identity plus token*, which the
marker list recognises.  Deliberate identity-keyed designs suppress with
``# apx: ignore[APX002] <why>``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules.common import SourceFile, dotted_name

__all__ = ["CacheKeyRule"]

_CACHEISH = re.compile(r"(cache|memo)s?$", re.IGNORECASE)
_TABLEISH = re.compile(r"^(_?(table|tbl|snapshot|snap))s?$", re.IGNORECASE)
_MARKER = re.compile(
    r"(version|token|stamp|fingerprint|digest|cache_key|mask_key|key\b)",
    re.IGNORECASE,
)
_CACHE_METHODS = frozenset({"get", "put", "setdefault"})


def _receiver_is_cacheish(node: ast.expr) -> bool:
    """Whether the receiver's final name segment looks like a cache/memo."""
    if isinstance(node, ast.Attribute):
        return bool(_CACHEISH.search(node.attr))
    if isinstance(node, ast.Name):
        return bool(_CACHEISH.search(node.id))
    return False


def _identifiers(expr: ast.expr) -> Iterator[str]:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name):
            yield node.id
        elif isinstance(node, ast.Attribute):
            yield node.attr
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                yield func.attr
            elif isinstance(func, ast.Name):
                yield func.id


def _key_violation(key: ast.expr) -> str | None:
    """The offending table-like identifier, or ``None`` when the key is fine."""
    table_ref: str | None = None
    for ident in _identifiers(key):
        if _MARKER.search(ident):
            return None
        if table_ref is None and _TABLEISH.match(ident):
            table_ref = ident
    return table_ref


class CacheKeyRule:
    code = "APX002"

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(sf, node)
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(sf, node)

    def _check_call(self, sf: SourceFile, call: ast.Call) -> Iterator[Finding]:
        func = call.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _CACHE_METHODS
            and _receiver_is_cacheish(func.value)
            and call.args
        ):
            return
        yield from self._report(sf, call.args[0], func.value, call.lineno, call.col_offset)

    def _check_subscript(self, sf: SourceFile, sub: ast.Subscript) -> Iterator[Finding]:
        if not _receiver_is_cacheish(sub.value):
            return
        yield from self._report(sf, sub.slice, sub.value, sub.lineno, sub.col_offset)

    def _report(
        self,
        sf: SourceFile,
        key: ast.expr,
        receiver: ast.expr,
        lineno: int,
        col: int,
    ) -> Iterator[Finding]:
        offender = _key_violation(key)
        if offender is None:
            return
        cache_name = dotted_name(receiver)
        yield Finding(
            rule=self.code,
            path=sf.path,
            line=lineno,
            col=col,
            message=(
                f"cache key of {cache_name!r} references table-like object "
                f"{offender!r} without a version token / domain stamp / "
                "cache token -- a mutation could resurrect a stale artifact"
            ),
            context=f"{cache_name}:{offender}",
        )
