"""APX005 -- snapshot discipline: read paths admit tables via ``snapshot()``.

PR 4's wait-free read contract (``docs/consistency.md``) holds only if every
mechanism/engine read path pins a :class:`~repro.data.table.TableSnapshot`
*before* touching data: a raw :class:`~repro.data.table.Table` reference
observed mid-``append_rows`` can tear (mask evaluated at version N, counts
at N+1), and artifacts derived from it are cached under a token that no
longer describes what was read.

Scope: ``src/repro/mechanisms/`` and ``src/repro/core/engine.py`` -- the
modules whose functions receive raw tables and answer queries over them.

The rule tracks *raw-table names* inside each function:

* parameters named ``table``/``tbl`` or annotated ``Table``;
* ``self._table`` attribute chains.

A raw-table name is *sanitised* the moment it is rebound through snapshot
admission (``table = table.snapshot()``); from that line on it is trusted.
Until then, only this surface is allowed on it:

* ``.snapshot()`` / ``.open_snapshot()`` admission calls;
* data-independent metadata: ``.version_token``, ``.domain_stamp``,
  ``.domain_fingerprint``, ``.schema``;
* identity/introspection builtins (``isinstance``, ``len`` is *not* exempt
  -- row counts are data).

Anything else -- passing the raw name into a call (``query.true_counts(
table)``), touching columns, or calling mutators -- is a finding.
Parameters named/annotated as snapshots are trusted by declaration; that is
the explicit annotation this rule asks read-path helpers to carry.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules.common import SourceFile, iter_functions

__all__ = ["SnapshotDisciplineRule"]

#: Modules this rule applies to (repo-relative path prefixes / exact files).
_SCOPE_PREFIXES = ("src/repro/mechanisms/",)
_SCOPE_FILES = ("src/repro/core/engine.py",)

_RAW_PARAM = re.compile(r"^(table|tbl)s?$", re.IGNORECASE)
_SNAP_PARAM = re.compile(r"^(snap|snapshot)s?$", re.IGNORECASE)

#: Attribute surface allowed on a raw table before snapshot admission.
_ALLOWED_ATTRS = frozenset(
    {
        "snapshot",
        "open_snapshot",
        "version_token",
        "domain_stamp",
        "domain_fingerprint",
        "schema",
    }
)
_SAFE_CALLS = frozenset({"isinstance", "id", "repr", "type"})


def _annotation_name(node: ast.expr | None) -> str:
    if node is None:
        return ""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1]
    if isinstance(node, ast.BinOp):  # e.g. ``Table | None``
        return _annotation_name(node.left) or _annotation_name(node.right)
    if isinstance(node, ast.Subscript):  # e.g. ``Optional[Table]``
        return _annotation_name(node.slice)
    return ""


class SnapshotDisciplineRule:
    code = "APX005"

    def applies_to(self, path: str) -> bool:
        return path in _SCOPE_FILES or any(
            path.startswith(prefix) for prefix in _SCOPE_PREFIXES
        )

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        if not self.applies_to(sf.path):
            return
        for qualname, fn, _cls in iter_functions(sf.tree):
            yield from self._check_function(sf, qualname, fn)

    def _raw_names(self, fn) -> set[str]:
        """Parameter names bound to raw (un-admitted) tables."""
        raw: set[str] = set()
        args = list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
        for arg in args:
            ann = _annotation_name(arg.annotation)
            if _SNAP_PARAM.match(arg.arg) or ann == "TableSnapshot":
                continue
            if _RAW_PARAM.match(arg.arg) or ann == "Table":
                raw.add(arg.arg)
        return raw

    def _check_function(self, sf, qualname, fn) -> Iterator[Finding]:
        raw = self._raw_names(fn)
        if not raw and not self._touches_self_table(fn):
            return
        sanitised_after: dict[str, tuple[int, int]] = {}
        # First pass: find `name = name.snapshot()` admissions.
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr in ("snapshot", "open_snapshot")
            ):
                target = node.targets[0].id
                sanitised_after[target] = (node.lineno, node.col_offset)

        def is_sanitised(name: str, node: ast.AST) -> bool:
            mark = sanitised_after.get(name)
            return mark is not None and (node.lineno, node.col_offset) > mark

        parent: dict[int, ast.AST] = {}
        for node in ast.walk(fn):
            for child in ast.iter_child_nodes(node):
                parent[id(child)] = node

        for node in ast.walk(fn):
            target: str | None = None
            if isinstance(node, ast.Name) and node.id in raw:
                if is_sanitised(node.id, node):
                    continue
                target = node.id
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "_table"
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                target = "self._table"
            if target is None:
                continue
            finding = self._check_use(sf, qualname, fn, node, target, parent)
            if finding is not None:
                yield finding

    @staticmethod
    def _touches_self_table(fn) -> bool:
        return any(
            isinstance(n, ast.Attribute) and n.attr == "_table"
            for n in ast.walk(fn)
        )

    def _check_use(self, sf, qualname, fn, node, target, parent):
        """Classify one raw-table use; a Finding when it breaks discipline."""
        up = parent.get(id(node))
        # Attribute access: allowed metadata surface only.
        if isinstance(up, ast.Attribute) and up.value is node:
            if up.attr in _ALLOWED_ATTRS:
                return None
            return self._finding(
                sf, qualname, node,
                f"raw table {target!r} accesses {up.attr!r} outside snapshot "
                f"admission (allowed before snapshot(): {sorted(_ALLOWED_ATTRS)})",
                f"{qualname}:{target}.{up.attr}",
            )
        # Assignment contexts: storing/receiving the reference is fine.
        if isinstance(up, (ast.Assign, ast.AnnAssign)) or isinstance(
            node.ctx if hasattr(node, "ctx") else None, ast.Store
        ):
            return None
        # Call argument: leaking the raw table into evaluation.
        if isinstance(up, ast.Call) and node in list(up.args) + [
            kw.value for kw in up.keywords
        ]:
            callee = up.func
            callee_name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else ""
            )
            if callee_name in _SAFE_CALLS:
                return None
            return self._finding(
                sf, qualname, node,
                f"raw table {target!r} is passed to {callee_name or 'a call'}() "
                "before snapshot admission -- evaluate over table.snapshot() "
                "(or declare the parameter a TableSnapshot)",
                f"{qualname}:{target}->{callee_name}",
            )
        if isinstance(up, ast.Compare):
            return None  # identity / equality comparisons reveal no data
        return None

    def _finding(self, sf, qualname, node, message, context) -> Finding:
        return Finding(
            rule=self.code,
            path=sf.path,
            line=node.lineno,
            col=node.col_offset,
            message=message,
            context=context,
        )
