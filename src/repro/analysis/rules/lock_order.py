"""APX003 -- lock-order: the static acquisition graph must stay acyclic.

Seventeen ``threading.Lock``/``RLock`` instances live across the codebase
with no enforced acquisition order.  Any two code paths that take two of
them in opposite orders can deadlock under the right interleaving -- the
classic latent bug that only fires at scale.  This rule extracts the
*static lock-acquisition graph* and checks three properties:

1. **acyclicity** -- an edge ``A -> B`` is recorded whenever code acquires
   ``B`` (directly, or transitively through resolvable calls) while holding
   ``A``; a cycle is a potential deadlock and is reported with its witness
   path;
2. **no self-re-entry on a plain Lock** -- a non-reentrant ``Lock`` whose
   holder can reach another acquisition of the *same instance* (``self``
   receiver through ``self.*`` calls) self-deadlocks with certainty;
3. the resulting partial order is **emitted as the canonical lock order**
   into ``docs/consistency.md`` (``python -m repro.analysis
   --emit-lock-order``), so the convention is documented from the code, not
   beside it.

Resolution is deliberately conservative: lock identities are
``module.Class.attr`` (or ``module.name`` for module-level locks), receiver
types come from ``self._attr = ClassName(...)`` / annotated-parameter
assignments in ``__init__``, ``self.method`` dispatches over the statically
known class hierarchy (overrides included -- that is how the
``SessionLedger -> SharedBudgetPool`` edge is found), and property reads
count as calls.  Unresolvable receivers contribute no edges (documented
limitation; the runtime watchdog in :mod:`repro.analysis.runtime` covers
the dynamic remainder).  Non-blocking ``acquire(blocking=False)`` sites are
inventoried but add no edges -- a trylock cannot participate in a deadlock
(this is how the MPSC commit-drain combiner election in
``SharedBudgetPool.commit_batched`` stays clean: the drain lock is only
ever try-acquired).

**Striped lock arrays** (``self._locks = [threading.Lock() for _ in
range(n)]``, directly or via a local alias) register as one array-flagged
declaration; ``with self._locks[i]:`` resolves to that identity.  Because
elements cannot be told apart statically, holding one element while
acquiring another is reported as a finding -- matching the repo-wide
stripe discipline (hold at most one stripe at a time; the LRU resize path
drains stripes strictly one by one).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules.common import SourceFile, iter_functions

__all__ = ["LockOrderRule", "LockGraph", "build_lock_graph"]


@dataclass(frozen=True)
class LockDecl:
    """One declared lock: ``module.Class.attr`` or ``module.name``.

    ``array`` marks a *striped lock array* (``[threading.Lock() for _ in
    range(n)]``): the whole array is one identity in the graph, because the
    analyzer cannot order its elements statically.  Nested acquisition of
    two elements of one array is therefore reported as a finding -- the
    repo-wide discipline is to hold at most one stripe at a time.
    """

    lock_id: str
    kind: str  # "Lock" | "RLock"
    path: str
    line: int
    array: bool = False


@dataclass(frozen=True)
class LockEdge:
    """``held -> acquired``, witnessed by one function."""

    held: str
    acquired: str
    witness: str  # "module.Class.method" of the holding function
    path: str
    line: int
    same_instance: bool  # both ends reached through `self` on one object


@dataclass
class LockGraph:
    decls: dict[str, LockDecl] = field(default_factory=dict)
    edges: list[LockEdge] = field(default_factory=list)
    #: acquisition sites that add no edges (trylocks), for the inventory
    nonblocking_sites: list[tuple[str, str, int]] = field(default_factory=list)

    def edge_pairs(self) -> set[tuple[str, str]]:
        return {(e.held, e.acquired) for e in self.edges}

    def cycles(self) -> list[list[str]]:
        """Elementary cycles among lock ids (deduplicated by node set)."""
        adjacency: dict[str, set[str]] = {}
        for held, acquired in self.edge_pairs():
            if held != acquired:
                adjacency.setdefault(held, set()).add(acquired)
        cycles: list[list[str]] = []
        seen: set[frozenset[str]] = set()

        def dfs(start: str, node: str, path: list[str], visited: set[str]) -> None:
            for nxt in sorted(adjacency.get(node, ())):
                if nxt == start and len(path) > 1:
                    key = frozenset(path)
                    if key not in seen:
                        seen.add(key)
                        cycles.append(list(path))
                elif nxt not in visited and nxt >= start:
                    visited.add(nxt)
                    dfs(start, nxt, path + [nxt], visited)
                    visited.discard(nxt)

        for start in sorted(adjacency):
            dfs(start, start, [start], {start})
        return cycles

    def canonical_order(self) -> list[str]:
        """Deterministic topological order of the acquisition graph.

        Locks that appear in edges come first (holders before held-while
        targets); isolated locks follow, sorted by id.  Cycle members are
        appended in sorted order at the end (the cycle itself is a
        finding).
        """
        pairs = {(a, b) for a, b in self.edge_pairs() if a != b}
        nodes = sorted({n for pair in pairs for n in pair})
        indegree = {n: 0 for n in nodes}
        for _, b in pairs:
            indegree[b] += 1
        order: list[str] = []
        ready = sorted(n for n in nodes if indegree[n] == 0)
        pairs_left = set(pairs)
        while ready:
            node = ready.pop(0)
            order.append(node)
            for a, b in sorted(pairs_left):
                if a == node:
                    pairs_left.discard((a, b))
                    indegree[b] -= 1
                    if indegree[b] == 0 and b not in ready and b not in order:
                        ready.append(b)
            ready.sort()
        order.extend(n for n in nodes if n not in order)  # cycle members
        order.extend(sorted(set(self.decls) - set(order)))
        return order


# ---------------------------------------------------------------------------
# extraction
# ---------------------------------------------------------------------------


def _module_name(path: str) -> str:
    """``src/repro/core/lru.py`` -> ``repro.core.lru``."""
    trimmed = path
    if trimmed.startswith("src/"):
        trimmed = trimmed[4:]
    if trimmed.endswith(".py"):
        trimmed = trimmed[:-3]
    if trimmed.endswith("/__init__"):
        trimmed = trimmed[: -len("/__init__")]
    return trimmed.replace("/", ".")


def _lock_kind(node: ast.expr) -> str | None:
    """``"Lock"``/``"RLock"`` when ``node`` constructs or names a lock type."""
    if isinstance(node, ast.Call):
        func = node.func
        name = (
            func.attr
            if isinstance(func, ast.Attribute)
            else func.id
            if isinstance(func, ast.Name)
            else ""
        )
        if name in ("Lock", "RLock"):
            return name
        # dataclasses.field(default_factory=threading.Lock)
        for kw in node.keywords:
            if kw.arg == "default_factory":
                inner = _lock_kind_of_factory(kw.value)
                if inner:
                    return inner
    return None


def _lock_kind_of_factory(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute) and node.attr in ("Lock", "RLock"):
        return node.attr
    if isinstance(node, ast.Name) and node.id in ("Lock", "RLock"):
        return node.id
    return None


def _lock_array_kind(node: ast.expr) -> str | None:
    """Lock kind when ``node`` constructs a striped lock *array*.

    Recognized shapes: ``[threading.Lock() for _ in range(n)]`` (and the
    generator/tuple-call variants ``tuple(Lock() for ...)`` /
    ``list(...)``), plus literal ``[Lock(), Lock(), ...]`` lists/tuples.
    """
    if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp)):
        return _lock_kind(node.elt)
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else ""
        if name in ("list", "tuple") and len(node.args) == 1:
            return _lock_array_kind(node.args[0])
    if isinstance(node, (ast.List, ast.Tuple)) and node.elts:
        kinds = {_lock_kind(e) for e in node.elts}
        if len(kinds) == 1 and None not in kinds:
            return kinds.pop()
    return None


def _annotation_names(node: ast.expr | None) -> list[str]:
    if node is None:
        return []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return []
    names: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            names.append(sub.id)
        elif isinstance(sub, ast.Attribute):
            names.append(sub.attr)
    return names


@dataclass
class _FunctionInfo:
    qualname: str  # module.Class.method
    cls: str | None
    module: str
    path: str
    fn: ast.AST
    #: locks acquired directly: (lock_id, receiver_is_self, blocking, line)
    direct: list[tuple[str, bool, bool, int]] = field(default_factory=list)
    #: calls made while holding locks: (held_stack, callee descriptor, line)
    held_calls: list[tuple[tuple[tuple[str, bool], ...], "_Callee", int]] = field(
        default_factory=list
    )
    #: nested with-acquisitions: (held_stack, (lock_id, self?), line)
    held_acquires: list[
        tuple[tuple[tuple[str, bool], ...], tuple[str, bool], int]
    ] = field(default_factory=list)
    #: every resolvable call/property-read, held or not (fixpoint input)
    calls: list["_Callee"] = field(default_factory=list)


@dataclass(frozen=True)
class _Callee:
    """A call (or property read) to resolve later."""

    kind: str  # "self" | "attr" | "name" | "super"
    method: str  # method/property/function name
    attr: str = ""  # for kind == "attr": the receiver attribute on self


class _Corpus:
    """Everything extracted in one pass over all files."""

    def __init__(self) -> None:
        self.decls: dict[str, LockDecl] = {}
        #: class name -> {lock attr -> lock_id}
        self.class_locks: dict[str, dict[str, str]] = {}
        #: module -> {name -> lock_id} (module-level locks)
        self.module_locks: dict[str, dict[str, str]] = {}
        #: class -> base class names
        self.bases: dict[str, list[str]] = {}
        #: class -> {attr -> inferred class name}
        self.attr_types: dict[str, dict[str, str]] = {}
        #: class -> set of @property names
        self.properties: dict[str, set[str]] = {}
        #: method name -> [(class, qualname)]
        self.methods_by_name: dict[str, list[tuple[str, str]]] = {}
        #: (module, name) -> qualname for module-level functions
        self.module_functions: dict[tuple[str, str], str] = {}
        #: qualname -> _FunctionInfo
        self.functions: dict[str, _FunctionInfo] = {}
        #: class name -> module
        self.class_module: dict[str, str] = {}

    def subclasses(self, cls: str) -> set[str]:
        out = {cls}
        changed = True
        while changed:
            changed = False
            for sub, bases in self.bases.items():
                if sub not in out and any(b in out for b in bases):
                    out.add(sub)
                    changed = True
        return out

    def superclasses(self, cls: str) -> set[str]:
        out = {cls}
        frontier = [cls]
        while frontier:
            current = frontier.pop()
            for base in self.bases.get(current, []):
                if base not in out:
                    out.add(base)
                    frontier.append(base)
        return out

    def hierarchy(self, cls: str) -> set[str]:
        return self.subclasses(cls) | self.superclasses(cls)

    def lock_for_attr(self, cls: str | None, attr: str) -> str | None:
        """Resolve ``self.<attr>`` (searching the class hierarchy) or any
        unique class declaring ``attr`` for foreign receivers."""
        if cls is not None:
            for candidate in sorted(self.hierarchy(cls)):
                lock = self.class_locks.get(candidate, {}).get(attr)
                if lock is not None:
                    return lock
        owners = [
            locks[attr]
            for locks in self.class_locks.values()
            if attr in locks
        ]
        if len(set(owners)) == 1:
            return owners[0]
        return None


def _extract(files: list[SourceFile]) -> _Corpus:
    corpus = _Corpus()
    for sf in files:
        module = _module_name(sf.path)
        _extract_module(corpus, sf, module)
    return corpus


def _extract_module(corpus: _Corpus, sf: SourceFile, module: str) -> None:
    # Module-level locks and functions.
    for node in sf.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            kind = _lock_kind(node.value)
            array_kind = None if kind else _lock_array_kind(node.value)
            if (kind or array_kind) and isinstance(target, ast.Name):
                lock_id = f"{module}.{target.id}"
                corpus.decls[lock_id] = LockDecl(
                    lock_id,
                    kind or array_kind,
                    sf.path,
                    node.lineno,
                    array=array_kind is not None,
                )
                corpus.module_locks.setdefault(module, {})[target.id] = lock_id
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            corpus.module_functions[(module, node.name)] = f"{module}.{node.name}"
        elif isinstance(node, ast.ClassDef):
            _extract_class(corpus, sf, module, node)

    # Function bodies (methods and module functions alike).
    for qualname, fn, cls in iter_functions(sf.tree):
        info = _FunctionInfo(
            qualname=f"{module}.{qualname}", cls=cls, module=module, path=sf.path, fn=fn
        )
        _extract_function_body(corpus, info, fn, cls, module)
        corpus.functions[info.qualname] = info
        method_name = qualname.rsplit(".", 1)[-1]
        if cls is not None:
            corpus.methods_by_name.setdefault(method_name, []).append(
                (cls, info.qualname)
            )


def _extract_class(corpus: _Corpus, sf: SourceFile, module: str, node: ast.ClassDef) -> None:
    cls = node.name
    corpus.class_module[cls] = module
    corpus.bases[cls] = [
        b.id if isinstance(b, ast.Name) else b.attr if isinstance(b, ast.Attribute) else ""
        for b in node.bases
    ]
    # Class-body lock declarations (dataclass fields).
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names = _annotation_names(stmt.annotation)
            if "Lock" in names or "RLock" in names:
                kind = "RLock" if "RLock" in names else "Lock"
                lock_id = f"{module}.{cls}.{stmt.target.id}"
                corpus.decls[lock_id] = LockDecl(lock_id, kind, sf.path, stmt.lineno)
                corpus.class_locks.setdefault(cls, {})[stmt.target.id] = lock_id
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if any(
                (isinstance(d, ast.Name) and d.id == "property")
                or (isinstance(d, ast.Attribute) and d.attr in ("property", "cached_property"))
                for d in stmt.decorator_list
            ):
                corpus.properties.setdefault(cls, set()).add(stmt.name)
            _extract_init_facts(corpus, sf, module, cls, stmt)


def _extract_init_facts(corpus, sf, module, cls, fn) -> None:
    """``self._x = Lock()`` declarations and ``self._x = <Type>`` inference.

    Striped lock arrays are declared either directly (``self._locks =
    [threading.Lock() for _ in range(n)]``) or through a simple local
    alias (``locks = [...]; self._locks = locks``) -- both shapes register
    one array-flagged :class:`LockDecl` for the attribute.
    """
    local_arrays: dict[str, str] = {}
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
        ):
            array_kind = _lock_array_kind(node.value)
            if array_kind:
                local_arrays[node.targets[0].id] = array_kind
    param_types: dict[str, str] = {}
    args = list(fn.args.posonlyargs) + list(fn.args.args) + list(fn.args.kwonlyargs)
    for arg in args:
        names = [n for n in _annotation_names(arg.annotation) if n[:1].isupper()]
        if len(names) == 1:
            param_types[arg.arg] = names[0]
        elif names:
            non_none = [n for n in names if n not in ("None", "Optional", "Union")]
            if len(non_none) == 1:
                param_types[arg.arg] = non_none[0]
    for node in ast.walk(fn):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            continue
        attr = target.attr
        kind = _lock_kind(node.value)
        if kind:
            lock_id = f"{module}.{cls}.{attr}"
            corpus.decls[lock_id] = LockDecl(lock_id, kind, sf.path, node.lineno)
            corpus.class_locks.setdefault(cls, {})[attr] = lock_id
            continue
        array_kind = _lock_array_kind(node.value)
        if array_kind is None and isinstance(node.value, ast.Name):
            array_kind = local_arrays.get(node.value.id)
        if array_kind:
            lock_id = f"{module}.{cls}.{attr}"
            corpus.decls[lock_id] = LockDecl(
                lock_id, array_kind, sf.path, node.lineno, array=True
            )
            corpus.class_locks.setdefault(cls, {})[attr] = lock_id
            continue
        if isinstance(node.value, ast.Call):
            func = node.value.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else ""
            )
            if name[:1].isupper():
                corpus.attr_types.setdefault(cls, {})[attr] = name
        elif isinstance(node.value, ast.Name) and node.value.id in param_types:
            corpus.attr_types.setdefault(cls, {})[attr] = param_types[node.value.id]


def _lock_of_expr(
    corpus: _Corpus, expr: ast.expr, cls: str | None, module: str
) -> tuple[str, bool] | None:
    """Resolve a with-item / acquire receiver to ``(lock_id, is_self)``."""
    if isinstance(expr, ast.Subscript):
        # Striped array element: `self._locks[i]` / `LOCKS[i]`.  The whole
        # array is one lock identity -- elements cannot be told apart
        # statically, so nesting two of them surfaces as same-instance
        # re-entry (reported with an array-specific message).
        return _lock_of_expr(corpus, expr.value, cls, module)
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id == "self":
            lock = corpus.lock_for_attr(cls, expr.attr)
            return (lock, True) if lock else None
        # foreign receiver: `handle.run_lock` -- unique attr name wins
        lock = corpus.lock_for_attr(None, expr.attr)
        return (lock, False) if lock else None
    if isinstance(expr, ast.Name):
        lock = corpus.module_locks.get(module, {}).get(expr.id)
        return (lock, False) if lock else None
    return None


def _is_nonblocking_acquire(call: ast.Call) -> bool:
    for kw in call.keywords:
        if kw.arg == "blocking" and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    if call.args and isinstance(call.args[0], ast.Constant):
        return call.args[0].value is False
    return False


def _extract_function_body(corpus, info: _FunctionInfo, fn, cls, module) -> None:
    """Collect acquisitions, nested acquisitions and held-calls of one body."""

    def walk(stmts, held: tuple[tuple[str, bool], ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            new_held = held
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    resolved = _lock_of_expr(
                        corpus, item.context_expr, cls, module
                    )
                    if resolved is not None:
                        info.direct.append(
                            (resolved[0], resolved[1], True, stmt.lineno)
                        )
                        if new_held:
                            info.held_acquires.append(
                                (new_held, resolved, stmt.lineno)
                            )
                        new_held = new_held + (resolved,)
                    else:
                        _scan_expr(item.context_expr, new_held, stmt.lineno)
                walk(stmt.body, new_held)
                continue
            # .acquire() calls and plain statements: scan expressions.
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    func = node.func
                    if isinstance(func, ast.Attribute) and func.attr == "acquire":
                        resolved = _lock_of_expr(corpus, func.value, cls, module)
                        if resolved is not None:
                            blocking = not _is_nonblocking_acquire(node)
                            info.direct.append(
                                (resolved[0], resolved[1], blocking, node.lineno)
                            )
                            if held and blocking:
                                info.held_acquires.append(
                                    (held, resolved, node.lineno)
                                )
                            continue
            _scan_stmt_calls(stmt, held)
            # recurse into compound statements, preserving the held stack
            for attr_name in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, attr_name, None)
                if isinstance(sub, list) and sub and isinstance(sub[0], ast.stmt):
                    walk(sub, held)
            for handler in getattr(stmt, "handlers", []):
                walk(handler.body, held)

    def _scan_stmt_calls(stmt: ast.stmt, held) -> None:
        # Do not descend into nested statement lists: those are walked with
        # their own held stacks.
        for node in ast.iter_child_nodes(stmt):
            if isinstance(node, ast.stmt):
                continue
            _scan_expr(node, held, stmt.lineno)

    def _scan_expr(node: ast.AST, held, lineno: int) -> None:
        for sub in ast.walk(node):
            callee = _callee_of(sub)
            if callee is not None:
                info.calls.append(callee)
                if held:
                    info.held_calls.append((held, callee, lineno))

    def _callee_of(node: ast.AST) -> _Callee | None:
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                return _Callee("name", func.id)
            if isinstance(func, ast.Attribute):
                value = func.value
                if isinstance(value, ast.Name) and value.id == "self":
                    return _Callee("self", func.attr)
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id == "super"
                ):
                    return _Callee("super", func.attr)
                if (
                    isinstance(value, ast.Attribute)
                    and isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                ):
                    return _Callee("attr", func.attr, attr=value.attr)
        elif isinstance(node, ast.Attribute) and not isinstance(
            getattr(node, "ctx", None), ast.Store
        ):
            # property read: self.remaining / self._pool.remaining
            value = node.value
            if isinstance(value, ast.Name) and value.id == "self":
                return _Callee("self", node.attr)
            if (
                isinstance(value, ast.Attribute)
                and isinstance(value.value, ast.Name)
                and value.value.id == "self"
            ):
                return _Callee("attr", node.attr, attr=value.attr)
        return None

    walk(list(fn.body), ())


# ---------------------------------------------------------------------------
# call resolution and transitive acquisition
# ---------------------------------------------------------------------------


def _resolve_callee(
    corpus: _Corpus, info: _FunctionInfo, callee: _Callee
) -> tuple[list[str], bool]:
    """Resolve to function qualnames; second value: same-instance call."""
    if callee.kind == "name":
        qual = corpus.module_functions.get((info.module, callee.method))
        return ([qual] if qual else []), False
    if callee.kind in ("self", "super"):
        if info.cls is None:
            return [], False
        classes = (
            corpus.superclasses(info.cls) - {info.cls}
            if callee.kind == "super"
            else corpus.hierarchy(info.cls)
        )
        quals = [
            qual
            for cls, qual in corpus.methods_by_name.get(callee.method, [])
            if cls in classes
        ]
        return quals, True
    if callee.kind == "attr":
        if info.cls is None:
            return [], False
        target_cls = None
        for candidate in sorted(corpus.hierarchy(info.cls)):
            target_cls = corpus.attr_types.get(candidate, {}).get(callee.attr)
            if target_cls:
                break
        if not target_cls:
            return [], False
        classes = corpus.subclasses(target_cls)
        quals = [
            qual
            for cls, qual in corpus.methods_by_name.get(callee.method, [])
            if cls in classes
        ]
        return quals, False
    return [], False


def _transitive_acquires(corpus: _Corpus) -> dict[str, set[tuple[str, bool]]]:
    """qualname -> {(lock_id, same_instance_via_self)} to a fixpoint."""
    acquires: dict[str, set[tuple[str, bool]]] = {}
    for qual, info in corpus.functions.items():
        acquires[qual] = {
            (lock, is_self)
            for lock, is_self, blocking, _line in info.direct
            if blocking
        }
    changed = True
    iterations = 0
    while changed and iterations < 50:
        changed = False
        iterations += 1
        for qual, info in corpus.functions.items():
            current = acquires[qual]
            for callee in info.calls:
                quals, same_instance = _resolve_callee(corpus, info, callee)
                for target in quals:
                    for lock, via_self in acquires.get(target, ()):
                        entry = (lock, via_self and same_instance)
                        if entry not in current:
                            current.add(entry)
                            changed = True
    return acquires


def build_lock_graph(files: list[SourceFile]) -> LockGraph:
    """Extract the full static lock graph of the analyzed corpus."""
    corpus = _Corpus()
    for sf in files:
        _extract_module(corpus, sf, _module_name(sf.path))
    acquires = _transitive_acquires(corpus)

    graph = LockGraph(decls=dict(corpus.decls))
    for qual, info in corpus.functions.items():
        for lock, is_self, blocking, line in info.direct:
            if not blocking:
                graph.nonblocking_sites.append((lock, info.path, line))
        for held_stack, (lock, is_self), line in info.held_acquires:
            for held_lock, held_self in held_stack:
                graph.edges.append(
                    LockEdge(
                        held=held_lock,
                        acquired=lock,
                        witness=qual,
                        path=info.path,
                        line=line,
                        same_instance=held_self and is_self,
                    )
                )
        for held_stack, callee, line in info.held_calls:
            quals, same_instance = _resolve_callee(corpus, info, callee)
            for target in quals:
                for lock, via_self in acquires.get(target, ()):
                    for held_lock, held_self in held_stack:
                        graph.edges.append(
                            LockEdge(
                                held=held_lock,
                                acquired=lock,
                                witness=f"{qual} -> {target}",
                                path=info.path,
                                line=line,
                                same_instance=(
                                    held_self and via_self and same_instance
                                ),
                            )
                        )
    return graph


# ---------------------------------------------------------------------------
# the rule
# ---------------------------------------------------------------------------


class LockOrderRule:
    code = "APX003"

    def check_project(
        self, files: list[SourceFile], root: str
    ) -> Iterator[Finding]:
        graph = build_lock_graph(files)

        # 1. cycles across distinct locks
        for cycle in graph.cycles():
            witnesses = [
                e
                for e in graph.edges
                if e.held in cycle and e.acquired in cycle and e.held != e.acquired
            ]
            anchor = min(witnesses, key=lambda e: (e.path, e.line), default=None)
            path = anchor.path if anchor else files[0].path
            line = anchor.line if anchor else 1
            loop = " -> ".join(cycle + [cycle[0]])
            yield Finding(
                rule=self.code,
                path=path,
                line=line,
                col=0,
                message=(
                    f"lock acquisition cycle {loop}: two paths can take these "
                    "locks in opposite orders and deadlock "
                    f"(witnesses: {', '.join(sorted({e.witness for e in witnesses})[:4])})"
                ),
                context=f"cycle:{'|'.join(sorted(set(cycle)))}",
            )

        # 2. same-instance re-entry on a non-reentrant Lock, and nested
        #    acquisition of two elements of one striped lock array (the
        #    elements cannot be ordered statically; the repo discipline is
        #    to hold at most one stripe at a time)
        reported: set[tuple[str, str]] = set()
        for edge in graph.edges:
            if not (edge.held == edge.acquired and edge.same_instance):
                continue
            decl = graph.decls.get(edge.held)
            if decl is None or (edge.held, edge.witness) in reported:
                continue
            if decl.array:
                reported.add((edge.held, edge.witness))
                yield Finding(
                    rule=self.code,
                    path=edge.path,
                    line=edge.line,
                    col=0,
                    message=(
                        f"two elements of striped lock array {edge.held} are "
                        f"held at once via {edge.witness} -- stripe elements "
                        "have no static order (same element self-deadlocks; "
                        "distinct elements deadlock against the opposite "
                        "nesting); hold one stripe at a time"
                    ),
                    context=f"array-nesting:{edge.held}|{edge.witness}",
                )
            elif decl.kind == "Lock":
                reported.add((edge.held, edge.witness))
                yield Finding(
                    rule=self.code,
                    path=edge.path,
                    line=edge.line,
                    col=0,
                    message=(
                        f"non-reentrant Lock {edge.held} can be re-acquired by "
                        f"its holder via {edge.witness} -- guaranteed "
                        "self-deadlock; use RLock or restructure"
                    ),
                    context=f"reentry:{edge.held}|{edge.witness}",
                )
