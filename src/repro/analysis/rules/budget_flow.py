"""APX001 -- budget-flow: reservations must be consumed on every path.

The two-phase accounting protocol (``docs/reliability.md``) hinges on an
invariant no type checker can see: every successful
:meth:`~repro.core.accounting.PrivacyLedger.reserve` (and every directly
constructed ``BudgetReservation``) must reach exactly one
``charge(reservation=...)`` or ``release(...)`` -- on *every* control path,
including the exception edges.  A path that drops a live reservation leaks
worst-case budget headroom forever: ``remaining`` shrinks, no transcript
entry records why, and ``assert_invariants`` only notices if the orphaned
object is also missing from the active-reservation index.

This rule runs the :mod:`repro.analysis.cfg` engine per reservation binding
and reports any function exit (normal return, fallthrough, or propagating
exception) reachable with the reservation still live.

Abstract states
---------------

``pre``     before the binding executes
``maybe``   bound from ``.reserve()`` -- live, possibly ``None`` (refused)
``nonnull`` live and proven non-``None`` (branch refinement, or a
            ``BudgetReservation(...)`` constructor, which never returns None)
``none``    proven ``None`` -- nothing was reserved, nothing to consume
``dead``    consumed (charged, released, returned, or handed to a callee)

Consumption events
------------------

* passing the name directly to any non-builtin call -- ``charge(...,
  reservation=r)``, ``release(r)``, or any helper that takes ownership.  On
  the call's *exception* edge the reservation stays live (the ledger
  validates before consuming) unless the callee name contains ``release``;
* ``return r`` -- ownership moves to the caller;
* aliasing (``other = r``) -- tracked conservatively as a handoff.

Storing the reservation in a container or attribute is *not* consumption:
the ledger itself indexes active reservations (``_active_reservations``)
purely as bookkeeping, and treating that store as a handoff would have
hidden a real leak (see ``tests/core/test_accounting.py::
TestReserveJournalFailure``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis import cfg
from repro.analysis.findings import Finding
from repro.analysis.rules.common import (
    SourceFile,
    call_name,
    iter_functions,
    name_in_call_args,
)

__all__ = ["BudgetFlowRule"]

#: Calls that never take ownership of their arguments.
_BUILTIN_SINKS = frozenset(
    {"id", "len", "repr", "str", "bool", "float", "int", "print", "isinstance",
     "type", "hash", "format", "getattr"}
)

_PRE = "pre"
_MAYBE = "maybe"
_NONNULL = "nonnull"
_NONE = "none"
_DEAD = "dead"
_LIVE = (_MAYBE, _NONNULL)


def _is_reserve_call(node: ast.expr) -> str | None:
    """``"maybe"``/``"nonnull"`` when ``node`` produces a reservation."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "reserve":
        return _MAYBE
    name = call_name(node)
    if name == "BudgetReservation":
        return _NONNULL
    return None


class _ReservationClient(cfg.FlowClient):
    """Tracks one named reservation binding through the flow engine."""

    def __init__(self, name: str, binding: ast.Assign) -> None:
        self.name = name
        self.binding = binding
        self.binding_state = _is_reserve_call(binding.value) or _MAYBE
        #: (stmt, description) pairs for overwrite-while-live leaks.
        self.overwrites: list[ast.stmt] = []

    # -- helpers ------------------------------------------------------------------

    def _assigns_name(self, stmt: ast.stmt) -> bool:
        if isinstance(stmt, ast.Assign):
            targets = stmt.targets
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        else:
            return False
        return any(
            isinstance(t, ast.Name) and t.id == self.name for t in targets
        )

    def _consumers(self, stmt: ast.stmt) -> list[ast.Call]:
        """Calls within ``stmt`` that receive the tracked name directly."""
        out = []
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and call_name(node) not in _BUILTIN_SINKS
                and name_in_call_args(node, self.name)
            ):
                out.append(node)
        return out

    def _aliases_name(self, stmt: ast.stmt) -> bool:
        """``other = r`` style handoff (value is the bare tracked name).

        Only a plain-``Name`` target counts: a container or attribute store
        (``registry[id(r)] = r``, ``self._pending = r``) is bookkeeping, not
        a handoff -- treating it as one masked the ``PrivacyLedger.reserve``
        journal-raise leak behind the ``_active_reservations`` index store.
        """
        return (
            isinstance(stmt, ast.Assign)
            and isinstance(stmt.value, ast.Name)
            and stmt.value.id == self.name
            and any(
                isinstance(t, ast.Name) and t.id != self.name
                for t in stmt.targets
            )
        )

    def _captured_by_def(self, stmt: ast.stmt) -> bool:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return False
        return any(
            isinstance(n, ast.Name) and n.id == self.name for n in ast.walk(stmt)
        )

    # -- FlowClient hooks ---------------------------------------------------------

    def transfer(self, stmt: ast.stmt, state):
        if stmt is self.binding:
            if state in _LIVE:
                self.overwrites.append(stmt)
            return self.binding_state
        if self._assigns_name(stmt):
            if state in _LIVE:
                self.overwrites.append(stmt)
            return _DEAD if state != _PRE else _PRE
        if state not in _LIVE:
            return state
        if isinstance(stmt, ast.Return):
            if stmt.value is not None and any(
                isinstance(n, ast.Name) and n.id == self.name
                for n in ast.walk(stmt.value)
            ):
                return _DEAD
            return state
        if self._aliases_name(stmt) or self._captured_by_def(stmt):
            return _DEAD
        if isinstance(stmt, ast.Delete):
            if any(
                isinstance(t, ast.Name) and t.id == self.name for t in stmt.targets
            ):
                return _DEAD
        if self._consumers(stmt):
            return _DEAD
        return state

    def transfer_raise(self, stmt: ast.stmt, state):
        if stmt is self.binding:
            # The producing call raised: nothing was reserved.
            return _DEAD
        if state in _LIVE:
            consumers = self._consumers(stmt)
            if consumers and all(
                "release" in call_name(c) for c in consumers
            ):
                # release() is the abort path; treat its own failure as
                # consuming -- callers re-raise immediately and a failed
                # release is already a loud accounting error.
                return _DEAD
        return state

    def refine(self, test: ast.expr, state, branch: bool):
        if isinstance(test, ast.Constant):
            return state if bool(test.value) == branch else None
        if state not in _LIVE and state != _NONE:
            return state
        # `not X` flips the branch sense.
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            return self.refine(test.operand, state, not branch)
        is_name = isinstance(test, ast.Name) and test.id == self.name
        if is_name:
            # truthiness: a BudgetReservation instance is always truthy.
            if state == _NONE:
                return state if not branch else None
            return _NONNULL if branch else _NONE
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            operands = (left, right)
            names = [
                n for n in operands if isinstance(n, ast.Name) and n.id == self.name
            ]
            nones = [
                n
                for n in operands
                if isinstance(n, ast.Constant) and n.value is None
            ]
            if names and nones:
                is_none_test = isinstance(op, ast.Is) or isinstance(op, ast.Eq)
                if isinstance(op, (ast.IsNot, ast.NotEq)):
                    is_none_test = False
                    branch = not branch
                elif not is_none_test:
                    return state
                # branch==True on an `is None` test means: it IS None.
                if state == _NONE:
                    return state if branch else None
                return _NONE if branch else _NONNULL
        return state


class BudgetFlowRule:
    code = "APX001"

    def check(self, sf: SourceFile) -> Iterator[Finding]:
        for qualname, fn, _cls in iter_functions(sf.tree):
            yield from self._check_function(sf, qualname, fn)

    def _check_function(self, sf, qualname, fn) -> Iterator[Finding]:
        nested: set[int] = set()
        for node in ast.walk(fn):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not fn:
                nested.update(id(sub) for sub in ast.walk(node) if sub is not node)
        facts: list[tuple[str, ast.Assign, int]] = []
        ordinal = 0
        for node in ast.walk(fn):
            if id(node) in nested:
                continue  # nested defs are visited by iter_functions
            if isinstance(node, ast.Expr) and _is_reserve_call(node.value):
                if isinstance(node.value, ast.Call) and call_name(node.value) != "BudgetReservation":
                    yield Finding(
                        rule=self.code,
                        path=sf.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "the reserve() result is discarded -- a successful "
                            "reservation can never be charged or released"
                        ),
                        context=f"{qualname}:discarded",
                    )
            if isinstance(node, ast.Assign) and _is_reserve_call(node.value):
                if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
                    facts.append((node.targets[0].id, node, ordinal))
                    ordinal += 1

        for name, binding, idx in facts:
            client = _ReservationClient(name, binding)
            exits = cfg.run_flow(fn, client, _PRE)
            context = f"{qualname}.{name}#{idx}"
            leaks: list[str] = []
            if any(s in _LIVE for s in exits[cfg.RETURN]):
                leaks.append("a normal exit")
            if any(s in _LIVE for s in exits[cfg.RAISE]):
                leaks.append("an exception path")
            if leaks:
                yield Finding(
                    rule=self.code,
                    path=sf.path,
                    line=binding.lineno,
                    col=binding.col_offset,
                    message=(
                        f"reservation {name!r} can leave {qualname}() via "
                        f"{' and '.join(leaks)} without reaching "
                        "charge()/release()"
                    ),
                    context=context,
                )
            for stmt in client.overwrites:
                yield Finding(
                    rule=self.code,
                    path=sf.path,
                    line=stmt.lineno,
                    col=stmt.col_offset,
                    message=(
                        f"reservation {name!r} is overwritten while still "
                        "live -- the previous reservation can no longer be "
                        "charged or released"
                    ),
                    context=f"{context}:overwrite",
                )
