"""Shared AST helpers for the rule implementations."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "SourceFile",
    "iter_functions",
    "call_name",
    "dotted_name",
    "name_in_call_args",
]


@dataclass
class SourceFile:
    """One parsed module: repo-relative path, raw source, AST."""

    path: str  # repository-relative, forward slashes
    source: str
    tree: ast.Module


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
    """Yield ``(qualname, function_node, enclosing_class_name)`` pairs.

    ``qualname`` is dotted through classes and outer functions
    (``Class.method``, ``outer.<locals>.inner``) so finding contexts stay
    stable under reformatting.
    """

    def visit(node: ast.AST, prefix: str, cls: str | None):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child, cls
                yield from visit(child, f"{qual}.<locals>.", cls)
            elif isinstance(child, ast.ClassDef):
                yield from visit(child, f"{prefix}{child.name}.", child.name)
            else:
                yield from visit(child, prefix, cls)

    yield from visit(tree, "", None)


def call_name(call: ast.Call) -> str:
    """The final name segment of a call's callee (``''`` when unnameable)."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def dotted_name(node: ast.expr) -> str:
    """Best-effort dotted rendering of a Name/Attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        parts.append(f"{node.func.id}()")
    else:
        parts.append("?")
    return ".".join(reversed(parts))


def name_in_call_args(call: ast.Call, name: str) -> bool:
    """Whether ``name`` is passed directly (positionally or by keyword)."""
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == name:
            return True
        if isinstance(arg, ast.Starred) and isinstance(arg.value, ast.Name):
            if arg.value.id == name:
                return True
    for kw in call.keywords:
        if isinstance(kw.value, ast.Name) and kw.value.id == name:
            return True
    return False
