"""APX004 -- failpoint registry: ``fail_point()`` sites and the registry agree.

The crash exerciser (``tests/reliability``) and ``REPRO_FAILPOINTS`` arming
both address failure-injection sites *by name* through
``repro.reliability.faults.FAILPOINT_SITES``.  The registry is only useful
while it is exact, in both directions:

* a ``fail_point("x")`` call whose name is **not registered** is invisible
  to the exerciser -- that crash point is silently untested;
* a registered name with **no call site** means a fault schedule can "arm"
  a point that never fires, and a crash-safety run passes vacuously.

This is a project-level rule: it parses ``FAILPOINT_SITES`` out of
``faults.py`` and sweeps every analyzed module for ``fail_point(...)``
calls.  Non-literal site names (``fail_point(name_var)``) are also flagged
-- dynamic names defeat the registry's whole purpose.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules.common import SourceFile

__all__ = ["FailpointRegistryRule"]

_REGISTRY_FILE = "src/repro/reliability/faults.py"
_REGISTRY_NAME = "FAILPOINT_SITES"


def _registry_sites(sf: SourceFile) -> tuple[dict[str, int], int]:
    """``{site_name: lineno}`` from ``FAILPOINT_SITES``, plus its lineno."""
    for node in sf.tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not any(
            isinstance(t, ast.Name) and t.id == _REGISTRY_NAME for t in targets
        ):
            continue
        sites: dict[str, int] = {}
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    sites.setdefault(element.value, element.lineno)
        return sites, node.lineno
    return {}, 1


class FailpointRegistryRule:
    code = "APX004"

    def check_project(
        self, files: list[SourceFile], root: str
    ) -> Iterator[Finding]:
        registry_sf = next(
            (sf for sf in files if sf.path == _REGISTRY_FILE), None
        )
        if registry_sf is None:
            return  # analyzing a subtree without the reliability package
        registered, _ = _registry_sites(registry_sf)

        used: dict[str, tuple[str, int]] = {}
        for sf in files:
            for node in ast.walk(sf.tree):
                if not (
                    isinstance(node, ast.Call)
                    and (
                        (isinstance(node.func, ast.Name) and node.func.id == "fail_point")
                        or (
                            isinstance(node.func, ast.Attribute)
                            and node.func.attr == "fail_point"
                        )
                    )
                    and node.args
                ):
                    continue
                site = node.args[0]
                if isinstance(site, ast.Constant) and isinstance(site.value, str):
                    used.setdefault(site.value, (sf.path, node.lineno))
                    if site.value not in registered:
                        yield Finding(
                            rule=self.code,
                            path=sf.path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"fail_point site {site.value!r} is not in "
                                f"{_REGISTRY_NAME} -- the crash exerciser can "
                                "never schedule this crash point"
                            ),
                            context=f"unregistered:{site.value}",
                        )
                else:
                    yield Finding(
                        rule=self.code,
                        path=sf.path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            "fail_point() called with a non-literal site name "
                            "-- dynamic names cannot be audited against "
                            f"{_REGISTRY_NAME}"
                        ),
                        context=f"dynamic:{sf.path}:{node.lineno}",
                    )

        for name, line in sorted(registered.items()):
            if name not in used:
                yield Finding(
                    rule=self.code,
                    path=_REGISTRY_FILE,
                    line=line,
                    col=0,
                    message=(
                        f"registered failpoint {name!r} has no fail_point() "
                        "call site -- fault schedules arming it pass vacuously"
                    ),
                    context=f"orphan:{name}",
                )
