"""The repo-specific rule catalog (APX001..APX005).

Two rule shapes exist:

* **per-file rules** implement ``check(source_file)`` and see one parsed
  module at a time (APX001, APX002, APX005);
* **project rules** implement ``check_project(files, root)`` and see the
  whole parsed corpus at once -- the lock-order graph (APX003) and the
  failpoint registry reconciliation (APX004) are inherently cross-module.

``all_rules()`` is the ordered registry the runner iterates.
"""

from __future__ import annotations

from repro.analysis.rules.budget_flow import BudgetFlowRule
from repro.analysis.rules.cache_keys import CacheKeyRule
from repro.analysis.rules.failpoints import FailpointRegistryRule
from repro.analysis.rules.lock_order import LockOrderRule
from repro.analysis.rules.snapshots import SnapshotDisciplineRule

__all__ = ["all_rules"]


def all_rules():
    """The ordered rule instances of one analyzer run."""
    return [
        BudgetFlowRule(),
        CacheKeyRule(),
        LockOrderRule(),
        FailpointRegistryRule(),
        SnapshotDisciplineRule(),
    ]
