"""Tests for the shared bounded LRU used by the engine's cache layers."""

import pytest

from repro.core.lru import LRUCache


class TestLRUCache:
    def test_get_put_and_counters(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats() == {"hits": 1, "misses": 1, "size": 1}

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now the LRU entry
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_len_and_clear(self):
        cache = LRUCache(8)
        for i in range(5):
            cache.put(i, i)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"hits": 0, "misses": 0, "size": 0}

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_mask_budget_scales_with_rows(self):
        from repro.data.table import (
            MASK_CACHE_BYTE_BUDGET,
            MASK_CACHE_MAX_ENTRIES,
        )
        from repro.queries.predicates import Comparison

        from tests.queries.test_vectorized_parity import random_table
        import numpy as np

        table = random_table(np.random.default_rng(0), n_rows=500)
        Comparison("kind", "==", "gold").evaluate(table)
        assert table.mask_cache.max_entries == min(
            MASK_CACHE_MAX_ENTRIES, max(16, MASK_CACHE_BYTE_BUDGET // 500)
        )
        assert len(table.mask_cache) == 1
