"""Tests for the shared bounded LRU used by the engine's cache layers."""

import pytest

from repro.core.lru import LRUCache


def counters(cache, *fields):
    stats = cache.stats()
    return {field: stats[field] for field in fields}


class TestLRUCache:
    def test_get_put_and_counters(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert counters(cache, "hits", "misses", "size") == {
            "hits": 1,
            "misses": 1,
            "size": 1,
        }

    def test_stats_exposes_seqlock_counters(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("a")
        stats = cache.stats()
        assert stats["hits"] == stats["optimistic_hits"] + stats["lock_hits"]
        assert stats["hits"] == 2
        assert stats["seqlock_retries"] == 0
        assert stats["puts"] == 1
        assert stats["evictions"] == 0
        assert stats["stripes"] == 1
        assert stats["stripe_migrations"] == 0
        # Conservation: every snapshot balances inserts against removals.
        assert stats["inserts"] - stats["evictions"] == stats["size"]

    def test_non_optimistic_mode_counts_hits_as_locked(self):
        cache = LRUCache(4, optimistic=False)
        cache.put("a", 1)
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats["optimistic_hits"] == 0
        assert stats["lock_hits"] == 1
        assert stats["hits"] == 1

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now the LRU entry
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_len_and_clear(self):
        cache = LRUCache(8)
        for i in range(5):
            cache.put(i, i)
        assert len(cache) == 5
        cache.clear()
        assert len(cache) == 0
        assert counters(cache, "hits", "misses", "size") == {
            "hits": 0,
            "misses": 0,
            "size": 0,
        }

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_striped_cache_spreads_entries_and_aggregates_stats(self):
        cache = LRUCache(64, stripes=4)
        assert cache.stripes == 4
        for i in range(32):
            cache.put(i, i * 10)
        for i in range(32):
            assert cache.get(i) == i * 10
        stats = cache.stats()
        assert stats["hits"] == 32
        assert stats["size"] == 32
        assert len(cache) == 32
        assert stats["inserts"] - stats["evictions"] == stats["size"]

    def test_stripe_count_rounds_up_to_power_of_two(self):
        cache = LRUCache(64, stripes=3)
        assert cache.stripes == 4

    def test_resize_stripes_migrates_entries(self):
        cache = LRUCache(64, stripes=1, max_stripes=8)
        for i in range(16):
            cache.put(i, i)
        moved = cache.resize_stripes(4)
        assert moved == 16
        assert cache.stripes == 4
        assert cache.stripe_migrations == 16
        for i in range(16):
            assert cache.get(i) == i
        stats = cache.stats()
        assert stats["size"] == 16
        # Migration books drained entries as evictions and re-homes as
        # puts, so conservation survives the resize.
        assert stats["inserts"] - stats["evictions"] == stats["size"]

    def test_mask_budget_scales_with_rows(self):
        from repro.data.table import (
            MASK_CACHE_BYTE_BUDGET,
            MASK_CACHE_MAX_ENTRIES,
        )
        from repro.queries.predicates import Comparison

        from tests.queries.test_vectorized_parity import random_table
        import numpy as np

        table = random_table(np.random.default_rng(0), n_rows=500)
        Comparison("kind", "==", "gold").evaluate(table)
        assert table.mask_cache.max_entries == min(
            MASK_CACHE_MAX_ENTRIES, max(16, MASK_CACHE_BYTE_BUDGET // 500)
        )
        assert len(table.mask_cache) == 1
