"""Tests for the APEx engine (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.engine import APExEngine
from repro.core.exceptions import ApexError, BudgetExceededError
from repro.core.translator import SelectionMode
from repro.mechanisms.registry import default_registry
from repro.queries.builders import histogram_workload, point_workload
from repro.queries.query import (
    IcebergCountingQuery,
    TopKCountingQuery,
    WorkloadCountingQuery,
)


@pytest.fixture()
def engine(adult_small) -> APExEngine:
    return APExEngine(
        adult_small, budget=2.0, seed=0, registry=default_registry(mc_samples=500)
    )


@pytest.fixture()
def wcq() -> WorkloadCountingQuery:
    return WorkloadCountingQuery(
        histogram_workload("capital_gain", start=0, stop=5000, bins=10), name="wcq"
    )


class TestConstruction:
    def test_requires_table(self):
        with pytest.raises(ApexError):
            APExEngine("not a table", budget=1.0)  # type: ignore[arg-type]

    def test_mode_from_string(self, adult_small):
        engine = APExEngine(adult_small, budget=1.0, mode="pessimistic")
        assert engine.mode is SelectionMode.PESSIMISTIC

    def test_invalid_deny_mode(self, adult_small):
        with pytest.raises(ApexError):
            APExEngine(adult_small, budget=1.0, deny_mode="bogus")

    def test_budget_accessors(self, engine):
        assert engine.budget == 2.0
        assert engine.budget_spent == 0.0
        assert engine.budget_remaining == 2.0
        assert not engine.exhausted


class TestExplore:
    def test_wcq_answer_shape_and_accounting(self, engine, adult_small, wcq):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = engine.explore(wcq, accuracy)
        assert not result.denied
        assert isinstance(result.answer, np.ndarray)
        assert result.epsilon_spent > 0
        assert engine.budget_spent == pytest.approx(result.epsilon_spent)
        assert result.budget_remaining == pytest.approx(2.0 - result.epsilon_spent)

    def test_icq_and_tcq_answers_are_bin_lists(self, engine, adult_small):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        icq = IcebergCountingQuery(
            histogram_workload("capital_gain", start=0, stop=5000, bins=10),
            threshold=0.1 * len(adult_small),
        )
        tcq = TopKCountingQuery(point_workload("sex", ["M", "F"]), k=1)
        assert isinstance(engine.explore(icq, accuracy).answer, list)
        assert isinstance(engine.explore(tcq, accuracy).answer, list)

    def test_denial_when_budget_too_small(self, adult_small, wcq):
        engine = APExEngine(adult_small, budget=1e-6, seed=0)
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = engine.explore(wcq, accuracy)
        assert result.denied
        assert result.answer is None
        assert engine.budget_spent == 0.0
        assert not result  # falsy when denied

    def test_denial_raises_when_requested(self, adult_small, wcq):
        engine = APExEngine(adult_small, budget=1e-6, seed=0, deny_mode="raise")
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        with pytest.raises(BudgetExceededError):
            engine.explore(wcq, accuracy)
        assert len(engine.transcript().denied()) == 1

    def test_sequence_respects_budget(self, adult_small, wcq):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        engine = APExEngine(adult_small, budget=0.1, seed=0)
        answered, denied = 0, 0
        for _ in range(50):
            result = engine.explore(wcq, accuracy)
            if result.denied:
                denied += 1
            else:
                answered += 1
        assert answered >= 1 and denied >= 1
        assert engine.budget_spent <= engine.budget + 1e-9
        assert engine.transcript().is_valid(engine.budget)

    def test_metadata_contains_candidates(self, engine, adult_small, wcq):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = engine.explore(wcq, accuracy)
        assert "WCQ-LM" in result.metadata["candidates"]
        assert "WCQ-SM" in result.metadata["candidates"]

    def test_reproducible_with_seed(self, adult_small, wcq):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        a = APExEngine(adult_small, budget=1.0, seed=7).explore(wcq, accuracy)
        b = APExEngine(adult_small, budget=1.0, seed=7).explore(wcq, accuracy)
        assert np.allclose(a.answer, b.answer)

    def test_charges_actual_loss_for_data_dependent_mechanism(self, adult_small):
        engine = APExEngine(adult_small, budget=2.0, seed=0)
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        icq = IcebergCountingQuery(
            histogram_workload("capital_gain", start=0, stop=5000, bins=10),
            threshold=2.0 * len(adult_small),  # far from all counts: MPM stops early
        )
        result = engine.explore(icq, accuracy)
        assert result.mechanism == "ICQ-MPM"
        assert result.epsilon_spent < result.epsilon_upper
        assert engine.budget_spent == pytest.approx(result.epsilon_spent)


class TestExploreText:
    def test_text_query_with_inline_accuracy(self, engine, adult_small):
        result = engine.explore_text(
            "BIN D ON COUNT(*) WHERE W = {capital_gain BETWEEN 0 AND 1000} "
            f"ERROR {0.05 * len(adult_small)} CONFIDENCE 0.9995;"
        )
        assert not result.denied
        assert len(result.answer) == 1

    def test_text_query_with_explicit_accuracy(self, engine, adult_small):
        result = engine.explore_text(
            "BIN D ON COUNT(*) WHERE W = {sex = 'M', sex = 'F'};",
            AccuracySpec(alpha=0.05 * len(adult_small)),
        )
        assert not result.denied

    def test_text_query_without_accuracy_rejected(self, engine):
        with pytest.raises(ApexError):
            engine.explore_text("BIN D ON COUNT(*) WHERE W = {sex = 'M'};")


class TestPreviewCost:
    def test_preview_costs_nothing(self, engine, adult_small, wcq):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        costs = engine.preview_cost(wcq, accuracy)
        assert set(costs) == {"WCQ-LM", "WCQ-SM"}
        assert engine.budget_spent == 0.0

    def test_preview_bounds_ordered(self, engine, adult_small, wcq):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        for lower, upper in engine.preview_cost(wcq, accuracy).values():
            assert lower <= upper


class TestTranscript:
    def test_transcript_records_everything(self, adult_small, wcq):
        engine = APExEngine(adult_small, budget=0.05, seed=0)
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        for _ in range(5):
            engine.explore(wcq, accuracy)
        transcript = engine.transcript()
        assert len(transcript) == 5
        assert transcript.is_valid(engine.budget)
        assert transcript.total_epsilon() == pytest.approx(engine.budget_spent)
