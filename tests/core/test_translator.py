"""Tests for the accuracy translator (mechanism selection)."""

import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import TranslationError
from repro.core.translator import AccuracyTranslator, SelectionMode
from repro.mechanisms.registry import MechanismRegistry, default_registry
from repro.queries.builders import (
    histogram_workload,
    point_workload,
    prefix_workload,
)
from repro.queries.query import (
    IcebergCountingQuery,
    TopKCountingQuery,
    WorkloadCountingQuery,
)


@pytest.fixture()
def translator() -> AccuracyTranslator:
    return AccuracyTranslator(default_registry(mc_samples=500))


class TestTranslations:
    def test_all_applicable_mechanisms_translated(self, translator, adult_small):
        query = IcebergCountingQuery(
            histogram_workload("capital_gain", start=0, stop=5000, bins=10),
            threshold=100,
        )
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        translations = translator.translations(query, accuracy, adult_small.schema)
        assert {m.name for m, _ in translations} == {"ICQ-LM", "ICQ-SM", "ICQ-MPM"}

    def test_empty_registry_raises(self, adult_small):
        translator = AccuracyTranslator(MechanismRegistry())
        query = WorkloadCountingQuery(point_workload("age", [1.0]))
        with pytest.raises(TranslationError):
            translator.translations(query, AccuracySpec(alpha=10), adult_small.schema)


class TestChoice:
    def test_picks_laplace_for_disjoint_histogram(self, translator, adult_small,
                                                  capital_gain_histogram_query):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        choice = translator.choose(
            capital_gain_histogram_query, accuracy, adult_small.schema
        )
        assert choice.mechanism.name == "WCQ-LM"

    def test_picks_strategy_for_prefix_workload(self, translator, adult_small,
                                                capital_gain_prefix_query):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        choice = translator.choose(
            capital_gain_prefix_query, accuracy, adult_small.schema
        )
        assert choice.mechanism.name == "WCQ-SM"

    def test_optimistic_prefers_multi_poking(self, adult_small, capital_gain_iceberg_query):
        translator = AccuracyTranslator(
            default_registry(mc_samples=500), SelectionMode.OPTIMISTIC
        )
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        choice = translator.choose(
            capital_gain_iceberg_query, accuracy, adult_small.schema
        )
        assert choice.mechanism.name == "ICQ-MPM"

    def test_pessimistic_avoids_multi_poking(self, adult_small, capital_gain_iceberg_query):
        translator = AccuracyTranslator(
            default_registry(mc_samples=500), SelectionMode.PESSIMISTIC
        )
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        choice = translator.choose(
            capital_gain_iceberg_query, accuracy, adult_small.schema
        )
        assert choice.mechanism.name != "ICQ-MPM"

    def test_tcq_choice_depends_on_sensitivity(self, translator, adult_small):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        disjoint = TopKCountingQuery(
            point_workload("age", [float(a) for a in range(17, 91)]), k=10
        )
        overlapping = TopKCountingQuery(
            prefix_workload("capital_gain", [100.0 * i for i in range(1, 51)]), k=10
        )
        assert translator.choose(disjoint, accuracy, adult_small.schema).mechanism.name == "TCQ-LM"
        assert (
            translator.choose(overlapping, accuracy, adult_small.schema).mechanism.name
            == "TCQ-LTM"
        )

    def test_budget_filter(self, translator, adult_small, capital_gain_histogram_query):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        unconstrained = translator.choose(
            capital_gain_histogram_query, accuracy, adult_small.schema
        )
        assert (
            translator.choose(
                capital_gain_histogram_query,
                accuracy,
                adult_small.schema,
                budget_remaining=unconstrained.epsilon_upper / 2,
            )
            is None
        )

    def test_budget_filter_admits_cheaper_mechanism(self, translator, adult_small,
                                                    capital_gain_prefix_query):
        """When the cheapest-by-lower-bound option does not fit, a cheaper one is used."""
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        translations = dict(
            (m.name, t)
            for m, t in translator.translations(
                capital_gain_prefix_query, accuracy, adult_small.schema
            )
        )
        lm_eps = translations["WCQ-LM"].epsilon_upper
        sm_eps = translations["WCQ-SM"].epsilon_upper
        # allow only the strategy mechanism
        budget = (lm_eps + sm_eps) / 2 if sm_eps < lm_eps else sm_eps * 1.01
        choice = translator.choose(
            capital_gain_prefix_query,
            accuracy,
            adult_small.schema,
            budget_remaining=budget,
        )
        assert choice is not None
        assert choice.mechanism.name == "WCQ-SM"

    def test_candidates_reported(self, translator, adult_small, capital_gain_iceberg_query):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        choice = translator.choose(
            capital_gain_iceberg_query, accuracy, adult_small.schema
        )
        assert len(choice.candidates) == 3
        assert choice.epsilon_lower <= choice.epsilon_upper

    def test_mode_exposed(self):
        translator = AccuracyTranslator(mode=SelectionMode.PESSIMISTIC)
        assert translator.mode is SelectionMode.PESSIMISTIC
