"""Tests for the AccuracySpec value object."""

import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import AccuracyError


class TestValidation:
    def test_valid(self):
        spec = AccuracySpec(alpha=10, beta=0.01)
        assert spec.alpha == 10
        assert spec.confidence == pytest.approx(0.99)

    def test_default_beta_matches_paper(self):
        assert AccuracySpec(alpha=1).beta == pytest.approx(5e-4)

    @pytest.mark.parametrize("alpha", [0, -1, -0.5])
    def test_non_positive_alpha_rejected(self, alpha):
        with pytest.raises(AccuracyError):
            AccuracySpec(alpha=alpha)

    @pytest.mark.parametrize("beta", [0, 1, -0.1, 1.5])
    def test_beta_out_of_range_rejected(self, beta):
        with pytest.raises(AccuracyError):
            AccuracySpec(alpha=1, beta=beta)


class TestDerived:
    def test_relative(self):
        spec = AccuracySpec.relative(0.08, 4_000)
        assert spec.alpha == pytest.approx(320)

    def test_relative_validation(self):
        with pytest.raises(AccuracyError):
            AccuracySpec.relative(0.08, 0)
        with pytest.raises(AccuracyError):
            AccuracySpec.relative(0, 100)

    def test_scaled(self):
        spec = AccuracySpec(alpha=10, beta=0.01).scaled(2)
        assert spec.alpha == 20 and spec.beta == 0.01

    def test_scaled_invalid(self):
        with pytest.raises(AccuracyError):
            AccuracySpec(alpha=10).scaled(0)

    def test_with_beta(self):
        spec = AccuracySpec(alpha=10, beta=0.01).with_beta(0.05)
        assert spec.beta == 0.05 and spec.alpha == 10

    def test_str(self):
        assert "ERROR 10" in str(AccuracySpec(alpha=10, beta=0.05))

    def test_immutable_and_hashable(self):
        spec = AccuracySpec(alpha=10)
        assert hash(spec) == hash(AccuracySpec(alpha=10))
        with pytest.raises(AttributeError):
            spec.alpha = 5  # type: ignore[misc]
