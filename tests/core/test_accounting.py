"""Tests for the privacy ledger and transcript."""

import pytest

from repro.core.accounting import PrivacyLedger, Transcript, TranscriptEntry
from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import ApexError, BudgetExceededError


ACC = AccuracySpec(alpha=10)


def _charge(ledger, upper, spent, name="q"):
    return ledger.charge(
        query_name=name,
        query_kind="WCQ",
        accuracy=ACC,
        mechanism="LM",
        epsilon_upper=upper,
        epsilon_spent=spent,
        answer=[1, 2, 3],
    )


class TestLedger:
    def test_initial_state(self):
        ledger = PrivacyLedger(1.0)
        assert ledger.budget == 1.0
        assert ledger.spent == 0.0
        assert ledger.remaining == 1.0
        assert not ledger.exhausted

    def test_invalid_budget(self):
        with pytest.raises(ApexError):
            PrivacyLedger(0)

    def test_charge_updates_spent(self):
        ledger = PrivacyLedger(1.0)
        _charge(ledger, 0.3, 0.3)
        assert ledger.spent == pytest.approx(0.3)
        assert ledger.remaining == pytest.approx(0.7)

    def test_charge_actual_less_than_upper(self):
        """Data-dependent mechanisms charge the actual loss, not the bound."""
        ledger = PrivacyLedger(1.0)
        _charge(ledger, 0.5, 0.1)
        assert ledger.spent == pytest.approx(0.1)

    def test_admission_uses_worst_case(self):
        ledger = PrivacyLedger(1.0)
        _charge(ledger, 0.5, 0.1)
        assert ledger.can_afford(0.9)
        assert not ledger.can_afford(0.95)

    def test_charge_beyond_budget_raises(self):
        ledger = PrivacyLedger(1.0)
        _charge(ledger, 0.8, 0.8)
        with pytest.raises(BudgetExceededError):
            _charge(ledger, 0.5, 0.5)

    def test_spent_above_upper_rejected(self):
        ledger = PrivacyLedger(1.0)
        with pytest.raises(ApexError):
            _charge(ledger, 0.1, 0.2)

    def test_can_afford_validates(self):
        ledger = PrivacyLedger(1.0)
        with pytest.raises(ApexError):
            ledger.can_afford(0)

    def test_exhausted(self):
        ledger = PrivacyLedger(0.5)
        _charge(ledger, 0.5, 0.5)
        assert ledger.exhausted

    def test_deny_costs_nothing(self):
        ledger = PrivacyLedger(1.0)
        entry = ledger.deny(query_name="q", query_kind="WCQ", accuracy=ACC)
        assert entry.denied
        assert ledger.spent == 0.0

    def test_exact_budget_fit(self):
        ledger = PrivacyLedger(1.0)
        _charge(ledger, 1.0, 1.0)
        assert ledger.remaining == pytest.approx(0.0)


class TestTranscript:
    def test_entries_recorded_in_order(self):
        ledger = PrivacyLedger(2.0)
        _charge(ledger, 0.2, 0.2, name="first")
        ledger.deny(query_name="second", query_kind="ICQ", accuracy=ACC)
        _charge(ledger, 0.3, 0.1, name="third")
        transcript = ledger.transcript
        assert len(transcript) == 3
        assert [entry.query_name for entry in transcript] == ["first", "second", "third"]
        assert transcript[1].denied

    def test_answered_and_denied_views(self):
        ledger = PrivacyLedger(2.0)
        _charge(ledger, 0.2, 0.2)
        ledger.deny(query_name="denied", query_kind="ICQ", accuracy=ACC)
        assert len(ledger.transcript.answered()) == 1
        assert len(ledger.transcript.denied()) == 1

    def test_total_epsilon(self):
        ledger = PrivacyLedger(2.0)
        _charge(ledger, 0.2, 0.2)
        _charge(ledger, 0.5, 0.3)
        assert ledger.transcript.total_epsilon() == pytest.approx(0.5)

    def test_budget_running_totals(self):
        ledger = PrivacyLedger(2.0)
        entry1 = _charge(ledger, 0.2, 0.2)
        entry2 = _charge(ledger, 0.4, 0.4)
        assert entry1.budget_before == 0.0
        assert entry1.budget_after == pytest.approx(0.2)
        assert entry2.budget_before == pytest.approx(0.2)
        assert entry2.budget_after == pytest.approx(0.6)

    def test_validity_check(self):
        ledger = PrivacyLedger(1.0)
        _charge(ledger, 0.4, 0.4)
        _charge(ledger, 0.4, 0.2)
        ledger.deny(query_name="q", query_kind="WCQ", accuracy=ACC)
        assert ledger.transcript.is_valid(1.0)
        assert not ledger.transcript.is_valid(0.5)

    def test_invalid_handcrafted_transcript(self):
        transcript = Transcript()
        transcript.append(
            TranscriptEntry(
                index=0, query_name="q", query_kind="WCQ", accuracy=ACC,
                mechanism="LM", epsilon_upper=0.5, epsilon_spent=0.9, denied=False,
            )
        )
        assert not transcript.is_valid(1.0)

    def test_summary(self):
        ledger = PrivacyLedger(2.0)
        _charge(ledger, 0.2, 0.2)
        ledger.deny(query_name="q", query_kind="WCQ", accuracy=ACC)
        summary = ledger.transcript.summary()
        assert summary["interactions"] == 2
        assert summary["answered"] == 1
        assert summary["denied"] == 1
        assert summary["mechanisms"] == ["LM"]


class TestReserveJournalFailure:
    """A journal failure during reserve() must roll the admission back.

    Regression: the journal append used to happen after the lock was
    dropped with no rollback, so a crash-injected append leaked the
    reservation and permanently shrank ``remaining`` (APX001 finding).
    """

    def test_journal_failure_releases_the_reservation(self, tmp_path):
        from repro.core.exceptions import FaultInjected
        from repro.reliability import faults
        from repro.reliability.journal import LedgerJournal

        journal = LedgerJournal(tmp_path / "wal.jsonl")
        ledger = PrivacyLedger(1.0, journal=journal)
        with faults.armed("ledger.reserve.after_journal", "error"):
            with pytest.raises(FaultInjected):
                ledger.reserve(0.4)
        assert ledger.reserved == 0.0
        assert ledger.remaining == 1.0
        ledger.assert_invariants()
        # The full budget is still admissible afterwards.
        reservation = ledger.reserve(1.0)
        assert reservation is not None
        ledger.release(reservation)
        journal.close()

    def test_recovery_after_failed_reserve_charges_nothing(self, tmp_path):
        from repro.core.exceptions import FaultInjected
        from repro.reliability import faults
        from repro.reliability.journal import LedgerJournal

        path = tmp_path / "wal.jsonl"
        journal = LedgerJournal(path)
        ledger = PrivacyLedger(1.0, journal=journal)
        with faults.armed("ledger.reserve.after_journal", "error"):
            with pytest.raises(FaultInjected):
                ledger.reserve(0.4)
        journal.close()
        # The rollback journaled the release, so replay charges nothing.
        reopened = LedgerJournal(path)
        recovered = PrivacyLedger(1.0, journal=reopened)
        recovered.adopt_recovery(reopened.recovery)
        assert recovered.spent == 0.0
        assert recovered.reserved == 0.0
        reopened.close()
