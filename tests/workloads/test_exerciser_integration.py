"""Generated microsimulation streams driving the reliability exerciser."""

import random

from repro.reliability.exerciser import (
    generate_workload_script,
    run_history,
    run_worker,
)
from repro.workloads import GeneratorConfig


def workloads_config() -> dict:
    return GeneratorConfig(
        seed=31,
        initial_rows=250,
        periods=3,
        rows_per_period=60,
        drift="mixed",
        drift_every=2,
        budget=4.0,
    ).to_json()


class TestScriptGeneration:
    def test_appends_consume_periods_in_order(self):
        config = workloads_config()
        rng = random.Random(4)
        script = generate_workload_script(rng, 30, config)
        appends = [op for op in script if op["op"] == "append_rows"]
        assert appends, "30 ops should roll at least one append"
        assert [op["period"] for op in appends] == sorted(
            op["period"] for op in appends
        )
        schedule = GeneratorConfig.from_json(config).drift_schedule()
        for op in appends:
            assert op["changes_fingerprint"] == schedule[op["period"] - 1]
            assert op["rows"], "append batches are never empty"

    def test_queries_target_the_generated_schema(self):
        script = generate_workload_script(random.Random(7), 25, workloads_config())
        queries = [op for op in script if op["op"] in ("explore", "preview")]
        assert queries
        assert all(op["attribute"] == "income" for op in queries)

    def test_same_seed_generates_the_same_script(self):
        config = workloads_config()
        assert generate_workload_script(
            random.Random(11), 20, config
        ) == generate_workload_script(random.Random(11), 20, config)


class TestWorkerRuns:
    def test_worker_hosts_the_generated_population(self, tmp_path):
        config = workloads_config()
        script = generate_workload_script(random.Random(2), 8, config)
        returncode, events, stderr = run_worker(
            str(tmp_path / "ledger.wal"),
            script,
            budget=4.0,
            n_rows=0,
            seed=31,
            mc_samples=100,
            workloads_config=config,
        )
        assert returncode == 0, stderr
        done = [e for e in events if e.get("event") == "done"]
        assert len(done) == 1 and done[0]["valid"]
        acks = [e for e in events if e.get("event") == "ack"]
        assert len(acks) == len(script)

    def test_run_history_smoke(self, tmp_path):
        report = run_history(
            5,
            work_dir=str(tmp_path),
            n_ops=8,
            budget=4.0,
            n_rows=0,
            mc_samples=100,
            workloads_config=workloads_config(),
        )
        assert report["workloads"] is True
        assert report["violations"] == []
