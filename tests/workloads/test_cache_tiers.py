"""Predicted cache-tier outcomes over generated streams.

The generator's contract is that its drift knob *predicts* the engine's
memo-hierarchy behaviour: a preserve-mode stream never changes a domain
fingerprint, so after warmup every structurally repeated preview is
answered by the revalidation tier (re-tag, zero rebuilds); a drift-mode
stream changes exactly the scheduled attribute's fingerprint, so queries
referencing that attribute rebuild on exactly the scheduled periods while
everything else keeps revalidating.  These tests assert the engine's
counters against the schedule, not against observed behaviour.
"""

from repro.core.accuracy import AccuracySpec
from repro.core.engine import APExEngine
from repro.mechanisms.registry import default_registry
from repro.mechanisms.strategy_mechanism import reset_search_stats, search_stats
from repro.queries.predicates import Between, Comparison
from repro.queries.query import WorkloadCountingQuery
from repro.queries.workload import Workload, clear_matrix_cache
from repro.workloads import GeneratorConfig, MicrosimulationGenerator
from repro.workloads.population import (
    INCOME_CAP,
    OCCUPATION_CODES,
    REGION_CODES,
)

MC_SAMPLES = 100


def make_query(kind: str) -> WorkloadCountingQuery:
    if kind == "region":
        predicates = [Comparison("region", "==", code) for code in REGION_CODES]
    elif kind == "occupation":
        predicates = [
            Comparison("occupation", "==", code) for code in OCCUPATION_CODES[:12]
        ]
    else:
        step = INCOME_CAP / 5
        predicates = [
            Between("income", i * step, (i + 1) * step) for i in range(5)
        ]
    return WorkloadCountingQuery(Workload(predicates), name=f"{kind}-wcq")


KINDS = ("region", "occupation", "income")


def stream_engine(config: GeneratorConfig):
    clear_matrix_cache()
    reset_search_stats()
    generator = MicrosimulationGenerator(config)
    table = generator.build_table()
    engine = APExEngine(
        table,
        budget=config.budget,
        registry=default_registry(mc_samples=MC_SAMPLES),
        seed=3,
    )
    accuracy = AccuracySpec(alpha=0.2 * config.total_rows(), beta=1e-3)
    return generator, table, engine, accuracy


class TestPreserveStream:
    def test_zero_rebuilds_after_warmup(self):
        config = GeneratorConfig(
            seed=5, initial_rows=600, periods=5, rows_per_period=150
        )
        generator, table, engine, accuracy = stream_engine(config)
        for kind in KINDS:
            engine.preview_cost(make_query(kind), accuracy)
        warm = engine.cache_stats()["translations"]
        assert warm["built"] == len(KINDS)
        searches_after_warmup = search_stats()["searches"]

        periods = 0
        for batch in generator.batches():
            table.append_rows(list(batch.rows))
            for kind in KINDS:
                engine.preview_cost(make_query(kind), accuracy)
            periods += 1
            stats = engine.cache_stats()["translations"]
            # Zero rebuilds after warmup: every post-append preview was
            # re-tagged by the fingerprint tier, never recomputed.
            assert stats["built"] == len(KINDS)
            assert stats["revalidated"] == periods * len(KINDS)
        assert search_stats()["searches"] == searches_after_warmup


class TestDriftStream:
    def test_rebuilds_exactly_on_the_scheduled_periods(self):
        config = GeneratorConfig(
            seed=5,
            initial_rows=600,
            periods=6,
            rows_per_period=150,
            drift="drift",
            drift_every=2,
        )
        plan = {event.period: event for event in config.drift_plan()}
        assert plan, "the scenario needs at least one drift period"
        generator, table, engine, accuracy = stream_engine(config)
        for kind in KINDS:
            engine.preview_cost(make_query(kind), accuracy)

        expected_built = len(KINDS)
        expected_revalidated = 0
        for batch in generator.batches():
            table.append_rows(list(batch.rows))
            event = plan.get(batch.period)
            for kind in KINDS:
                engine.preview_cost(make_query(kind), accuracy)
            # Only the query over the drifted attribute rebuilds; the other
            # two attributes' fingerprints are untouched and revalidate.
            if event is not None:
                assert batch.changes_fingerprint
                expected_built += 1
                expected_revalidated += len(KINDS) - 1
            else:
                expected_revalidated += len(KINDS)
            stats = engine.cache_stats()["translations"]
            assert stats["built"] == expected_built, f"period {batch.period}"
            assert stats["revalidated"] == expected_revalidated

    def test_income_queries_never_rebuild_under_categorical_drift(self):
        # Numeric fingerprints are declared-shape only, so a stream that
        # drifts categorical codes leaves income queries on the
        # revalidation path for the whole run.
        config = GeneratorConfig(
            seed=9,
            initial_rows=500,
            periods=4,
            rows_per_period=120,
            drift="drift",
            drift_every=1,
        )
        generator, table, engine, accuracy = stream_engine(config)
        engine.preview_cost(make_query("income"), accuracy)
        for batch in generator.batches():
            table.append_rows(list(batch.rows))
            engine.preview_cost(make_query("income"), accuracy)
        stats = engine.cache_stats()["translations"]
        assert stats["built"] == 1
        assert stats["revalidated"] == config.periods
