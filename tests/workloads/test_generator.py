"""The microsimulation generator: schedules, validity, determinism."""

import pytest

from repro.core.exceptions import ApexError
from repro.workloads import GeneratorConfig, MicrosimulationGenerator
from repro.workloads.population import (
    OCCUPATION_CODES,
    REGION_CODES,
    SEEDED_OCCUPATIONS,
    SEEDED_REGIONS,
    generate_stream,
    population_schema,
    unobserved_code_pool,
)


def small_config(**overrides) -> GeneratorConfig:
    base = dict(
        seed=13, initial_rows=400, periods=6, rows_per_period=120, drift_every=2
    )
    base.update(overrides)
    return GeneratorConfig(**base)


class TestConfig:
    def test_rejects_unknown_drift_mode(self):
        with pytest.raises(ApexError):
            GeneratorConfig(drift="chaos")

    def test_rejects_nonpositive_dimensions(self):
        with pytest.raises(ApexError):
            GeneratorConfig(periods=0)
        with pytest.raises(ApexError):
            GeneratorConfig(rows_per_period=-1)

    def test_json_round_trip(self):
        config = small_config(drift="mixed")
        assert GeneratorConfig.from_json(config.to_json()) == config

    def test_from_json_rejects_unknown_fields(self):
        with pytest.raises(ApexError):
            GeneratorConfig.from_json({"seed": 1, "mystery": True})

    def test_preserve_schedule_is_all_false(self):
        config = small_config(drift="preserve")
        assert config.drift_schedule() == (False,) * 6
        assert config.drift_plan() == ()

    def test_drift_schedule_follows_drift_every(self):
        config = small_config(drift="drift", drift_every=2)
        assert config.drift_schedule() == (False, True, False, True, False, True)
        plan = config.drift_plan()
        assert [event.period for event in plan] == [2, 4, 6]
        # The pool alternates attributes, region first.
        assert [event.attribute for event in plan] == [
            "region",
            "occupation",
            "region",
        ]

    def test_schedule_exhausts_with_the_code_pool(self):
        pool_size = len(unobserved_code_pool())
        config = GeneratorConfig(
            initial_rows=50,
            rows_per_period=30,
            periods=2 * (pool_size + 5),
            drift="drift",
            drift_every=1,
        )
        schedule = config.drift_schedule()
        assert sum(schedule) == pool_size
        assert not any(schedule[pool_size:])

    def test_widening_only_in_mixed_mode(self):
        assert not any(small_config(drift="drift").widening_schedule())
        mixed = small_config(drift="mixed")
        widening = mixed.widening_schedule()
        drifting = mixed.drift_schedule()
        assert all(w != d for w, d in zip(widening, drifting))

    def test_scaled_shrinks_row_counts_only(self):
        config = small_config(drift="mixed")
        quick = config.scaled(0.1)
        assert quick.initial_rows == 40 and quick.rows_per_period == 12
        assert quick.periods == config.periods
        assert quick.drift_schedule() == config.drift_schedule()


class TestGenerator:
    def test_batches_match_the_declared_schedule(self):
        for mode in ("preserve", "drift", "mixed"):
            config = small_config(drift=mode)
            _, batches = generate_stream(config)
            assert tuple(b.changes_fingerprint for b in batches) == (
                config.drift_schedule()
            )
            assert tuple(b.widened for b in batches) == config.widening_schedule()

    def test_every_row_is_schema_valid(self):
        schema = population_schema()
        initial, batches = generate_stream(small_config(drift="mixed"))
        for row in initial[:50]:
            assert schema.validate_row(row) == []
        for batch in batches:
            for row in batch.rows[:25]:
                assert schema.validate_row(row) == []

    def test_batch_sizes_hit_the_target(self):
        config = small_config()
        _, batches = generate_stream(config)
        assert all(len(b.rows) == config.rows_per_period for b in batches)

    def test_preserve_mode_never_leaves_the_seeded_domains(self):
        initial, batches = generate_stream(small_config(drift="preserve"))
        seeded_regions = set(REGION_CODES[:SEEDED_REGIONS])
        seeded_occupations = set(OCCUPATION_CODES[:SEEDED_OCCUPATIONS])
        for batch in batches:
            assert batch.introduces == {}
            assert {row["region"] for row in batch.rows} <= seeded_regions
            assert {row["occupation"] for row in batch.rows} <= seeded_occupations

    def test_drift_batches_introduce_exactly_the_planned_code(self):
        config = small_config(drift="drift")
        plan = {event.period: event for event in config.drift_plan()}
        _, batches = generate_stream(config)
        observed_regions = set(REGION_CODES[:SEEDED_REGIONS])
        for batch in batches:
            event = plan.get(batch.period)
            if event is None:
                assert batch.introduces == {}
                continue
            assert dict(batch.introduces) == {event.attribute: (event.value,)}
            # The new code really appears in the emitted rows of this batch.
            assert any(row[event.attribute] == event.value for row in batch.rows)
            if event.attribute == "region":
                observed_regions.add(event.value)
            # And nothing else drifted: regions stay within observed-so-far.
            assert {row["region"] for row in batch.rows} <= observed_regions

    def test_same_config_is_bit_identical_in_process(self):
        config = small_config(drift="mixed")
        first = generate_stream(config)
        second = generate_stream(config)
        assert first[0] == second[0]
        assert first[1] == second[1]

    def test_different_seeds_differ(self):
        a, _ = generate_stream(small_config(seed=1))
        b, _ = generate_stream(small_config(seed=2))
        assert a != b

    def test_build_table_matches_initial_rows(self):
        generator = MicrosimulationGenerator(small_config())
        table = generator.build_table()
        rows = generator.initial_rows()
        assert len(table) == len(rows)
        assert table.column("region")[0] == rows[0]["region"]
        assert float(table.column("income")[0]) == rows[0]["income"]
