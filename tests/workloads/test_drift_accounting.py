"""Revalidation-tier accounting under ``mixed`` drift (the satellite check).

One query referencing *both* categorical attributes streams through a
``mixed`` run with an artifact store attached.  The tier counters must match
the per-period drift schedule exactly:

* ``built`` = 1 (cold) + one per scheduled fingerprint change;
* ``revalidated`` = every other period -- including the numeric-widening
  periods, whose data-only drift must be invisible to the fingerprints;
* ``disk_hits`` = 0 in-process (fingerprints only ever grow, so no disk key
  recurs within one run) while ``disk_writes`` tracks ``built``.
"""

from repro.core.accuracy import AccuracySpec
from repro.core.engine import APExEngine
from repro.mechanisms.registry import default_registry
from repro.mechanisms.strategy_mechanism import reset_search_stats
from repro.queries.predicates import Comparison
from repro.queries.query import WorkloadCountingQuery
from repro.queries.workload import Workload, clear_matrix_cache
from repro.store import ArtifactStore
from repro.workloads import GeneratorConfig, MicrosimulationGenerator
from repro.workloads.population import OCCUPATION_CODES, REGION_CODES


def make_query() -> WorkloadCountingQuery:
    predicates = [Comparison("region", "==", code) for code in REGION_CODES[:8]]
    predicates += [
        Comparison("occupation", "==", code) for code in OCCUPATION_CODES[:8]
    ]
    return WorkloadCountingQuery(Workload(predicates), name="panel-mix")


def test_mixed_drift_counters_match_the_schedule(tmp_path):
    clear_matrix_cache()
    reset_search_stats()
    config = GeneratorConfig(
        seed=17,
        initial_rows=500,
        periods=6,
        rows_per_period=120,
        drift="mixed",
        drift_every=2,
    )
    schedule = config.drift_schedule()
    widening = config.widening_schedule()
    assert any(schedule) and any(widening)

    generator = MicrosimulationGenerator(config)
    table = generator.build_table()
    store = ArtifactStore(str(tmp_path))
    engine = APExEngine(
        table,
        budget=config.budget,
        registry=default_registry(mc_samples=100),
        seed=3,
        store=store,
    )
    accuracy = AccuracySpec(alpha=0.2 * config.total_rows(), beta=1e-3)
    engine.preview_cost(make_query(), accuracy)

    expected_built = 1
    expected_revalidated = 0
    for batch in generator.batches():
        table.append_rows(list(batch.rows))
        engine.preview_cost(make_query(), accuracy)
        if schedule[batch.period - 1]:
            expected_built += 1
        else:
            expected_revalidated += 1
        stats = engine.cache_stats()["translations"]
        assert stats["built"] == expected_built, f"period {batch.period}"
        assert stats["revalidated"] == expected_revalidated, f"period {batch.period}"
        assert stats["disk_hits"] == 0
        assert stats["disk_writes"] == expected_built

    # The whole-run totals, spelled out: every scheduled change rebuilt,
    # every preserve/widening period revalidated, nothing else.
    stats = engine.cache_stats()["translations"]
    assert stats["built"] == 1 + sum(schedule)
    assert stats["revalidated"] == config.periods - sum(schedule)


def test_widening_periods_revalidate_even_for_income_queries(tmp_path):
    # The widening drift touches the *income* data itself; an income query
    # must still revalidate because numeric fingerprints carry no observed
    # values.
    from repro.queries.predicates import Between
    from repro.workloads.population import INCOME_CAP

    clear_matrix_cache()
    reset_search_stats()
    config = GeneratorConfig(
        seed=17,
        initial_rows=400,
        periods=4,
        rows_per_period=100,
        drift="mixed",
        drift_every=2,
    )
    generator = MicrosimulationGenerator(config)
    table = generator.build_table()
    engine = APExEngine(
        table,
        budget=config.budget,
        registry=default_registry(mc_samples=100),
        seed=3,
        store=ArtifactStore(str(tmp_path)),
    )
    accuracy = AccuracySpec(alpha=0.2 * config.total_rows(), beta=1e-3)
    step = INCOME_CAP / 4
    query = lambda: WorkloadCountingQuery(  # noqa: E731
        Workload([Between("income", i * step, (i + 1) * step) for i in range(4)]),
        name="income-wcq",
    )
    engine.preview_cost(query(), accuracy)
    widened_periods = 0
    for batch in generator.batches():
        table.append_rows(list(batch.rows))
        engine.preview_cost(query(), accuracy)
        widened_periods += int(batch.widened)
    assert widened_periods > 0
    stats = engine.cache_stats()["translations"]
    assert stats["built"] == 1
    assert stats["revalidated"] == config.periods
