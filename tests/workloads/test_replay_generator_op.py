"""The replay ``generator`` op: script emission, loading, end-to-end replay."""

import json

import pytest

from repro.core.exceptions import ApexError
from repro.mechanisms.registry import default_registry
from repro.service import ExplorationService
from repro.service.replay import AnalystScript, ScriptRequest, load_script, replay
from repro.workloads import GeneratorConfig, MicrosimulationGenerator
from repro.workloads.scripts import (
    STREAM_OWNER,
    emit_script_payload,
    query_templates,
    write_script,
)


def tiny_config(**overrides) -> GeneratorConfig:
    base = dict(
        seed=21,
        initial_rows=300,
        periods=3,
        rows_per_period=80,
        analysts=2,
        queries_per_analyst=3,
        budget=30.0,
    )
    base.update(overrides)
    return GeneratorConfig(**base)


def make_service(config: GeneratorConfig) -> ExplorationService:
    table = MicrosimulationGenerator(config).build_table()
    return ExplorationService(
        {config.table: table},
        budget=config.budget,
        registry=default_registry(mc_samples=100),
        seed=config.seed,
        batch_window=0.0,
    )


class TestPayloadShape:
    def test_owner_carries_one_generator_op_per_period(self):
        config = tiny_config()
        payload = emit_script_payload(config)
        owner = payload["analysts"][0]
        assert owner["name"] == STREAM_OWNER
        assert [r["op"] for r in owner["requests"]] == ["generator"] * config.periods
        assert [r["generator"]["period"] for r in owner["requests"]] == [1, 2, 3]
        assert all(
            r["generator"]["config"] == config.to_json() for r in owner["requests"]
        )

    def test_analysts_rotate_templates_and_ops(self):
        config = tiny_config()
        payload = emit_script_payload(config)
        templates = query_templates(config)
        queriers = payload["analysts"][1:]
        assert len(queriers) == config.analysts
        for i, analyst in enumerate(queriers):
            assert analyst["table"] == config.table
            assert len(analyst["requests"]) == config.queries_per_analyst
            for j, request in enumerate(analyst["requests"]):
                assert request["text"] == templates[(i + j) % len(templates)]
                assert request["op"] == ("preview" if (i + j) % 2 == 0 else "explore")

    def test_emission_is_deterministic(self):
        config = tiny_config()
        assert emit_script_payload(config) == emit_script_payload(tiny_config())
        assert emit_script_payload(config) != emit_script_payload(
            tiny_config(seed=99)
        )


class TestScriptIO:
    def test_write_then_load_round_trips(self, tmp_path):
        config = tiny_config()
        path = str(tmp_path / "script.json")
        payload = write_script(config, path)
        with open(path, "r", encoding="utf-8") as fh:
            assert json.load(fh) == payload
        scripts = load_script(path)
        assert [s.analyst for s in scripts] == [
            a["name"] for a in payload["analysts"]
        ]
        owner = scripts[0]
        assert all(r.op == "generator" for r in owner.requests)
        assert all(
            r.generator["config"] == config.to_json() for r in owner.requests
        )

    def test_generator_request_requires_a_config(self):
        with pytest.raises(ApexError):
            ScriptRequest("generator")
        with pytest.raises(ApexError):
            ScriptRequest("generator", generator={"period": 1})
        # With a config it constructs fine.
        ScriptRequest("generator", generator={"config": tiny_config().to_json()})


class TestReplay:
    def test_end_to_end_replay_runs_every_period(self, tmp_path):
        config = tiny_config()
        path = str(tmp_path / "script.json")
        write_script(config, path)
        scripts = load_script(path)
        service = make_service(config)
        report = replay(service, scripts)

        errors = [o for o in report.outcomes if o.error]
        assert errors == []
        assert report.transcript_valid
        generated = [o for o in report.outcomes if o.op == "generator"]
        assert len(generated) == config.periods
        # Periods landed in order on the owner thread, each appending a batch.
        assert [o.query_name.split(":")[0] for o in generated] == [
            f"generator[p{p}" for p in range(1, config.periods + 1)
        ]
        assert len(service.tables[config.table]) == config.total_rows()

    def test_exhausted_stream_surfaces_as_a_request_error(self):
        config = tiny_config(analysts=1, queries_per_analyst=1)
        payload = emit_script_payload(config)
        owner = payload["analysts"][0]
        # One more generator op than the config has periods.
        owner["requests"].append(dict(owner["requests"][-1]))
        scripts = [
            AnalystScript(
                analyst=a["name"],
                table=a["table"],
                requests=tuple(
                    ScriptRequest(
                        op=r["op"],
                        text=r.get("text", ""),
                        generator=r.get("generator"),
                    )
                    for r in a["requests"]
                ),
            )
            for a in payload["analysts"]
        ]
        service = make_service(config)
        report = replay(service, scripts)
        errors = [o for o in report.outcomes if o.error]
        assert len(errors) == 1
        assert "exhausted" in errors[0].error
        # Everything before the overrun still ran.
        assert (
            len([o for o in report.outcomes if o.op == "generator" and not o.error])
            == config.periods
        )
