"""Property-based tests for noise primitives and accuracy translations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import TranslationError
from repro.mechanisms.laplace import laplace_epsilon_for_accuracy
from repro.mechanisms.noise import (
    laplace_max_error_bound,
    laplace_scale_for_tail,
    laplace_tail_bound,
    relax_laplace_noise,
)
from repro.queries.query import QueryKind


class TestTailBoundProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        scale=st.floats(0.01, 100, allow_nan=False),
        threshold=st.floats(0.01, 1000, allow_nan=False),
    )
    def test_tail_bound_in_unit_interval(self, scale, threshold):
        assert 0.0 <= laplace_tail_bound(scale, threshold) <= 1.0

    @settings(max_examples=60, deadline=None)
    @given(
        threshold=st.floats(0.1, 100, allow_nan=False),
        probability=st.floats(0.001, 0.5),
    )
    def test_scale_for_tail_round_trip(self, threshold, probability):
        scale = laplace_scale_for_tail(threshold, probability)
        assert laplace_tail_bound(scale, threshold) == pytest.approx(probability)

    @settings(max_examples=60, deadline=None)
    @given(
        scale=st.floats(0.1, 10),
        count=st.integers(1, 500),
        beta=st.floats(1e-5, 0.4),
    )
    def test_max_error_bound_monotone_in_beta(self, scale, count, beta):
        looser = laplace_max_error_bound(scale, count, min(beta * 2, 0.8))
        tighter = laplace_max_error_bound(scale, count, beta)
        assert tighter >= looser


class TestTranslationProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        kind=st.sampled_from([QueryKind.WCQ, QueryKind.ICQ, QueryKind.TCQ]),
        sensitivity=st.floats(0.5, 200),
        workload_size=st.integers(1, 500),
        alpha=st.floats(1.0, 10_000),
        beta=st.floats(1e-6, 1e-2),
    )
    def test_epsilon_positive_and_monotone_in_alpha(
        self, kind, sensitivity, workload_size, alpha, beta
    ):
        accuracy = AccuracySpec(alpha=alpha, beta=beta)
        try:
            epsilon = laplace_epsilon_for_accuracy(kind, sensitivity, workload_size, accuracy)
        except TranslationError:
            return
        assert epsilon > 0
        looser = laplace_epsilon_for_accuracy(
            kind, sensitivity, workload_size, AccuracySpec(alpha=alpha * 2, beta=beta)
        )
        assert looser == pytest.approx(epsilon / 2)

    @settings(max_examples=40, deadline=None)
    @given(
        sensitivity=st.floats(0.5, 50),
        workload_size=st.integers(2, 200),
        alpha=st.floats(1.0, 5_000),
        beta=st.floats(1e-6, 1e-2),
    )
    def test_icq_never_costs_more_than_wcq(self, sensitivity, workload_size, alpha, beta):
        accuracy = AccuracySpec(alpha=alpha, beta=beta)
        wcq = laplace_epsilon_for_accuracy(QueryKind.WCQ, sensitivity, workload_size, accuracy)
        icq = laplace_epsilon_for_accuracy(QueryKind.ICQ, sensitivity, workload_size, accuracy)
        assert icq <= wcq


class TestRelaxNoiseProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        value=st.floats(-50, 50, allow_nan=False),
        scale_old=st.floats(0.5, 20),
        ratio=st.floats(0.05, 1.0),
        seed=st.integers(0, 2**16),
    )
    def test_refinement_always_finite(self, value, scale_old, ratio, seed):
        rng = np.random.default_rng(seed)
        scale_new = scale_old * ratio
        refined = relax_laplace_noise(value, scale_old, scale_new, rng)
        assert np.isfinite(refined)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16), scale=st.floats(0.5, 5))
    def test_equal_scales_are_identity(self, seed, scale):
        rng = np.random.default_rng(seed)
        values = rng.laplace(0, scale, 20)
        assert np.allclose(relax_laplace_noise(values, scale, scale, rng), values)
