"""Property: generated streams are bit-identical across fresh interpreters.

Same seed + config must reproduce the initial population, every period
batch, and the emitted replay script byte-for-byte in a brand-new process
-- the property that makes a workload config a complete, shareable
description of a million-row run.  Each probe is a separate
``python -m repro.workloads.worker --probe stream`` subprocess, so no
interpreter state (hash randomisation, import order, rng pools) can leak
between the two realisations.
"""

import json
import os
import subprocess
import sys

import pytest

import repro
from repro.workloads import GeneratorConfig
from repro.workloads.worker import stream_digest


def _probe_stream(config: GeneratorConfig) -> dict:
    package_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.workloads.worker",
            "--probe",
            "stream",
            "--config-json",
            json.dumps(config.to_json()),
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


@pytest.mark.parametrize("drift", ["preserve", "drift", "mixed"])
def test_fresh_interpreters_agree_bit_exactly(drift):
    config = GeneratorConfig(
        seed=42,
        initial_rows=350,
        periods=4,
        rows_per_period=90,
        drift=drift,
        drift_every=2,
    )
    first = _probe_stream(config)
    second = _probe_stream(config)
    assert first == second
    assert first["sha256"] == second["sha256"]
    assert first["rows"] == config.total_rows()
    # And both match this (third) interpreter's in-process realisation.
    assert stream_digest(config) == first


def test_different_seeds_produce_different_streams():
    base = dict(initial_rows=300, periods=3, rows_per_period=80, drift="mixed")
    a = stream_digest(GeneratorConfig(seed=1, **base))
    b = stream_digest(GeneratorConfig(seed=2, **base))
    assert a["sha256"] != b["sha256"]


def test_config_changes_change_the_digest():
    config = GeneratorConfig(seed=6, initial_rows=300, periods=3, rows_per_period=80)
    drifted = GeneratorConfig(
        seed=6, initial_rows=300, periods=3, rows_per_period=80, drift="drift"
    )
    assert stream_digest(config)["sha256"] != stream_digest(drifted)["sha256"]
