"""Property-based tests (hypothesis) for workload analysis invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.schema import Attribute, CategoricalDomain, NumericDomain, Schema
from repro.data.table import Table
from repro.queries.builders import (
    histogram_workload,
    marginal_workload,
    point_workload,
    prefix_workload,
    range_workload,
)
from repro.queries.predicates import Between, Comparison
from repro.queries.workload import Workload

SCHEMA = Schema(
    [
        Attribute("cat", CategoricalDomain(["a", "b", "c", "d"])),
        Attribute("num", NumericDomain(0, 1000)),
    ]
)


@st.composite
def tables(draw, min_rows=0, max_rows=80):
    n = draw(st.integers(min_rows, max_rows))
    rows = []
    for _ in range(n):
        rows.append(
            {
                "cat": draw(st.sampled_from(["a", "b", "c", "d"])),
                "num": draw(st.floats(0, 1000, allow_nan=False)),
            }
        )
    return Table.from_rows(SCHEMA, rows)


@st.composite
def strictly_increasing_cuts(draw, low=0.0, high=1000.0, min_size=1, max_size=8):
    values = draw(
        st.lists(
            st.floats(low, high, allow_nan=False, allow_infinity=False),
            min_size=min_size,
            max_size=max_size,
            unique=True,
        )
    )
    return sorted(values)


class TestMatrixReconstructionInvariant:
    """W @ histogram(D) == true per-predicate counts, for every workload shape."""

    @settings(max_examples=30, deadline=None)
    @given(table=tables(), cuts=strictly_increasing_cuts(min_size=2))
    def test_range_workloads(self, table, cuts):
        workload = range_workload("num", cuts)
        analysis = workload.analyze(SCHEMA)
        histogram = analysis.partition_histogram(table)
        assert np.allclose(analysis.matrix @ histogram, workload.true_answers(table))

    @settings(max_examples=30, deadline=None)
    @given(table=tables(), cuts=strictly_increasing_cuts())
    def test_prefix_workloads(self, table, cuts):
        workload = prefix_workload("num", cuts)
        analysis = workload.analyze(SCHEMA)
        histogram = analysis.partition_histogram(table)
        assert np.allclose(analysis.matrix @ histogram, workload.true_answers(table))

    @settings(max_examples=20, deadline=None)
    @given(table=tables(), bins=st.integers(1, 12))
    def test_marginal_workloads(self, table, bins):
        workload = marginal_workload(
            point_workload("cat", ["a", "b", "c", "d"]),
            histogram_workload("num", start=0, stop=1000, bins=bins),
        )
        analysis = workload.analyze(SCHEMA)
        histogram = analysis.partition_histogram(table)
        assert np.allclose(analysis.matrix @ histogram, workload.true_answers(table))


class TestSensitivityInvariants:
    @settings(max_examples=30, deadline=None)
    @given(cuts=strictly_increasing_cuts(low=0.5, min_size=1, max_size=10))
    def test_prefix_sensitivity_equals_size(self, cuts):
        # cuts stay strictly above the domain minimum so every prefix bin is
        # satisfiable; a cut at exactly 0 makes "num < 0" empty, and an empty
        # predicate correctly contributes nothing to the sensitivity.
        workload = prefix_workload("num", cuts)
        assert workload.analyze(SCHEMA).sensitivity == len(cuts)

    @settings(max_examples=30, deadline=None)
    @given(cuts=strictly_increasing_cuts(min_size=2, max_size=10))
    def test_range_sensitivity_is_one(self, cuts):
        workload = range_workload("num", cuts)
        assert workload.analyze(SCHEMA).sensitivity == 1.0

    @settings(max_examples=30, deadline=None)
    @given(
        table=tables(min_rows=1),
        thresholds=st.lists(st.floats(0, 1000, allow_nan=False), min_size=1, max_size=6, unique=True),
    )
    def test_sensitivity_upper_bounds_row_membership(self, table, thresholds):
        """No row can satisfy more predicates than the declared sensitivity."""
        workload = Workload([Comparison("num", ">", t) for t in thresholds])
        analysis = workload.analyze(SCHEMA)
        membership = workload.evaluate(table)
        assert membership.sum(axis=1).max() <= analysis.sensitivity + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        low=st.floats(0, 400, allow_nan=False),
        width=st.floats(1, 400, allow_nan=False),
        point=st.floats(0, 1000, allow_nan=False),
    )
    def test_mixed_workload_counts_match(self, low, width, point):
        workload = Workload(
            [
                Between("num", low, low + width),
                Comparison("num", ">", point),
                Comparison("cat", "==", "a"),
            ]
        )
        analysis = workload.analyze(SCHEMA)
        assert 1.0 <= analysis.sensitivity <= 3.0
        assert analysis.matrix.shape[0] == 3


class TestHistogramInvariants:
    @settings(max_examples=30, deadline=None)
    @given(table=tables(), bins=st.integers(1, 15))
    def test_histogram_mass_bounded_by_rows(self, table, bins):
        workload = histogram_workload("num", start=0, stop=1000, bins=bins)
        analysis = workload.analyze(SCHEMA)
        histogram = analysis.partition_histogram(table)
        assert histogram.sum() <= len(table)
        assert (histogram >= 0).all()

    @settings(max_examples=30, deadline=None)
    @given(table=tables())
    def test_point_workload_partition_counts(self, table):
        workload = point_workload("cat", ["a", "b", "c", "d"])
        analysis = workload.analyze(SCHEMA)
        histogram = analysis.partition_histogram(table)
        assert histogram.sum() == len(table)
