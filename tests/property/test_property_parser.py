"""Property-based tests for the query parser and predicate round trips."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.schema import Attribute, CategoricalDomain, NumericDomain, Schema
from repro.data.table import Table
from repro.queries.parser import parse_predicate, parse_query
from repro.queries.predicates import Comparison

SCHEMA = Schema(
    [
        Attribute("num", NumericDomain(0, 100)),
        Attribute("cat", CategoricalDomain(["x", "y", "z"])),
    ]
)

identifiers = st.sampled_from(["num", "cat"])
numbers = st.floats(0, 100, allow_nan=False, allow_infinity=False).map(lambda x: round(x, 3))


@st.composite
def comparison_texts(draw):
    """Generate numeric comparison text together with the expected semantics."""
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "=", "!="]))
    value = draw(numbers)
    return f"num {op} {value}", op, value


@st.composite
def small_tables(draw):
    n = draw(st.integers(0, 40))
    rows = [
        {"num": draw(numbers), "cat": draw(st.sampled_from(["x", "y", "z"]))}
        for _ in range(n)
    ]
    return Table.from_rows(SCHEMA, rows)


class TestPredicateRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(data=comparison_texts())
    def test_parse_produces_comparison(self, data):
        text, op, value = data
        predicate = parse_predicate(text)
        assert isinstance(predicate, Comparison)
        assert predicate.value == value
        expected_op = {"=": "==", "<>": "!="}.get(op, op)
        assert predicate.op == expected_op

    @settings(max_examples=40, deadline=None)
    @given(data=comparison_texts(), table=small_tables())
    def test_parsed_predicate_matches_manual_evaluation(self, data, table):
        text, op, value = data
        predicate = parse_predicate(text)
        column = table.column("num").astype(float)
        expected_op = {"=": "==", "<>": "!="}.get(op, op)
        expected = {
            "==": column == value,
            "!=": column != value,
            "<": column < value,
            "<=": column <= value,
            ">": column > value,
            ">=": column >= value,
        }[expected_op]
        assert np.array_equal(predicate.evaluate(table), expected)

    @settings(max_examples=40, deadline=None)
    @given(
        low=st.floats(0, 50, allow_nan=False).map(lambda x: round(x, 2)),
        width=st.floats(0.5, 50, allow_nan=False).map(lambda x: round(x, 2)),
        table=small_tables(),
    )
    def test_between_round_trip(self, low, width, table):
        high = round(low + width, 2)
        predicate = parse_predicate(f"num BETWEEN {low} AND {high}")
        column = table.column("num").astype(float)
        expected = (column >= low) & (column <= high)
        assert np.array_equal(predicate.evaluate(table), expected)

    @settings(max_examples=40, deadline=None)
    @given(describe_seed=st.lists(comparison_texts(), min_size=1, max_size=4))
    def test_describe_reparse_idempotent(self, describe_seed):
        """describe() output parses back to an equivalent predicate."""
        for text, _, _ in describe_seed:
            predicate = parse_predicate(text)
            reparsed = parse_predicate(predicate.describe())
            assert reparsed.describe() == predicate.describe()


class TestQueryRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(
        cuts=st.lists(numbers, min_size=1, max_size=6, unique=True),
        alpha=st.floats(1, 500).map(lambda x: round(x, 2)),
    )
    def test_wcq_workload_size_matches_predicate_count(self, cuts, alpha):
        body = ", ".join(f"num < {cut}" for cut in sorted(cuts))
        query, accuracy = parse_query(
            f"BIN D ON COUNT(*) WHERE W = {{{body}}} ERROR {alpha} CONFIDENCE 0.999;"
        )
        assert query.workload_size == len(cuts)
        assert accuracy is not None
        assert accuracy.alpha == alpha

    @settings(max_examples=30, deadline=None)
    @given(
        k=st.integers(1, 5),
        n_predicates=st.integers(5, 10),
    )
    def test_tcq_k_round_trip(self, k, n_predicates):
        body = ", ".join(f"num < {10 * (i + 1)}" for i in range(n_predicates))
        query, _ = parse_query(
            f"BIN D ON COUNT(*) WHERE W = {{{body}}} ORDER BY COUNT(*) LIMIT {k};"
        )
        assert query.k == k
