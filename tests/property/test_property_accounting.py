"""Property-based tests for the privacy ledger and table operations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accounting import PrivacyLedger
from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import BudgetExceededError
from repro.data.schema import Attribute, CategoricalDomain, NumericDomain, Schema
from repro.data.table import Table

ACC = AccuracySpec(alpha=1.0)

SCHEMA = Schema(
    [
        Attribute("cat", CategoricalDomain(["a", "b"])),
        Attribute("num", NumericDomain(0, 10)),
    ]
)


@st.composite
def charge_sequences(draw):
    """Sequences of (epsilon_upper, spend_fraction) charge attempts."""
    n = draw(st.integers(1, 30))
    return [
        (
            draw(st.floats(0.001, 0.5, allow_nan=False)),
            draw(st.floats(0.0, 1.0, allow_nan=False)),
        )
        for _ in range(n)
    ]


class TestLedgerProperties:
    @settings(max_examples=80, deadline=None)
    @given(budget=st.floats(0.1, 5.0), charges=charge_sequences())
    def test_spent_never_exceeds_budget(self, budget, charges):
        ledger = PrivacyLedger(budget)
        for upper, fraction in charges:
            spent = upper * fraction
            if ledger.can_afford(upper):
                ledger.charge(
                    query_name="q", query_kind="WCQ", accuracy=ACC, mechanism="LM",
                    epsilon_upper=upper, epsilon_spent=spent, answer=None,
                )
            else:
                ledger.deny(query_name="q", query_kind="WCQ", accuracy=ACC)
                with pytest.raises(BudgetExceededError):
                    ledger.charge(
                        query_name="q", query_kind="WCQ", accuracy=ACC, mechanism="LM",
                        epsilon_upper=upper, epsilon_spent=spent, answer=None,
                    )
        assert ledger.spent <= ledger.budget + 1e-9
        assert ledger.transcript.is_valid(ledger.budget)
        assert ledger.spent == pytest.approx(ledger.transcript.total_epsilon())

    @settings(max_examples=50, deadline=None)
    @given(budget=st.floats(0.1, 5.0), charges=charge_sequences())
    def test_remaining_plus_spent_equals_budget(self, budget, charges):
        ledger = PrivacyLedger(budget)
        for upper, fraction in charges:
            if ledger.can_afford(upper):
                ledger.charge(
                    query_name="q", query_kind="WCQ", accuracy=ACC, mechanism="LM",
                    epsilon_upper=upper, epsilon_spent=upper * fraction, answer=None,
                )
        assert ledger.remaining + ledger.spent == pytest.approx(ledger.budget)


@st.composite
def row_lists(draw, max_rows=60):
    n = draw(st.integers(0, max_rows))
    return [
        {
            "cat": draw(st.sampled_from(["a", "b"])),
            "num": draw(st.floats(0, 10, allow_nan=False)),
        }
        for _ in range(n)
    ]


class TestTableProperties:
    @settings(max_examples=50, deadline=None)
    @given(rows=row_lists())
    def test_filter_then_count_consistent(self, rows):
        table = Table.from_rows(SCHEMA, rows)
        mask = table.column("num").astype(float) > 5
        assert len(table.filter(mask)) == table.count(mask)

    @settings(max_examples=50, deadline=None)
    @given(rows=row_lists())
    def test_concat_preserves_counts(self, rows):
        table = Table.from_rows(SCHEMA, rows)
        doubled = table.concat(table)
        assert len(doubled) == 2 * len(table)
        assert doubled.null_count("num") == 2 * table.null_count("num")

    @settings(max_examples=50, deadline=None)
    @given(rows=row_lists(), seed=st.integers(0, 1000))
    def test_sample_is_subset(self, rows, seed):
        table = Table.from_rows(SCHEMA, rows)
        if len(table) == 0:
            return
        rng = np.random.default_rng(seed)
        size = int(rng.integers(0, len(table) + 1))
        sample = table.sample(size, rng=rng)
        assert len(sample) == size
        original_values = list(table.column("num").astype(float))
        for value in sample.column("num").astype(float):
            assert value in original_values
