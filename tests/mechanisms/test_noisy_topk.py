"""Tests for the Laplace top-k mechanism (TCQ-LTM, Algorithm 5)."""

import math

import numpy as np
import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import MechanismError, TranslationError
from repro.mechanisms.laplace import LaplaceMechanism
from repro.mechanisms.noisy_topk import LaplaceTopKMechanism
from repro.queries.builders import point_workload, prefix_workload
from repro.queries.query import QueryKind, TopKCountingQuery, WorkloadCountingQuery


@pytest.fixture()
def mechanism() -> LaplaceTopKMechanism:
    return LaplaceTopKMechanism()


class TestTranslate:
    def test_formula(self, mechanism, adult_small, age_topk_query):
        accuracy = AccuracySpec(alpha=200, beta=1e-3)
        translation = mechanism.translate(age_topk_query, accuracy, adult_small.schema)
        L, k = age_topk_query.workload_size, age_topk_query.k
        assert translation.epsilon_upper == pytest.approx(
            2 * k * math.log(L / (2 * 1e-3)) / 200
        )

    def test_cost_independent_of_sensitivity(self, mechanism, adult_small):
        """LTM's epsilon does not grow with the workload sensitivity (Fig. 4b)."""
        accuracy = AccuracySpec(alpha=200)
        low_sensitivity = TopKCountingQuery(
            point_workload("age", [float(a) for a in range(20)]), k=3
        )
        high_sensitivity = TopKCountingQuery(
            prefix_workload("capital_gain", [250.0 * i for i in range(1, 21)]), k=3
        )
        eps_low = mechanism.translate(low_sensitivity, accuracy, adult_small.schema)
        eps_high = mechanism.translate(high_sensitivity, accuracy, adult_small.schema)
        assert eps_low.epsilon_upper == pytest.approx(eps_high.epsilon_upper)

    def test_cost_linear_in_k(self, mechanism, adult_small):
        accuracy = AccuracySpec(alpha=200)
        workload = point_workload("age", [float(a) for a in range(40)])
        eps_k5 = mechanism.translate(
            TopKCountingQuery(workload, k=5), accuracy, adult_small.schema
        ).epsilon_upper
        eps_k10 = mechanism.translate(
            TopKCountingQuery(workload, k=10), accuracy, adult_small.schema
        ).epsilon_upper
        assert eps_k10 == pytest.approx(2 * eps_k5)

    def test_beats_laplace_for_high_sensitivity_workloads(self, mechanism, adult_small):
        accuracy = AccuracySpec(alpha=200)
        query = TopKCountingQuery(
            prefix_workload("capital_gain", [100.0 * i for i in range(1, 51)]), k=5
        )
        ltm = mechanism.translate(query, accuracy, adult_small.schema)
        lm = LaplaceMechanism().translate(query, accuracy, adult_small.schema)
        assert ltm.epsilon_upper < lm.epsilon_upper

    def test_loses_to_laplace_for_disjoint_workloads(self, mechanism, adult_small):
        """For sensitivity-1 workloads and k > 1 the baseline LM can win."""
        accuracy = AccuracySpec(alpha=200)
        query = TopKCountingQuery(
            point_workload("age", [float(a) for a in range(17, 91)]), k=10
        )
        ltm = mechanism.translate(query, accuracy, adult_small.schema)
        lm = LaplaceMechanism().translate(query, accuracy, adult_small.schema)
        assert lm.epsilon_upper < ltm.epsilon_upper

    def test_only_supports_tcq(self, mechanism):
        wcq = WorkloadCountingQuery(point_workload("age", [1.0]))
        assert not mechanism.supports(wcq)
        with pytest.raises(MechanismError):
            mechanism.translate(wcq, AccuracySpec(alpha=10))
        assert mechanism.supported_kinds == frozenset({QueryKind.TCQ})

    def test_loose_beta_rejected(self, mechanism, adult_small):
        # a single-predicate workload with beta near 1 makes L/(2 beta) <= 1
        query = TopKCountingQuery(point_workload("age", [1.0]), k=1)
        with pytest.raises(TranslationError):
            mechanism.translate(query, AccuracySpec(alpha=10, beta=0.99), adult_small.schema)


class TestRun:
    def test_returns_k_bin_ids(self, mechanism, adult_small, age_topk_query, rng):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = mechanism.run(age_topk_query, accuracy, adult_small, rng)
        assert len(result.value) == age_topk_query.k
        assert set(result.value) <= set(age_topk_query.bin_names())

    def test_counts_not_exposed(self, mechanism, adult_small, age_topk_query, rng):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = mechanism.run(age_topk_query, accuracy, adult_small, rng)
        assert result.noisy_counts is None

    def test_spends_declared_epsilon(self, mechanism, adult_small, age_topk_query, rng):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        translation = mechanism.translate(age_topk_query, accuracy, adult_small.schema)
        result = mechanism.run(age_topk_query, accuracy, adult_small, rng)
        assert result.epsilon_spent == pytest.approx(translation.epsilon_upper)

    def test_accuracy_guarantee_statistical(self, adult_small):
        """Mislabelled bins must lie within alpha of the k-th count (Thm 5.6)."""
        mechanism = LaplaceTopKMechanism()
        beta = 0.1
        query = TopKCountingQuery(
            point_workload("age", [float(a) for a in range(17, 67)]), k=5
        )
        accuracy = AccuracySpec(alpha=0.03 * len(adult_small), beta=beta)
        truth = query.true_counts(adult_small)
        names = list(query.bin_names())
        kth = query.kth_largest_count(adult_small)
        rng = np.random.default_rng(23)
        trials, failures = 200, 0
        for _ in range(trials):
            reported = set(mechanism.run(query, accuracy, adult_small, rng).value)
            bad = False
            for index, name in enumerate(names):
                if name in reported and truth[index] < kth - accuracy.alpha:
                    bad = True
                if name not in reported and truth[index] > kth + accuracy.alpha:
                    bad = True
            failures += bad
        assert failures / trials <= beta * 1.5

    def test_accurate_with_tight_alpha(self, mechanism, adult_small, rng):
        """With a small alpha the reported set equals the true top-k."""
        query = TopKCountingQuery(
            point_workload("state", ["A"]), k=1
        )
        # use a query with an unambiguous winner: sex has two values
        query = TopKCountingQuery(point_workload("sex", ["M", "F"]), k=1)
        accuracy = AccuracySpec(alpha=0.01 * len(adult_small))
        result = mechanism.run(query, accuracy, adult_small, rng)
        assert result.value == ["sex = M"]
