"""Tests for the noise primitives, including the gradual-release refinement."""

import math

import numpy as np
import pytest

from repro.core.exceptions import MechanismError
from repro.mechanisms.noise import (
    laplace_max_error_bound,
    laplace_noise,
    laplace_scale_for_tail,
    laplace_tail_bound,
    relax_laplace_noise,
)


class TestLaplaceSampling:
    def test_shape(self, rng):
        assert laplace_noise(1.0, 10, rng).shape == (10,)
        assert laplace_noise(1.0, (3, 4), rng).shape == (3, 4)

    def test_scale_must_be_positive(self, rng):
        with pytest.raises(MechanismError):
            laplace_noise(0.0, 5, rng)

    def test_empirical_scale(self):
        rng = np.random.default_rng(0)
        samples = laplace_noise(2.0, 200_000, rng)
        # variance of Lap(b) is 2 b^2 = 8
        assert np.var(samples) == pytest.approx(8.0, rel=0.05)
        assert np.mean(samples) == pytest.approx(0.0, abs=0.05)


class TestTailBounds:
    def test_tail_bound_formula(self):
        assert laplace_tail_bound(2.0, 0.0) == 1.0
        assert laplace_tail_bound(2.0, 2.0) == pytest.approx(math.exp(-1))

    def test_tail_bound_negative_threshold(self):
        assert laplace_tail_bound(1.0, -1.0) == 1.0

    def test_scale_for_tail_inverts_bound(self):
        scale = laplace_scale_for_tail(threshold=5.0, probability=0.01)
        assert laplace_tail_bound(scale, 5.0) == pytest.approx(0.01)

    def test_scale_for_tail_validation(self):
        with pytest.raises(MechanismError):
            laplace_scale_for_tail(0, 0.1)
        with pytest.raises(MechanismError):
            laplace_scale_for_tail(1, 1.5)

    def test_max_error_bound_single(self):
        # for one variable the bound reduces to the plain tail inversion
        bound = laplace_max_error_bound(2.0, 1, 0.05)
        assert bound == pytest.approx(2.0 * math.log(1 / 0.05))

    def test_max_error_bound_grows_with_count(self):
        assert laplace_max_error_bound(1.0, 100, 0.05) > laplace_max_error_bound(1.0, 10, 0.05)

    def test_max_error_bound_empirical(self):
        rng = np.random.default_rng(1)
        scale, count, beta = 1.5, 20, 0.05
        bound = laplace_max_error_bound(scale, count, beta)
        trials = 4_000
        failures = 0
        for _ in range(trials):
            if np.abs(rng.laplace(0, scale, count)).max() >= bound:
                failures += 1
        assert failures / trials <= beta * 1.6  # allow sampling slack

    def test_max_error_bound_validation(self):
        with pytest.raises(MechanismError):
            laplace_max_error_bound(1.0, 0, 0.1)
        with pytest.raises(MechanismError):
            laplace_max_error_bound(1.0, 5, 1.5)


class TestRelaxLaplaceNoise:
    def test_identity_when_scales_equal(self, rng):
        noise = np.array([1.0, -2.0, 0.5])
        refined = relax_laplace_noise(noise, 2.0, 2.0, rng)
        assert np.allclose(refined, noise)

    def test_scalar_input_returns_scalar(self, rng):
        refined = relax_laplace_noise(1.0, 2.0, 1.0, rng)
        assert isinstance(refined, float)

    def test_rejects_increasing_scale(self, rng):
        with pytest.raises(MechanismError):
            relax_laplace_noise(1.0, 1.0, 2.0, rng)

    def test_rejects_non_positive_scales(self, rng):
        with pytest.raises(MechanismError):
            relax_laplace_noise(1.0, 0.0, 1.0, rng)

    def test_marginal_distribution_matches_target(self):
        """Refined noise must be marginally Lap(scale_new)."""
        rng = np.random.default_rng(7)
        scale_old, scale_new = 4.0, 1.5
        n = 30_000
        initial = rng.laplace(0, scale_old, n)
        refined = np.asarray(relax_laplace_noise(initial, scale_old, scale_new, rng))
        # variance of Lap(b) is 2 b^2
        assert np.var(refined) == pytest.approx(2 * scale_new**2, rel=0.06)
        assert np.mean(refined) == pytest.approx(0.0, abs=0.05)
        # compare a few quantiles against the analytic Laplace CDF:
        # Q(q) = b ln(2q) for q < 0.5 and -b ln(2(1-q)) for q > 0.5
        for q in (0.1, 0.25, 0.75, 0.9):
            if q < 0.5:
                expected = scale_new * math.log(2 * q)
            else:
                expected = -scale_new * math.log(2 * (1 - q))
            assert np.quantile(refined, q) == pytest.approx(expected, abs=0.12)

    def test_refined_noise_is_correlated_with_input(self):
        """Refinement keeps the new noise close to the old one (gradual release)."""
        rng = np.random.default_rng(11)
        scale_old, scale_new = 3.0, 2.5
        initial = rng.laplace(0, scale_old, 20_000)
        refined = np.asarray(relax_laplace_noise(initial, scale_old, scale_new, rng))
        independent = rng.laplace(0, scale_new, 20_000)
        correlated = np.corrcoef(initial, refined)[0, 1]
        uncorrelated = abs(np.corrcoef(initial, independent)[0, 1])
        assert correlated > 0.5
        assert correlated > uncorrelated + 0.4

    def test_many_values_stay_finite(self, rng):
        initial = rng.laplace(0, 10.0, 500)
        refined = np.asarray(relax_laplace_noise(initial, 10.0, 0.5, rng))
        assert np.isfinite(refined).all()

    def test_extreme_old_noise_handled(self, rng):
        refined = relax_laplace_noise(1e9, 2.0, 1.0, rng)
        assert math.isfinite(refined)

    def test_chained_refinement_preserves_marginal(self):
        """Refining in several steps still yields the final Laplace marginal."""
        rng = np.random.default_rng(3)
        scales = [5.0, 3.0, 2.0, 1.0]
        n = 20_000
        noise = rng.laplace(0, scales[0], n)
        for old, new in zip(scales[:-1], scales[1:]):
            noise = np.asarray(relax_laplace_noise(noise, old, new, rng))
        assert np.var(noise) == pytest.approx(2 * scales[-1] ** 2, rel=0.07)
