"""Tests for the mechanism registry and its default wiring."""

import pytest

from repro.core.exceptions import MechanismError
from repro.mechanisms.laplace import LaplaceMechanism
from repro.mechanisms.registry import MechanismRegistry, default_registry
from repro.queries.builders import point_workload
from repro.queries.query import (
    IcebergCountingQuery,
    QueryKind,
    TopKCountingQuery,
    WorkloadCountingQuery,
)


@pytest.fixture()
def registry() -> MechanismRegistry:
    return default_registry(mc_samples=200)


class TestDefaultRegistry:
    def test_contains_papers_suite(self, registry):
        expected = {"WCQ-LM", "WCQ-SM", "ICQ-LM", "ICQ-SM", "ICQ-MPM", "TCQ-LM", "TCQ-LTM"}
        assert {m.name for m in registry} == expected

    def test_wcq_mechanisms(self, registry):
        query = WorkloadCountingQuery(point_workload("age", [1.0, 2.0]))
        names = {m.name for m in registry.for_query(query)}
        assert names == {"WCQ-LM", "WCQ-SM"}

    def test_icq_mechanisms(self, registry):
        query = IcebergCountingQuery(point_workload("age", [1.0, 2.0]), threshold=5)
        names = {m.name for m in registry.for_query(query)}
        assert names == {"ICQ-LM", "ICQ-SM", "ICQ-MPM"}

    def test_tcq_mechanisms(self, registry):
        query = TopKCountingQuery(point_workload("age", [1.0, 2.0]), k=1)
        names = {m.name for m in registry.for_query(query)}
        assert names == {"TCQ-LM", "TCQ-LTM"}

    def test_for_kind(self, registry):
        assert len(registry.for_kind(QueryKind.ICQ)) == 3

    def test_get_by_name(self, registry):
        assert registry.get("WCQ-SM").name == "WCQ-SM"
        with pytest.raises(MechanismError):
            registry.get("nope")

    def test_contains(self, registry):
        assert "ICQ-MPM" in registry
        assert "nope" not in registry

    def test_len(self, registry):
        assert len(registry) == 7


class TestRegistryMutation:
    def test_register_duplicate_name_rejected(self):
        registry = MechanismRegistry([LaplaceMechanism(name="LM")])
        with pytest.raises(MechanismError):
            registry.register(LaplaceMechanism(name="LM"))

    def test_unregister(self):
        registry = MechanismRegistry([LaplaceMechanism(name="LM")])
        registry.unregister("LM")
        assert len(registry) == 0
        with pytest.raises(MechanismError):
            registry.unregister("LM")

    def test_custom_registration(self):
        registry = MechanismRegistry()
        registry.register(LaplaceMechanism(name="custom"))
        query = WorkloadCountingQuery(point_workload("age", [1.0]))
        assert [m.name for m in registry.for_query(query)] == ["custom"]
