"""Tests for the baseline Laplace mechanism (Algorithm 2)."""

import math

import numpy as np
import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import MechanismError, TranslationError
from repro.mechanisms.laplace import LaplaceMechanism, laplace_epsilon_for_accuracy
from repro.queries.builders import histogram_workload, point_workload, prefix_workload
from repro.queries.query import (
    IcebergCountingQuery,
    QueryKind,
    TopKCountingQuery,
    WorkloadCountingQuery,
)


@pytest.fixture()
def mechanism() -> LaplaceMechanism:
    return LaplaceMechanism()


class TestTranslate:
    def test_wcq_formula(self, mechanism, adult_small, capital_gain_histogram_query):
        accuracy = AccuracySpec(alpha=100, beta=1e-3)
        translation = mechanism.translate(
            capital_gain_histogram_query, accuracy, adult_small.schema
        )
        L = capital_gain_histogram_query.workload_size
        expected = math.log(1 / (1 - (1 - 1e-3) ** (1 / L))) / 100
        assert translation.epsilon_upper == pytest.approx(expected)
        assert translation.epsilon_lower == translation.epsilon_upper
        assert not translation.is_data_dependent

    def test_wcq_sensitivity_scales_epsilon(self, mechanism, adult_small,
                                            capital_gain_histogram_query,
                                            capital_gain_prefix_query):
        accuracy = AccuracySpec(alpha=100, beta=1e-3)
        disjoint = mechanism.translate(
            capital_gain_histogram_query, accuracy, adult_small.schema
        )
        prefix = mechanism.translate(
            capital_gain_prefix_query, accuracy, adult_small.schema
        )
        ratio = prefix.epsilon_upper / disjoint.epsilon_upper
        assert ratio == pytest.approx(capital_gain_prefix_query.workload_size)

    def test_icq_cheaper_than_wcq(self, mechanism, adult_small):
        workload = histogram_workload("capital_gain", start=0, stop=5000, bins=20)
        accuracy = AccuracySpec(alpha=100, beta=1e-3)
        wcq = mechanism.translate(
            WorkloadCountingQuery(workload), accuracy, adult_small.schema
        )
        icq = mechanism.translate(
            IcebergCountingQuery(workload, threshold=100), accuracy, adult_small.schema
        )
        assert icq.epsilon_upper < wcq.epsilon_upper

    def test_tcq_formula(self, mechanism, adult_small, age_topk_query):
        accuracy = AccuracySpec(alpha=200, beta=1e-3)
        translation = mechanism.translate(age_topk_query, accuracy, adult_small.schema)
        L = age_topk_query.workload_size
        expected = 2 * math.log(L / (2 * 1e-3)) / 200
        assert translation.epsilon_upper == pytest.approx(expected)

    def test_epsilon_decreases_with_alpha(self, mechanism, adult_small,
                                          capital_gain_histogram_query):
        tight = mechanism.translate(
            capital_gain_histogram_query, AccuracySpec(alpha=50), adult_small.schema
        )
        loose = mechanism.translate(
            capital_gain_histogram_query, AccuracySpec(alpha=500), adult_small.schema
        )
        assert loose.epsilon_upper == pytest.approx(tight.epsilon_upper / 10)

    def test_epsilon_increases_with_confidence(self, mechanism, adult_small,
                                               capital_gain_histogram_query):
        strict = mechanism.translate(
            capital_gain_histogram_query,
            AccuracySpec(alpha=100, beta=1e-6),
            adult_small.schema,
        )
        loose = mechanism.translate(
            capital_gain_histogram_query,
            AccuracySpec(alpha=100, beta=1e-2),
            adult_small.schema,
        )
        assert strict.epsilon_upper > loose.epsilon_upper

    def test_loose_beta_rejected_for_icq(self):
        with pytest.raises(TranslationError):
            laplace_epsilon_for_accuracy(
                QueryKind.ICQ, 1.0, 1, AccuracySpec(alpha=10, beta=0.8)
            )

    def test_loose_beta_rejected_for_tcq(self):
        with pytest.raises(TranslationError):
            laplace_epsilon_for_accuracy(
                QueryKind.TCQ, 1.0, 1, AccuracySpec(alpha=10, beta=0.9)
            )

    def test_invalid_sensitivity(self):
        with pytest.raises(TranslationError):
            laplace_epsilon_for_accuracy(QueryKind.WCQ, 0.0, 5, AccuracySpec(alpha=10))

    def test_kind_restriction(self):
        restricted = LaplaceMechanism(name="WCQ-only", kinds=frozenset({QueryKind.WCQ}))
        icq = IcebergCountingQuery(point_workload("age", [1.0]), threshold=5)
        assert not restricted.supports(icq)
        with pytest.raises(MechanismError):
            restricted.translate(icq, AccuracySpec(alpha=10))


class TestRun:
    def test_wcq_returns_noisy_counts(self, mechanism, adult_small,
                                      capital_gain_histogram_query, rng):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = mechanism.run(capital_gain_histogram_query, accuracy, adult_small, rng)
        assert isinstance(result.value, np.ndarray)
        assert len(result.value) == capital_gain_histogram_query.workload_size
        assert result.epsilon_spent == result.epsilon_upper

    def test_wcq_noise_within_alpha(self, mechanism, adult_small,
                                    capital_gain_histogram_query, rng):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small), beta=1e-3)
        truth = capital_gain_histogram_query.true_counts(adult_small)
        result = mechanism.run(capital_gain_histogram_query, accuracy, adult_small, rng)
        assert np.abs(result.value - truth).max() < accuracy.alpha

    def test_icq_returns_bin_ids(self, mechanism, adult_small,
                                 capital_gain_iceberg_query, rng):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = mechanism.run(capital_gain_iceberg_query, accuracy, adult_small, rng)
        assert isinstance(result.value, list)
        assert set(result.value) <= set(capital_gain_iceberg_query.bin_names())

    def test_tcq_returns_k_bins(self, mechanism, adult_small, age_topk_query, rng):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = mechanism.run(age_topk_query, accuracy, adult_small, rng)
        assert len(result.value) == age_topk_query.k

    def test_reproducible_with_seed(self, mechanism, adult_small,
                                    capital_gain_histogram_query):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        a = mechanism.run(capital_gain_histogram_query, accuracy, adult_small, rng=0)
        b = mechanism.run(capital_gain_histogram_query, accuracy, adult_small, rng=0)
        assert np.allclose(a.value, b.value)

    def test_noisy_counts_exposed_for_wcq(self, mechanism, adult_small,
                                          capital_gain_histogram_query, rng):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = mechanism.run(capital_gain_histogram_query, accuracy, adult_small, rng)
        assert result.noisy_counts is not None

    def test_metadata_contains_scale(self, mechanism, adult_small,
                                     capital_gain_histogram_query, rng):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = mechanism.run(capital_gain_histogram_query, accuracy, adult_small, rng)
        assert result.metadata["noise_scale"] > 0


class TestAccuracyGuarantee:
    """Statistical check of Theorem 5.2: the (alpha, beta) bound holds."""

    def test_wcq_failure_rate_below_beta(self, adult_small):
        mechanism = LaplaceMechanism()
        query = WorkloadCountingQuery(
            histogram_workload("capital_gain", start=0, stop=5000, bins=10)
        )
        beta = 0.05
        accuracy = AccuracySpec(alpha=0.02 * len(adult_small), beta=beta)
        truth = query.true_counts(adult_small)
        rng = np.random.default_rng(0)
        trials, failures = 400, 0
        for _ in range(trials):
            result = mechanism.run(query, accuracy, adult_small, rng)
            if np.abs(result.value - truth).max() >= accuracy.alpha:
                failures += 1
        assert failures / trials <= beta * 1.8

    def test_tcq_failure_rate_below_beta(self, adult_small):
        mechanism = LaplaceMechanism()
        query = TopKCountingQuery(
            point_workload("age", [float(a) for a in range(17, 57)]), k=5
        )
        beta = 0.05
        accuracy = AccuracySpec(alpha=0.03 * len(adult_small), beta=beta)
        truth = query.true_counts(adult_small)
        names = list(query.bin_names())
        kth = query.kth_largest_count(adult_small)
        rng = np.random.default_rng(1)
        trials, failures = 300, 0
        for _ in range(trials):
            reported = set(mechanism.run(query, accuracy, adult_small, rng).value)
            bad = False
            for index, name in enumerate(names):
                if name in reported and truth[index] < kth - accuracy.alpha:
                    bad = True
                if name not in reported and truth[index] > kth + accuracy.alpha:
                    bad = True
            failures += bad
        assert failures / trials <= beta * 1.8
