"""Tests for strategy matrices (identity, hierarchical H2)."""

import math

import numpy as np
import pytest

from repro.core.exceptions import MechanismError
from repro.mechanisms.strategies import (
    StrategyMatrix,
    hierarchical_strategy,
    identity_strategy,
    workload_as_strategy,
)
from repro.queries.builders import histogram_workload, prefix_workload
from repro.data.schema import Attribute, NumericDomain, Schema


@pytest.fixture()
def numeric_schema():
    return Schema([Attribute("x", NumericDomain(0, 1000))])


class TestIdentityStrategy:
    def test_shape_and_sensitivity(self):
        strategy = identity_strategy(8)
        assert strategy.matrix.shape == (8, 8)
        assert strategy.sensitivity == 1.0

    def test_invalid_size(self):
        with pytest.raises(MechanismError):
            identity_strategy(0)

    def test_supports_any_workload(self):
        strategy = identity_strategy(5)
        workload = np.random.default_rng(0).random((7, 5))
        assert strategy.supports(workload)


class TestHierarchicalStrategy:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 16, 33, 100])
    def test_sensitivity_is_logarithmic(self, n):
        strategy = hierarchical_strategy(n)
        assert strategy.sensitivity <= math.ceil(math.log2(max(n, 2))) + 2

    @pytest.mark.parametrize("n", [1, 5, 16, 41])
    def test_contains_leaves_and_root(self, n):
        strategy = hierarchical_strategy(n)
        matrix = strategy.matrix
        # root row counts every partition
        assert any(np.all(row == 1) for row in matrix)
        # every unit vector appears (leaf rows), so any workload is supported
        for leaf in range(n):
            unit = np.zeros(n)
            unit[leaf] = 1
            assert any(np.array_equal(row, unit) for row in matrix)

    def test_supports_prefix_workload(self, numeric_schema):
        workload = prefix_workload("x", [100.0 * i for i in range(1, 17)])
        analysis = workload.analyze(numeric_schema)
        strategy = hierarchical_strategy(analysis.n_partitions)
        assert strategy.supports(analysis.matrix)

    def test_sensitivity_below_prefix_workload(self, numeric_schema):
        workload = prefix_workload("x", [50.0 * i for i in range(1, 21)])
        analysis = workload.analyze(numeric_schema)
        strategy = hierarchical_strategy(analysis.n_partitions)
        assert strategy.sensitivity < analysis.sensitivity

    def test_branching_factor(self):
        h4 = hierarchical_strategy(64, branching=4)
        h2 = hierarchical_strategy(64, branching=2)
        assert h4.sensitivity < h2.sensitivity
        assert h4.name == "H4"

    def test_invalid_branching(self):
        with pytest.raises(MechanismError):
            hierarchical_strategy(8, branching=1)


class TestStrategyMatrixBehaviour:
    def test_pinv_cached(self):
        strategy = identity_strategy(4)
        assert strategy.pseudo_inverse is strategy.pseudo_inverse

    def test_reconstruction_shape(self, numeric_schema):
        workload = histogram_workload("x", start=0, stop=1000, bins=8)
        analysis = workload.analyze(numeric_schema)
        strategy = hierarchical_strategy(analysis.n_partitions)
        reconstruction = strategy.reconstruction(analysis.matrix)
        assert reconstruction.shape == (8, strategy.n_queries)

    def test_reconstruction_exact_without_noise(self, numeric_schema):
        workload = prefix_workload("x", [100.0 * i for i in range(1, 11)])
        analysis = workload.analyze(numeric_schema)
        strategy = hierarchical_strategy(analysis.n_partitions)
        x = np.arange(analysis.n_partitions, dtype=float)
        direct = analysis.matrix @ x
        via_strategy = strategy.reconstruction(analysis.matrix) @ (strategy.matrix @ x)
        assert np.allclose(direct, via_strategy)

    def test_dimension_mismatch(self):
        strategy = identity_strategy(4)
        with pytest.raises(MechanismError):
            strategy.reconstruction(np.eye(5))
        assert not strategy.supports(np.eye(5))

    def test_workload_as_strategy(self):
        matrix = np.array([[1.0, 0.0], [1.0, 1.0]])
        strategy = workload_as_strategy(matrix, name="W")
        assert strategy.name == "W"
        assert strategy.sensitivity == 2.0

    def test_invalid_matrix_rejected(self):
        with pytest.raises(MechanismError):
            StrategyMatrix(np.zeros((0, 3)))
        with pytest.raises(MechanismError):
            StrategyMatrix(np.zeros(3))
