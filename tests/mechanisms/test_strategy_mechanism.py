"""Tests for WCQ-SM / ICQ-SM (the matrix mechanism with MC translation)."""

import numpy as np
import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import MechanismError
from repro.mechanisms.laplace import LaplaceMechanism
from repro.mechanisms.strategy_mechanism import (
    IcebergStrategyMechanism,
    StrategyMechanism,
)
from repro.queries.builders import histogram_workload, prefix_workload
from repro.queries.query import (
    IcebergCountingQuery,
    QueryKind,
    WorkloadCountingQuery,
)


@pytest.fixture()
def strategy_mechanism() -> StrategyMechanism:
    # smaller MC sample keeps the test fast; the translation is still sound
    return StrategyMechanism(mc_samples=1_000)


@pytest.fixture()
def prefix_query() -> WorkloadCountingQuery:
    return WorkloadCountingQuery(
        prefix_workload("capital_gain", [250.0 * i for i in range(1, 21)]),
        name="prefix-20",
    )


class TestTranslate:
    def test_only_supports_wcq(self, strategy_mechanism, adult_small):
        icq = IcebergCountingQuery(
            histogram_workload("capital_gain", start=0, stop=5000, bins=4), threshold=10
        )
        assert not strategy_mechanism.supports(icq)
        with pytest.raises(MechanismError):
            strategy_mechanism.translate(icq, AccuracySpec(alpha=10))

    def test_epsilon_below_chebyshev_bound(self, strategy_mechanism, adult_small, prefix_query):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        translation = strategy_mechanism.translate(prefix_query, accuracy, adult_small.schema)
        assert translation.epsilon_upper <= translation.details["chebyshev_upper"]

    def test_beats_laplace_on_prefix_workloads(self, strategy_mechanism, adult_small, prefix_query):
        """The headline Section 5.2 result: SM wins when sensitivity is large."""
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        sm = strategy_mechanism.translate(prefix_query, accuracy, adult_small.schema)
        lm = LaplaceMechanism().translate(prefix_query, accuracy, adult_small.schema)
        assert sm.epsilon_upper < lm.epsilon_upper

    def test_loses_to_laplace_on_disjoint_histograms(self, strategy_mechanism, adult_small,
                                                     capital_gain_histogram_query):
        """...and loses when the workload sensitivity is already 1 (Table 2)."""
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        sm = strategy_mechanism.translate(
            capital_gain_histogram_query, accuracy, adult_small.schema
        )
        lm = LaplaceMechanism().translate(
            capital_gain_histogram_query, accuracy, adult_small.schema
        )
        assert sm.epsilon_upper > lm.epsilon_upper

    def test_translation_cached(self, strategy_mechanism, adult_small, prefix_query):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        first = strategy_mechanism.translate(prefix_query, accuracy, adult_small.schema)
        second = strategy_mechanism.translate(prefix_query, accuracy, adult_small.schema)
        assert first.epsilon_upper == second.epsilon_upper

    def test_epsilon_monotone_in_alpha(self, strategy_mechanism, adult_small, prefix_query):
        tight = strategy_mechanism.translate(
            prefix_query, AccuracySpec(alpha=0.02 * len(adult_small)), adult_small.schema
        )
        loose = strategy_mechanism.translate(
            prefix_query, AccuracySpec(alpha=0.2 * len(adult_small)), adult_small.schema
        )
        assert loose.epsilon_upper < tight.epsilon_upper

    def test_not_data_dependent(self, strategy_mechanism, adult_small, prefix_query):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        translation = strategy_mechanism.translate(prefix_query, accuracy, adult_small.schema)
        assert not translation.is_data_dependent


class TestRun:
    def test_returns_noisy_counts(self, strategy_mechanism, adult_small, prefix_query, rng):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = strategy_mechanism.run(prefix_query, accuracy, adult_small, rng)
        assert isinstance(result.value, np.ndarray)
        assert len(result.value) == prefix_query.workload_size
        assert result.epsilon_spent == result.epsilon_upper

    def test_error_within_alpha(self, strategy_mechanism, adult_small, prefix_query, rng):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small), beta=1e-3)
        truth = prefix_query.true_counts(adult_small)
        result = strategy_mechanism.run(prefix_query, accuracy, adult_small, rng)
        assert np.abs(result.value - truth).max() < accuracy.alpha

    def test_failure_rate_below_beta(self, adult_small, prefix_query):
        """Statistical check of Theorem 5.3 with a generous beta."""
        mechanism = StrategyMechanism(mc_samples=1_000)
        beta = 0.1
        accuracy = AccuracySpec(alpha=0.03 * len(adult_small), beta=beta)
        truth = prefix_query.true_counts(adult_small)
        rng = np.random.default_rng(5)
        trials, failures = 200, 0
        for _ in range(trials):
            result = mechanism.run(prefix_query, accuracy, adult_small, rng)
            if np.abs(result.value - truth).max() >= accuracy.alpha:
                failures += 1
        assert failures / trials <= beta * 1.5

    def test_metadata_names_strategy(self, strategy_mechanism, adult_small, prefix_query, rng):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = strategy_mechanism.run(prefix_query, accuracy, adult_small, rng)
        assert result.metadata["strategy"].startswith("H")


class TestIcebergStrategyMechanism:
    def test_supports_icq_only(self):
        mechanism = IcebergStrategyMechanism(mc_samples=500)
        assert QueryKind.ICQ in mechanism.supported_kinds
        assert QueryKind.WCQ not in mechanism.supported_kinds

    def test_returns_bins_above_threshold(self, adult_small, rng):
        mechanism = IcebergStrategyMechanism(mc_samples=500)
        query = IcebergCountingQuery(
            prefix_workload("capital_gain", [250.0 * i for i in range(1, 21)]),
            threshold=0.5 * len(adult_small),
            name="icq-prefix",
        )
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = mechanism.run(query, accuracy, adult_small, rng)
        assert set(result.value) <= set(query.bin_names())
        # prefix counts are monotone, so high cut points must be reported
        assert query.bin_names()[-1] in result.value

    def test_cheaper_than_wcq_counterpart(self, adult_small):
        """One-sided ICQ accuracy needs slightly less epsilon than WCQ."""
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        workload = prefix_workload("capital_gain", [250.0 * i for i in range(1, 21)])
        wcq_eps = StrategyMechanism(mc_samples=1_000).translate(
            WorkloadCountingQuery(workload), accuracy, adult_small.schema
        ).epsilon_upper
        icq_eps = IcebergStrategyMechanism(mc_samples=1_000).translate(
            IcebergCountingQuery(workload, threshold=100), accuracy, adult_small.schema
        ).epsilon_upper
        assert icq_eps <= wcq_eps * 1.05
