"""Tests for the multi-poking mechanism (ICQ-MPM, Algorithm 4)."""

import numpy as np
import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import MechanismError, TranslationError
from repro.mechanisms.laplace import LaplaceMechanism
from repro.mechanisms.multi_poking import MultiPokingMechanism
from repro.queries.builders import histogram_workload, point_workload
from repro.queries.query import IcebergCountingQuery, QueryKind, WorkloadCountingQuery


@pytest.fixture()
def mechanism() -> MultiPokingMechanism:
    return MultiPokingMechanism(n_pokes=10)


def _iceberg(table, threshold_fraction: float, bins: int = 20) -> IcebergCountingQuery:
    return IcebergCountingQuery(
        histogram_workload("capital_gain", start=0, stop=5000, bins=bins),
        threshold=threshold_fraction * len(table),
        name=f"icq-{threshold_fraction}",
    )


class TestTranslate:
    def test_bounds(self, mechanism, adult_small):
        query = _iceberg(adult_small, 0.1)
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        translation = mechanism.translate(query, accuracy, adult_small.schema)
        assert translation.is_data_dependent
        assert translation.epsilon_lower == pytest.approx(
            translation.epsilon_upper / mechanism.n_pokes
        )

    def test_upper_bound_exceeds_laplace(self, mechanism, adult_small):
        """Worst case MPM is costlier than the baseline (Section 5.3.2)."""
        query = _iceberg(adult_small, 0.1)
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        mpm = mechanism.translate(query, accuracy, adult_small.schema)
        lm = LaplaceMechanism().translate(query, accuracy, adult_small.schema)
        assert mpm.epsilon_upper > lm.epsilon_upper
        assert mpm.epsilon_lower < lm.epsilon_upper

    def test_only_supports_icq(self, mechanism):
        wcq = WorkloadCountingQuery(point_workload("age", [1.0]))
        assert not mechanism.supports(wcq)
        assert mechanism.supported_kinds == frozenset({QueryKind.ICQ})

    def test_invalid_poke_count(self):
        with pytest.raises(MechanismError):
            MultiPokingMechanism(n_pokes=0)

    def test_loose_beta_rejected(self, adult_small):
        single_poke = MultiPokingMechanism(n_pokes=1)
        query = _iceberg(adult_small, 0.1, bins=1)
        with pytest.raises(TranslationError):
            # m * L / (2 beta) <= 1 makes the translation meaningless
            single_poke.translate(query, AccuracySpec(alpha=10, beta=0.9), adult_small.schema)


class TestRun:
    def test_spends_at_most_upper_bound(self, mechanism, adult_small, rng):
        query = _iceberg(adult_small, 0.1)
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        translation = mechanism.translate(query, accuracy, adult_small.schema)
        result = mechanism.run(query, accuracy, adult_small, rng)
        assert result.epsilon_spent <= translation.epsilon_upper + 1e-9

    def test_easy_threshold_stops_after_first_poke(self, mechanism, adult_small, rng):
        """When all counts are far from c, one poke suffices (Example 5.4)."""
        query = _iceberg(adult_small, 2.0)  # threshold far above every count
        accuracy = AccuracySpec(alpha=0.02 * len(adult_small))
        result = mechanism.run(query, accuracy, adult_small, rng)
        assert result.metadata["pokes_used"] == 1
        translation = mechanism.translate(query, accuracy, adult_small.schema)
        assert result.epsilon_spent == pytest.approx(translation.epsilon_lower)

    def test_hard_threshold_costs_more(self, adult_small):
        """A threshold close to many counts needs more pokes on average."""
        mechanism = MultiPokingMechanism(n_pokes=10)
        accuracy = AccuracySpec(alpha=0.02 * len(adult_small))
        rng = np.random.default_rng(3)
        easy_query = _iceberg(adult_small, 0.99)
        counts = easy_query.true_counts(adult_small)
        # pick a threshold equal to one of the mid-range counts: hard to decide
        hard_threshold = float(np.median(counts[counts > 0]))
        hard_query = IcebergCountingQuery(
            histogram_workload("capital_gain", start=0, stop=5000, bins=20),
            threshold=hard_threshold,
            name="icq-hard",
        )
        easy_costs = [
            mechanism.run(easy_query, accuracy, adult_small, rng).epsilon_spent
            for _ in range(5)
        ]
        hard_costs = [
            mechanism.run(hard_query, accuracy, adult_small, rng).epsilon_spent
            for _ in range(5)
        ]
        assert np.median(hard_costs) > np.median(easy_costs)

    def test_answer_is_subset_of_bins(self, mechanism, adult_small, rng):
        query = _iceberg(adult_small, 0.1)
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = mechanism.run(query, accuracy, adult_small, rng)
        assert set(result.value) <= set(query.bin_names())

    def test_noisy_counts_not_exposed(self, mechanism, adult_small, rng):
        query = _iceberg(adult_small, 0.1)
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = mechanism.run(query, accuracy, adult_small, rng)
        assert result.noisy_counts is None

    def test_accuracy_guarantee_statistical(self, adult_small):
        """Mislabelled bins must lie within alpha of the threshold (Thm 5.5)."""
        mechanism = MultiPokingMechanism(n_pokes=5)
        beta = 0.1
        accuracy = AccuracySpec(alpha=0.03 * len(adult_small), beta=beta)
        query = _iceberg(adult_small, 0.05, bins=10)
        truth = query.true_counts(adult_small)
        names = list(query.bin_names())
        threshold = query.threshold
        rng = np.random.default_rng(17)
        trials, failures = 150, 0
        for _ in range(trials):
            reported = set(mechanism.run(query, accuracy, adult_small, rng).value)
            bad = False
            for index, name in enumerate(names):
                if name in reported and truth[index] < threshold - accuracy.alpha:
                    bad = True
                if name not in reported and truth[index] > threshold + accuracy.alpha:
                    bad = True
            failures += bad
        assert failures / trials <= beta * 1.5

    def test_single_poke_mechanism(self, adult_small, rng):
        """m = 1 degenerates to a one-shot threshold test and still works."""
        mechanism = MultiPokingMechanism(n_pokes=1)
        query = _iceberg(adult_small, 0.1)
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        result = mechanism.run(query, accuracy, adult_small, rng)
        assert result.epsilon_spent == pytest.approx(result.epsilon_upper)
