"""Shared fixtures for the test suite.

Fixtures are deliberately small (a few thousand rows at most) so the whole
suite stays fast; statistical tests that need more samples build their own
data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.accuracy import AccuracySpec
from repro.data.adult import generate_adult
from repro.data.citations import generate_citation_pairs, pairs_to_table
from repro.data.nytaxi import generate_nytaxi
from repro.data.schema import Attribute, CategoricalDomain, NumericDomain, Schema
from repro.data.table import Table
from repro.queries.builders import histogram_workload, prefix_workload
from repro.queries.query import (
    IcebergCountingQuery,
    TopKCountingQuery,
    WorkloadCountingQuery,
)


@pytest.fixture(scope="session")
def adult_small() -> Table:
    """A 5,000-row synthetic Adult table shared across the suite."""
    return generate_adult(n_rows=5_000, seed=42)


@pytest.fixture(scope="session")
def nytaxi_small() -> Table:
    """A 10,000-row synthetic NYTaxi table shared across the suite."""
    return generate_nytaxi(n_rows=10_000, seed=42)


@pytest.fixture(scope="session")
def citation_table() -> Table:
    """A 600-pair labelled citation table for the ER tests."""
    return pairs_to_table(generate_citation_pairs(600, seed=7))


@pytest.fixture()
def toy_schema() -> Schema:
    """A tiny schema with one categorical and two numeric attributes."""
    return Schema(
        [
            Attribute("state", CategoricalDomain(["A", "B", "C"])),
            Attribute("age", NumericDomain(0, 100, integral=True)),
            Attribute("income", NumericDomain(0, 10_000)),
        ],
        name="Toy",
    )


@pytest.fixture()
def toy_table(toy_schema: Schema) -> Table:
    """A fixed 12-row table over the toy schema."""
    rows = [
        {"state": "A", "age": 10, "income": 100},
        {"state": "A", "age": 20, "income": 200},
        {"state": "A", "age": 30, "income": 300},
        {"state": "B", "age": 40, "income": 400},
        {"state": "B", "age": 50, "income": 500},
        {"state": "B", "age": 60, "income": 600},
        {"state": "B", "age": 70, "income": 700},
        {"state": "C", "age": 80, "income": 800},
        {"state": "C", "age": 90, "income": 900},
        {"state": "C", "age": 15, "income": 1_000},
        {"state": "C", "age": 25, "income": 1_100},
        {"state": "C", "age": 35, "income": None},
    ]
    return Table.from_rows(toy_schema, rows)


@pytest.fixture()
def accuracy_default(adult_small: Table) -> AccuracySpec:
    """The paper's default accuracy shape: alpha = 0.08|D|, beta = 5e-4."""
    return AccuracySpec(alpha=0.08 * len(adult_small), beta=5e-4)


@pytest.fixture()
def capital_gain_histogram_query() -> WorkloadCountingQuery:
    return WorkloadCountingQuery(
        histogram_workload("capital_gain", start=0, stop=5000, bins=20),
        name="capital-gain-histogram",
    )


@pytest.fixture()
def capital_gain_prefix_query() -> WorkloadCountingQuery:
    return WorkloadCountingQuery(
        prefix_workload("capital_gain", [250.0 * i for i in range(1, 21)]),
        name="capital-gain-prefix",
    )


@pytest.fixture()
def capital_gain_iceberg_query(adult_small: Table) -> IcebergCountingQuery:
    return IcebergCountingQuery(
        histogram_workload("capital_gain", start=0, stop=5000, bins=20),
        threshold=0.1 * len(adult_small),
        name="capital-gain-iceberg",
    )


@pytest.fixture()
def age_topk_query() -> TopKCountingQuery:
    from repro.queries.builders import point_workload

    return TopKCountingQuery(
        point_workload("age", [float(a) for a in range(17, 91)]),
        k=5,
        name="age-top5",
    )


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
