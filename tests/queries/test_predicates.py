"""Tests for the predicate algebra (row and cell evaluation)."""

import numpy as np
import pytest

from repro.core.exceptions import PredicateError
from repro.queries.predicates import (
    And,
    Between,
    Comparison,
    FalsePredicate,
    FunctionPredicate,
    In,
    Interval,
    IsNull,
    Not,
    Or,
    TruePredicate,
)


class TestInterval:
    def test_contains_half_open(self):
        interval = Interval(0, 10)
        assert interval.contains(0)
        assert interval.contains(5)
        assert not interval.contains(10)

    def test_contains_closed(self):
        interval = Interval(0, 10, high_inclusive=True)
        assert interval.contains(10)

    def test_point_interval(self):
        point = Interval(5, 5, high_inclusive=True)
        assert point.is_point
        assert point.representative() == 5

    def test_empty_interval_rejected(self):
        with pytest.raises(PredicateError):
            Interval(5, 3)

    def test_representative_inside(self):
        interval = Interval(2, 8)
        assert interval.contains(interval.representative())


class TestComparison:
    def test_numeric_operators(self, toy_table):
        assert Comparison("age", ">", 50).evaluate(toy_table).sum() == 4
        assert Comparison("age", ">=", 50).evaluate(toy_table).sum() == 5
        assert Comparison("age", "<", 20).evaluate(toy_table).sum() == 2
        assert Comparison("age", "==", 40).evaluate(toy_table).sum() == 1
        assert Comparison("age", "!=", 40).evaluate(toy_table).sum() == 11

    def test_categorical_equality(self, toy_table):
        assert Comparison("state", "==", "B").evaluate(toy_table).sum() == 4
        assert Comparison("state", "!=", "B").evaluate(toy_table).sum() == 8

    def test_categorical_inequality_rejected(self, toy_table):
        with pytest.raises(PredicateError):
            Comparison("state", "<", "B").evaluate(toy_table)

    def test_null_never_matches(self, toy_table):
        # income has one NULL row; comparisons must exclude it on both sides
        above = Comparison("income", ">", 0).evaluate(toy_table).sum()
        below = Comparison("income", "<=", 10_000).evaluate(toy_table).sum()
        assert above == 11 and below == 11

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            Comparison("age", "~", 5)

    def test_cell_evaluation_numeric(self):
        pred = Comparison("age", ">", 50)
        assert pred.evaluate_cell({"age": Interval(60, 70)})
        assert not pred.evaluate_cell({"age": Interval(10, 20)})
        assert not pred.evaluate_cell({"age": None})

    def test_cell_evaluation_categorical(self):
        pred = Comparison("state", "==", "A")
        assert pred.evaluate_cell({"state": "A"})
        assert not pred.evaluate_cell({"state": "B"})

    def test_describe(self):
        assert Comparison("age", "==", 5).describe() == "age = 5"
        assert "'CA'" in Comparison("state", "==", "CA").describe()

    def test_attributes(self):
        assert Comparison("age", ">", 1).attributes() == frozenset({"age"})


class TestBetween:
    def test_half_open_semantics(self, toy_table):
        # ages in table: 10,20,30,40,50,60,70,80,90,15,25,35 -> [20,40) = 20,25,30,35
        assert Between("age", 20, 40).evaluate(toy_table).sum() == 4

    def test_inclusive_bounds(self, toy_table):
        assert Between("age", 20, 40, high_inclusive=True).evaluate(toy_table).sum() == 5

    def test_null_excluded(self, toy_table):
        assert Between("income", 0, 20_000).evaluate(toy_table).sum() == 11

    def test_empty_range_rejected(self):
        with pytest.raises(PredicateError):
            Between("age", 10, 5)

    def test_cell_evaluation(self):
        pred = Between("age", 20, 40)
        assert pred.evaluate_cell({"age": Interval(25, 30)})
        assert not pred.evaluate_cell({"age": Interval(50, 60)})


class TestInAndNull:
    def test_in(self, toy_table):
        assert In("state", ["A", "C"]).evaluate(toy_table).sum() == 8

    def test_in_empty_rejected(self):
        with pytest.raises(PredicateError):
            In("state", [])

    def test_in_cell(self):
        pred = In("state", ["A", "B"])
        assert pred.evaluate_cell({"state": "A"})
        assert not pred.evaluate_cell({"state": "C"})
        assert not pred.evaluate_cell({"state": None})

    def test_is_null(self, toy_table):
        assert IsNull("income").evaluate(toy_table).sum() == 1
        assert IsNull("income", negated=True).evaluate(toy_table).sum() == 11

    def test_is_null_cell(self):
        assert IsNull("x").evaluate_cell({"x": None})
        assert not IsNull("x").evaluate_cell({"x": "v"})
        assert IsNull("x", negated=True).evaluate_cell({"x": "v"})


class TestBooleanCombinators:
    def test_and(self, toy_table):
        pred = And([Comparison("state", "==", "C"), Comparison("age", ">", 50)])
        assert pred.evaluate(toy_table).sum() == 2  # ages 80, 90 in state C

    def test_or(self, toy_table):
        pred = Or([Comparison("state", "==", "A"), Comparison("age", ">", 80)])
        assert pred.evaluate(toy_table).sum() == 4

    def test_not(self, toy_table):
        pred = Not(Comparison("state", "==", "A"))
        assert pred.evaluate(toy_table).sum() == 9

    def test_operator_sugar(self, toy_table):
        pred = Comparison("state", "==", "A") | Comparison("state", "==", "B")
        assert pred.evaluate(toy_table).sum() == 7
        pred = Comparison("state", "==", "C") & Comparison("age", "<", 30)
        assert pred.evaluate(toy_table).sum() == 2
        assert (~TruePredicate()).evaluate(toy_table).sum() == 0

    def test_flattening(self):
        nested = And([And([Comparison("a", ">", 1), Comparison("b", ">", 2)]), Comparison("c", ">", 3)])
        assert len(nested.children) == 3

    def test_empty_children_rejected(self):
        with pytest.raises(PredicateError):
            And([])
        with pytest.raises(PredicateError):
            Or([])

    def test_true_false(self, toy_table):
        assert TruePredicate().evaluate(toy_table).all()
        assert not FalsePredicate().evaluate(toy_table).any()
        assert TruePredicate().evaluate_cell({})
        assert not FalsePredicate().evaluate_cell({})

    def test_attributes_union(self):
        pred = And([Comparison("a", ">", 1), Or([Comparison("b", "==", "x"), IsNull("c")])])
        assert pred.attributes() == frozenset({"a", "b", "c"})

    def test_atomic_comparisons_collected(self):
        pred = Not(And([Comparison("a", ">", 1), Between("b", 0, 5)]))
        assert len(pred.atomic_comparisons()) == 2

    def test_cell_evaluation_composed(self):
        pred = And([Comparison("age", ">", 10), Not(Comparison("state", "==", "A"))])
        assert pred.evaluate_cell({"age": Interval(20, 30), "state": "B"})
        assert not pred.evaluate_cell({"age": Interval(20, 30), "state": "A"})

    def test_supports_domain_analysis_propagates(self):
        opaque = FunctionPredicate("f", lambda t: np.zeros(len(t), dtype=bool))
        assert not And([Comparison("a", ">", 1), opaque]).supports_domain_analysis
        assert And([Comparison("a", ">", 1)]).supports_domain_analysis


class TestFunctionPredicate:
    def test_evaluates_via_callable(self, toy_table):
        pred = FunctionPredicate("even-rows", lambda t: np.arange(len(t)) % 2 == 0)
        assert pred.evaluate(toy_table).sum() == 6

    def test_wrong_shape_rejected(self, toy_table):
        pred = FunctionPredicate("bad", lambda t: np.zeros(3, dtype=bool))
        with pytest.raises(PredicateError):
            pred.evaluate(toy_table)

    def test_cell_evaluation_rejected(self):
        pred = FunctionPredicate("f", lambda t: np.zeros(len(t), dtype=bool))
        with pytest.raises(PredicateError):
            pred.evaluate_cell({})

    def test_not_callable_rejected(self):
        with pytest.raises(PredicateError):
            FunctionPredicate("f", "not-callable")  # type: ignore[arg-type]

    def test_identity_equality(self):
        fn = lambda t: np.zeros(len(t), dtype=bool)  # noqa: E731
        a, b = FunctionPredicate("f", fn), FunctionPredicate("f", fn)
        assert a == a
        assert a != b
