"""Tests for workloads, domain partitioning and the matrix representation."""

import numpy as np
import pytest

from repro.core.exceptions import QueryError
from repro.data.schema import Attribute, CategoricalDomain, NumericDomain, Schema
from repro.data.table import Table
from repro.queries.builders import (
    cumulative_histogram_workload,
    histogram_workload,
    marginal_workload,
    point_workload,
    prefix_workload,
)
from repro.queries.predicates import Comparison, FunctionPredicate, IsNull, Or
from repro.queries.workload import Workload, WorkloadMatrix


class TestWorkloadBasics:
    def test_size_and_iteration(self):
        workload = point_workload("state", ["A", "B", "C"])
        assert workload.size == len(workload) == 3
        assert len(list(workload)) == 3

    def test_names_default_to_describe(self):
        workload = Workload([Comparison("age", ">", 5)])
        assert workload.names == ("age > 5",)

    def test_custom_names(self):
        workload = Workload([Comparison("age", ">", 5)], ["older"])
        assert workload.name_of(0) == "older"
        assert workload.index_of("older") == 0

    def test_unknown_name(self):
        workload = Workload([Comparison("age", ">", 5)])
        with pytest.raises(QueryError):
            workload.index_of("nope")

    def test_mismatched_names_rejected(self):
        with pytest.raises(QueryError):
            Workload([Comparison("age", ">", 5)], ["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Workload([])

    def test_attributes(self):
        workload = Workload(
            [Comparison("age", ">", 5), Comparison("state", "==", "A")]
        )
        assert workload.attributes() == frozenset({"age", "state"})

    def test_evaluate_shape(self, toy_table):
        workload = point_workload("state", ["A", "B", "C"])
        matrix = workload.evaluate(toy_table)
        assert matrix.shape == (len(toy_table), 3)

    def test_true_answers(self, toy_table):
        workload = point_workload("state", ["A", "B", "C"])
        assert list(workload.true_answers(toy_table)) == [3, 4, 5]


class TestExactDomainAnalysis:
    def test_histogram_sensitivity_is_one(self, toy_schema):
        workload = histogram_workload("age", start=0, stop=100, bins=10)
        analysis = workload.analyze(toy_schema)
        assert analysis.exact
        assert analysis.sensitivity == 1.0
        assert analysis.n_partitions == 10

    def test_prefix_sensitivity_equals_size(self, toy_schema):
        workload = prefix_workload("age", [10, 20, 30, 40, 50])
        analysis = workload.analyze(toy_schema)
        assert analysis.sensitivity == 5.0

    def test_cumulative_histogram_sensitivity(self, toy_schema):
        workload = cumulative_histogram_workload("age", start=0, stop=100, bins=8)
        assert workload.analyze(toy_schema).sensitivity == 8.0

    def test_point_workload_sensitivity(self, toy_schema):
        workload = point_workload("state", schema=toy_schema)
        assert workload.analyze(toy_schema).sensitivity == 1.0

    def test_marginal_sensitivity(self, toy_schema):
        workload = marginal_workload(
            histogram_workload("age", start=0, stop=100, bins=4),
            point_workload("state", ["A", "B", "C"]),
        )
        assert workload.analyze(toy_schema).sensitivity == 1.0

    def test_overlapping_ranges_sensitivity(self, toy_schema):
        workload = Workload(
            [Comparison("age", ">", 10), Comparison("age", ">", 20), Comparison("age", ">", 30)]
        )
        # a tuple with age > 30 satisfies all three predicates
        assert workload.analyze(toy_schema).sensitivity == 3.0

    def test_null_predicates(self, toy_schema):
        workload = Workload([Or([IsNull("income"), IsNull("age")]), IsNull("income")])
        analysis = workload.analyze(toy_schema)
        assert analysis.sensitivity == 2.0

    def test_matrix_reproduces_true_answers(self, toy_schema, toy_table):
        workload = prefix_workload("age", [20, 40, 60, 80, 100])
        analysis = workload.analyze(toy_schema)
        histogram = analysis.partition_histogram(toy_table)
        reconstructed = analysis.matrix @ histogram
        assert np.allclose(reconstructed, workload.true_answers(toy_table))

    def test_marginal_matrix_reproduces_true_answers(self, toy_schema, toy_table):
        workload = marginal_workload(
            histogram_workload("age", start=0, stop=100, bins=5),
            point_workload("state", ["A", "B", "C"]),
        )
        analysis = workload.analyze(toy_schema)
        histogram = analysis.partition_histogram(toy_table)
        assert np.allclose(
            analysis.matrix @ histogram, workload.true_answers(toy_table)
        )

    def test_histogram_cache_reused(self, toy_schema, toy_table):
        workload = histogram_workload("age", start=0, stop=100, bins=5)
        analysis = workload.analyze(toy_schema)
        first = analysis.partition_histogram(toy_table)
        second = analysis.partition_histogram(toy_table)
        assert first is second

    def test_out_of_domain_value_raises(self):
        schema = Schema(
            [Attribute("state", CategoricalDomain(["A", "B"])),
             Attribute("age", NumericDomain(0, 100))]
        )
        table = Table.from_rows(schema, [{"state": "Z", "age": 5}])
        workload = Workload(
            [Comparison("state", "==", "A"), Or([Comparison("state", "==", "Z"), Comparison("age", ">", 1)])]
        )
        # "Z" is included as an extra atom because the workload references it,
        # so the analysis still succeeds and covers the row.
        analysis = workload.analyze(schema)
        assert analysis.partition_histogram(table).sum() == 1

    def test_matrix_shape(self, toy_schema):
        workload = histogram_workload("age", start=0, stop=100, bins=10)
        analysis = workload.analyze(toy_schema)
        assert analysis.shape == (10, analysis.n_partitions)
        assert analysis.matrix.shape == analysis.shape


class TestStructuralAnalysis:
    def _opaque_workload(self, n=3):
        predicates = [
            FunctionPredicate(f"f{i}", lambda t, i=i: np.arange(len(t)) % (i + 2) == 0)
            for i in range(n)
        ]
        return Workload(predicates)

    def test_opaque_predicates_force_structural(self, toy_schema):
        workload = self._opaque_workload()
        analysis = workload.analyze(toy_schema)
        assert not analysis.exact
        assert analysis.sensitivity == 3.0

    def test_disjoint_hint(self, toy_schema):
        analysis = self._opaque_workload().analyze(toy_schema, disjoint=True)
        assert analysis.sensitivity == 1.0

    def test_explicit_sensitivity(self, toy_schema):
        analysis = self._opaque_workload().analyze(toy_schema, sensitivity=2.5)
        assert analysis.sensitivity == 2.5

    def test_invalid_sensitivity_rejected(self, toy_schema):
        with pytest.raises(QueryError):
            self._opaque_workload().analyze(toy_schema, sensitivity=-1)

    def test_structural_hint_overrides_exact(self, toy_schema):
        workload = histogram_workload("age", start=0, stop=100, bins=5)
        analysis = workload.analyze(toy_schema, disjoint=True)
        assert not analysis.exact
        assert analysis.sensitivity == 1.0

    def test_structural_true_answers_match(self, toy_table):
        workload = self._opaque_workload()
        analysis = workload.analyze(None)
        histogram = analysis.partition_histogram(toy_table)
        assert np.allclose(
            analysis.matrix @ histogram, workload.true_answers(toy_table)
        )

    def test_without_schema_falls_back_to_structural(self):
        workload = histogram_workload("age", start=0, stop=100, bins=5)
        analysis = workload.analyze(None)
        assert not analysis.exact
        assert analysis.sensitivity == 5.0  # conservative: L


class TestWorkloadMatrixValidation:
    def test_row_mismatch_rejected(self, toy_schema):
        workload = point_workload("state", ["A", "B"])
        with pytest.raises(QueryError):
            WorkloadMatrix(workload, np.eye(3), [None] * 3, exact=False)  # type: ignore[list-item]

    def test_sensitivity_is_max_column_norm(self, toy_schema):
        workload = prefix_workload("age", [10, 20, 30])
        analysis = workload.analyze(toy_schema)
        assert analysis.sensitivity == np.abs(analysis.matrix).sum(axis=0).max()
