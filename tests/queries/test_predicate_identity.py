"""Declared stable identity for opaque predicates, and the bare-predicate bypass.

Two contracts are pinned here:

* a :class:`~repro.queries.predicates.FunctionPredicate` constructed with
  ``version=`` compares, hashes and canonicalises by ``(name, version,
  attributes)`` -- so re-created instances hit every in-memory memo and the
  artifact-store disk tier persists translation lists and Monte-Carlo
  searches derived from it (the ER screening-loop scenario);
* a bare ``FunctionPredicate`` (no declared version) keeps today's
  conservative behaviour: identity-based equality, no process-stable content
  form, and therefore a fully disabled disk tier.  This is the regression
  guard for the "opaque predicates bypass the store" invariant.
"""

import numpy as np
import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.engine import APExEngine
from repro.core.exceptions import PredicateError
from repro.data.schema import Attribute, CategoricalDomain, NumericDomain, Schema
from repro.data.table import Table
from repro.mechanisms.registry import default_registry
from repro.mechanisms.strategy_mechanism import reset_search_stats, search_stats
from repro.queries.predicates import FunctionPredicate
from repro.queries.query import WorkloadCountingQuery
from repro.queries.workload import Workload, clear_matrix_cache
from repro.store import ArtifactStore
from repro.store.fingerprint import canonical_form, stable_digest


def _mask_every(k):
    return lambda table: np.arange(len(table)) % k == 0


def make_table(n_rows: int = 200) -> Table:
    schema = Schema(
        [
            Attribute("score", NumericDomain(0.0, 1.0)),
            Attribute("label", CategoricalDomain(("match", "nonmatch"))),
        ],
        name="Pairs",
    )
    rng = np.random.default_rng(11)
    return Table(
        schema,
        {
            "score": rng.uniform(0.0, 1.0, n_rows),
            "label": np.array(
                ["match" if v else "nonmatch" for v in rng.integers(0, 2, n_rows)],
                dtype=object,
            ),
        },
    )


def named_workload(version=1) -> Workload:
    predicates = [
        FunctionPredicate(
            f"screen-{i}",
            _mask_every(i + 2),
            attributes=("score",),
            version=version,
        )
        for i in range(4)
    ]
    return Workload(predicates)


class TestDeclaredIdentity:
    def test_equal_by_name_version_attributes(self):
        a = FunctionPredicate("p", _mask_every(2), attributes=("score",), version=1)
        b = FunctionPredicate("p", _mask_every(3), attributes=("score",), version=1)
        assert a == b and hash(a) == hash(b)

    def test_version_name_and_attributes_all_join_the_identity(self):
        base = FunctionPredicate("p", _mask_every(2), attributes=("score",), version=1)
        assert base != FunctionPredicate("p", _mask_every(2), attributes=("score",), version=2)
        assert base != FunctionPredicate("q", _mask_every(2), attributes=("score",), version=1)
        assert base != FunctionPredicate("p", _mask_every(2), attributes=(), version=1)

    def test_declared_predicates_canonicalise(self):
        a = FunctionPredicate("p", _mask_every(2), attributes=("score",), version=1)
        b = FunctionPredicate("p", _mask_every(5), attributes=("score",), version=1)
        digest = stable_digest(("translation", (a,)))
        assert digest is not None
        assert digest == stable_digest(("translation", (b,)))
        bumped = FunctionPredicate("p", _mask_every(2), attributes=("score",), version=2)
        assert stable_digest(("translation", (bumped,))) != digest

    def test_named_predicate_never_equals_bare(self):
        fn = _mask_every(2)
        named = FunctionPredicate("p", fn, attributes=("score",), version=1)
        bare = FunctionPredicate("p", fn, attributes=("score",))
        assert named != bare and bare != named

    def test_version_must_be_str_or_int(self):
        with pytest.raises(PredicateError):
            FunctionPredicate("p", _mask_every(2), version=1.5)  # type: ignore[arg-type]

    def test_equal_identity_shares_cached_masks(self):
        # Declaring a version is a *promise* that (name, version, attributes)
        # determines the mask; the versioned mask LRU takes the promise at
        # its word, so a same-identity instance with a different callable is
        # served the cached mask.  This is the documented contract, pinned.
        table = make_table(64)
        a = FunctionPredicate("p", _mask_every(2), attributes=("score",), version=1)
        b = FunctionPredicate("p", _mask_every(3), attributes=("score",), version=1)
        mask_a = a.evaluate(table)
        mask_b = b.evaluate(table)
        assert np.array_equal(mask_a, mask_b)


class TestBareOpaqueRegression:
    def test_bare_predicates_keep_identity_semantics(self):
        fn = _mask_every(2)
        a = FunctionPredicate("f", fn)
        b = FunctionPredicate("f", fn)
        assert a != b and a == a
        assert hash(a) != hash(b) or a is b

    def test_bare_predicates_have_no_stable_digest(self):
        bare = FunctionPredicate("f", _mask_every(2))
        assert stable_digest(("translation", (bare,))) is None
        with pytest.raises(TypeError):
            canonical_form(bare)

    def test_bare_workload_bypasses_the_disk_tier(self, tmp_path):
        clear_matrix_cache()
        reset_search_stats()
        table = make_table()
        store = ArtifactStore(str(tmp_path))
        predicates = [
            FunctionPredicate(f"opaque-{i}", _mask_every(i + 2), attributes=("score",))
            for i in range(4)
        ]

        def preview(preds):
            engine = APExEngine(
                table,
                budget=10.0,
                registry=default_registry(mc_samples=120),
                seed=3,
                store=store,
            )
            query = WorkloadCountingQuery(Workload(list(preds)), name="bare", disjoint=True)
            accuracy = AccuracySpec(alpha=0.2 * len(table), beta=1e-3)
            engine.preview_cost(query, accuracy)
            return engine.cache_stats()

        stats_cold = preview(predicates)
        assert stats_cold["translations"]["built"] == 1
        assert stats_cold["translations"]["disk_writes"] == 0
        assert search_stats()["disk_writes"] == 0

        # A second engine (fresh translator) over the same store must rebuild:
        # nothing was persisted, and nothing is loadable.
        stats_again = preview(
            [
                FunctionPredicate(f"opaque-{i}", _mask_every(i + 2), attributes=("score",))
                for i in range(4)
            ]
        )
        assert stats_again["translations"]["built"] == 1
        assert stats_again["translations"]["disk_hits"] == 0
        assert search_stats()["disk_hits"] == 0


class TestNamedDiskTier:
    def test_named_workload_reaches_the_disk_tier(self, tmp_path):
        clear_matrix_cache()
        reset_search_stats()
        table = make_table()
        store = ArtifactStore(str(tmp_path))
        accuracy = AccuracySpec(alpha=0.2 * len(table), beta=1e-3)

        def preview(engine):
            query = WorkloadCountingQuery(
                named_workload(), name="screen", disjoint=True
            )
            return engine.preview_cost(query, accuracy)

        cold_engine = APExEngine(
            table,
            budget=10.0,
            registry=default_registry(mc_samples=120),
            seed=3,
            store=store,
        )
        cold_costs = preview(cold_engine)
        cold_stats = cold_engine.cache_stats()
        assert cold_stats["translations"]["built"] == 1
        assert cold_stats["translations"]["disk_writes"] >= 1
        assert search_stats()["disk_writes"] >= 1

        # A fresh engine (fresh translator, re-created predicate instances,
        # cleared process memos) must answer entirely from disk.
        clear_matrix_cache()
        searches_before = search_stats()["searches"]
        warm_engine = APExEngine(
            table,
            budget=10.0,
            registry=default_registry(mc_samples=120),
            seed=3,
            store=store,
        )
        warm_costs = preview(warm_engine)
        warm_stats = warm_engine.cache_stats()
        assert warm_stats["translations"]["built"] == 0
        assert warm_stats["translations"]["disk_hits"] == 1
        assert search_stats()["searches"] == searches_before
        assert warm_costs == cold_costs
