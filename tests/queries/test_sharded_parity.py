"""Sharded/parallel evaluation matches the single-shard reference semantics.

Parallelism must never change results: shard-parallel predicate masks and
chunk-parallel domain analysis are required to be bit-identical to the
row-at-a-time / cell-at-a-time reference implementations in
:mod:`repro.queries.reference`, including SQL NULL handling and
inclusive/exclusive interval bounds.
"""

import numpy as np
import pytest

from repro.core.parallel import (
    ParallelExecutor,
    get_default_executor,
    set_default_executor,
)
from repro.data.schema import (
    Attribute,
    CategoricalDomain,
    NumericDomain,
    Schema,
)
from repro.data.table import Table
from repro.queries.predicates import (
    And,
    Between,
    Comparison,
    In,
    IsNull,
    Not,
    Or,
    evaluate_sharded,
)
from repro.queries.reference import reference_domain_matrix, reference_mask
from repro.queries.workload import Workload, WorkloadMatrix


def parity_schema() -> Schema:
    return Schema(
        [
            Attribute("state", CategoricalDomain(("CA", "NY", "TX", "WA")), nullable=True),
            Attribute("kind", CategoricalDomain(("gold", "silver")), nullable=True),
            Attribute("score", NumericDomain(0, 100), nullable=True),
        ],
        name="ShardParity",
    )


def random_rows(rng: np.random.Generator, n: int) -> list[dict]:
    states = ("CA", "NY", "TX", "WA")
    kinds = ("gold", "silver")
    rows = []
    for _ in range(n):
        rows.append(
            {
                "state": None if rng.random() < 0.15 else states[rng.integers(4)],
                "kind": None if rng.random() < 0.1 else kinds[rng.integers(2)],
                "score": None if rng.random() < 0.2 else float(rng.integers(0, 101)),
            }
        )
    return rows


def sharded_and_flat(rng: np.random.Generator, shard_sizes=(40, 25, 35)):
    """One multi-shard table plus its single-shard equivalent."""
    schema = parity_schema()
    chunks = [random_rows(rng, n) for n in shard_sizes]
    table = Table.from_rows(schema, chunks[0])
    for chunk in chunks[1:]:
        table.append_rows(chunk)
    flat = Table.from_rows(schema, [row for chunk in chunks for row in chunk])
    return table, flat


EDGE_PREDICATES = [
    Comparison("state", "==", "CA"),
    Comparison("state", "!=", "CA"),
    In("state", ["NY", "TX"]),
    IsNull("score"),
    IsNull("score", negated=True),
    Between("score", 10.0, 50.0, low_inclusive=True, high_inclusive=True),
    Between("score", 10.0, 50.0, low_inclusive=False, high_inclusive=False),
    Comparison("score", ">=", 50.0),
    Comparison("score", ">", 50.0),
    Comparison("score", "==", 50.0),
    And([Comparison("kind", "==", "gold"), Between("score", 0.0, 25.0)]),
    Or([IsNull("state"), Comparison("score", "<", 5.0)]),
    Not(Or([Comparison("state", "==", "TX"), IsNull("kind")])),
]


class TestShardedMaskParity:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_edge_predicates_bit_identical(self, workers):
        rng = np.random.default_rng(42)
        table, flat = sharded_and_flat(rng)
        with ParallelExecutor(workers) as executor:
            for predicate in EDGE_PREDICATES:
                expected = reference_mask(predicate, flat)
                actual = evaluate_sharded(predicate, table, executor)
                assert np.array_equal(expected, actual), predicate.describe()

    def test_workload_evaluate_matches_flat_membership(self):
        rng = np.random.default_rng(7)
        table, flat = sharded_and_flat(rng)
        workload = Workload(EDGE_PREDICATES)
        with ParallelExecutor(3) as executor:
            sharded = workload.evaluate(table, executor)
        assert np.array_equal(sharded, workload.evaluate(flat))
        assert np.array_equal(
            workload.true_answers(table), workload.true_answers(flat)
        )

    def test_sharded_evaluation_after_append_includes_new_rows(self):
        rng = np.random.default_rng(9)
        table, flat = sharded_and_flat(rng)
        workload = Workload(EDGE_PREDICATES)
        with ParallelExecutor(2) as executor:
            workload.evaluate(table, executor)  # warm every shard view
            extra = random_rows(rng, 30)
            table.append_rows(extra)
            grown_flat = Table.from_rows(
                parity_schema(), flat.to_rows() + extra
            )
            sharded = workload.evaluate(table, executor)
        expected = np.column_stack(
            [reference_mask(p, grown_flat) for p in workload.predicates]
        )
        assert np.array_equal(sharded, expected)

    def test_non_row_local_function_predicates_are_not_split(self):
        """An opaque callable may compute cross-row state (here: a mean), so
        shard-splitting it would silently change the result; it must be
        evaluated over the whole table."""
        from repro.queries.predicates import FunctionPredicate

        rng = np.random.default_rng(13)
        table, flat = sharded_and_flat(rng)

        def above_global_mean(t):
            scores = t.numeric_values("score")
            return scores > np.nanmean(scores)

        predicate = FunctionPredicate(
            "score > mean(score)", above_global_mean, attributes=("score",)
        )
        expected = predicate.evaluate(flat)
        with ParallelExecutor(4) as executor:
            sharded = evaluate_sharded(predicate, table, executor)
            in_workload = Workload([predicate, Comparison("state", "==", "CA")]).evaluate(
                table, executor
            )
        assert np.array_equal(sharded, expected)
        assert np.array_equal(in_workload[:, 0], expected)

    def test_straddling_mutation_cannot_reach_a_pinned_evaluation(self):
        """A mutation landing during a mask evaluation is invisible to it:
        evaluation pins the table's snapshot up front, computes entirely
        over the pinned shards, and caches unconditionally under the pinned
        token -- a snapshot-scoped evaluation is never discarded."""
        from repro.core.exceptions import SnapshotError
        from repro.queries.predicates import FunctionPredicate

        rng = np.random.default_rng(17)
        table, _ = sharded_and_flat(rng)
        n_before = len(table)
        appended = []

        def append_mid_evaluation(t):
            assert t.is_snapshot  # evaluation always sees the pinned view
            with pytest.raises(SnapshotError):
                t.append_rows(random_rows(rng, 10))  # snapshots are immutable
            if not appended:  # mutate the *live* table mid-evaluation
                appended.append(table.append_rows(random_rows(rng, 10)))
            return np.ones(len(t), dtype=bool)

        predicate = FunctionPredicate("straddler", append_mid_evaluation)
        v0 = table.version_token
        snapshot = table.snapshot()
        mask = predicate.evaluate(table)
        # The mask describes exactly the pinned (pre-append) version...
        assert len(mask) == n_before
        assert table.version_token != v0
        assert len(table) == n_before + 10
        # ...and it IS cached under the pinned token (admission is
        # unconditional for snapshot-scoped evaluations), while the new
        # version cannot serve it.
        assert snapshot.cached_mask(predicate, v0) is mask
        assert table.cached_mask(predicate) is None
        # A fresh evaluation pins the grown version and caches under it.
        again = predicate.evaluate(table)
        assert len(again) == n_before + 10
        assert table.cached_mask(predicate) is again

    def test_default_executor_is_picked_up(self):
        rng = np.random.default_rng(11)
        table, flat = sharded_and_flat(rng)
        predicate = Between("score", 20.0, 80.0)
        executor = ParallelExecutor(2)
        previous = set_default_executor(executor)
        try:
            assert get_default_executor() is executor
            actual = evaluate_sharded(predicate, table)
            assert np.array_equal(actual, reference_mask(predicate, flat))
        finally:
            set_default_executor(previous)
            executor.shutdown()


class TestParallelDomainAnalysisParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_workloads_bit_identical(self, seed):
        from tests.queries.test_vectorized_parity import (
            parity_schema as reference_schema,
            random_predicate,
        )

        rng = np.random.default_rng(500 + seed)
        schema = reference_schema()
        workload = Workload(
            [random_predicate(rng) for _ in range(int(rng.integers(3, 9)))]
        )
        expected_matrix, expected_partitions = reference_domain_matrix(
            workload, schema
        )
        with ParallelExecutor(4) as executor:
            analysis = WorkloadMatrix.from_domain_analysis(
                workload, schema, executor=executor
            )
        assert np.array_equal(analysis.matrix, expected_matrix)
        assert [(p.signature, p.description) for p in analysis.partitions] == [
            (p.signature, p.description) for p in expected_partitions
        ]

    def test_forced_multi_chunk_parallel_parity(self, monkeypatch):
        """Tiny chunks + a pool: cross-chunk min-index merge must reproduce
        the sequential first-occurrence descriptions exactly."""
        import repro.queries.workload as workload_module

        from tests.queries.test_vectorized_parity import (
            parity_schema as reference_schema,
            random_predicate,
        )

        monkeypatch.setattr(workload_module, "_CELL_BUDGET", 1)
        monkeypatch.setattr(workload_module, "_MIN_CHUNK_CELLS", 5)
        rng = np.random.default_rng(321)
        schema = reference_schema()
        workload = Workload([random_predicate(rng) for _ in range(8)])
        expected_matrix, expected_partitions = reference_domain_matrix(
            workload, schema
        )
        with ParallelExecutor(4) as executor:
            analysis = WorkloadMatrix.from_domain_analysis(
                workload, schema, executor=executor
            )
        assert np.array_equal(analysis.matrix, expected_matrix)
        assert [(p.signature, p.description) for p in analysis.partitions] == [
            (p.signature, p.description) for p in expected_partitions
        ]


class TestParallelExecutor:
    def test_map_preserves_order(self):
        with ParallelExecutor(4) as executor:
            assert executor.map(lambda x: x * x, range(20)) == [
                x * x for x in range(20)
            ]

    def test_single_worker_runs_inline(self):
        import threading

        with ParallelExecutor(1) as executor:
            idents = executor.map(lambda _: threading.get_ident(), range(5))
        assert set(idents) == {threading.get_ident()}

    def test_exceptions_propagate(self):
        def boom(x):
            if x == 3:
                raise ValueError("boom")
            return x

        with ParallelExecutor(4) as executor:
            with pytest.raises(ValueError, match="boom"):
                executor.map(boom, range(8))

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)

    def test_shutdown_is_idempotent(self):
        executor = ParallelExecutor(2)
        executor.map(lambda x: x, range(4))
        executor.shutdown()
        executor.shutdown()
