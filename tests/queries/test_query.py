"""Tests for the three query types."""

import numpy as np
import pytest

from repro.core.exceptions import QueryError
from repro.queries.builders import histogram_workload, point_workload, prefix_workload
from repro.queries.query import (
    IcebergCountingQuery,
    QueryKind,
    TopKCountingQuery,
    WorkloadCountingQuery,
)
from repro.queries.workload import Workload


class TestWorkloadCountingQuery:
    def test_kind_and_size(self):
        query = WorkloadCountingQuery(point_workload("state", ["A", "B"]))
        assert query.kind is QueryKind.WCQ
        assert query.workload_size == 2

    def test_requires_workload(self):
        with pytest.raises(QueryError):
            WorkloadCountingQuery("not a workload")  # type: ignore[arg-type]

    def test_true_answer(self, toy_table):
        query = WorkloadCountingQuery(point_workload("state", ["A", "B", "C"]))
        assert list(query.true_answer(toy_table)) == [3, 4, 5]

    def test_true_counts_cached_per_table(self, toy_table):
        query = WorkloadCountingQuery(point_workload("state", ["A", "B", "C"]))
        first = query.true_counts(toy_table)
        second = query.true_counts(toy_table)
        assert first is second

    def test_sensitivity_uses_schema(self, toy_table, toy_schema):
        query = WorkloadCountingQuery(prefix_workload("age", [20, 40, 60]))
        assert query.sensitivity(toy_schema) == 3.0

    def test_workload_matrix_cached(self, toy_schema):
        query = WorkloadCountingQuery(histogram_workload("age", start=0, stop=100, bins=4))
        assert query.workload_matrix(toy_schema) is query.workload_matrix(toy_schema)

    def test_bin_names(self):
        query = WorkloadCountingQuery(point_workload("state", ["A", "B"]))
        assert query.bin_names() == ("state = A", "state = B")


class TestIcebergCountingQuery:
    def test_threshold_validation(self):
        with pytest.raises(QueryError):
            IcebergCountingQuery(point_workload("state", ["A"]), threshold=float("inf"))

    def test_true_answer(self, toy_table):
        query = IcebergCountingQuery(point_workload("state", ["A", "B", "C"]), threshold=3.5)
        assert query.true_answer(toy_table) == ["state = B", "state = C"]

    def test_strictly_greater(self, toy_table):
        query = IcebergCountingQuery(point_workload("state", ["A", "B", "C"]), threshold=4)
        assert query.true_answer(toy_table) == ["state = C"]

    def test_select_by_counts(self):
        query = IcebergCountingQuery(point_workload("state", ["A", "B", "C"]), threshold=10)
        assert query.select_by_counts([5, 15, 25]) == ["state = B", "state = C"]

    def test_kind(self):
        query = IcebergCountingQuery(point_workload("state", ["A"]), threshold=1)
        assert query.kind is QueryKind.ICQ


class TestTopKCountingQuery:
    def test_k_validation(self):
        workload = point_workload("state", ["A", "B"])
        with pytest.raises(QueryError):
            TopKCountingQuery(workload, k=0)
        with pytest.raises(QueryError):
            TopKCountingQuery(workload, k=3)
        with pytest.raises(QueryError):
            TopKCountingQuery(workload, k=1.5)  # type: ignore[arg-type]

    def test_true_answer_order(self, toy_table):
        query = TopKCountingQuery(point_workload("state", ["A", "B", "C"]), k=2)
        assert query.true_answer(toy_table) == ["state = C", "state = B"]

    def test_select_by_counts_requires_full_vector(self):
        query = TopKCountingQuery(point_workload("state", ["A", "B", "C"]), k=1)
        with pytest.raises(QueryError):
            query.select_by_counts([1.0, 2.0])

    def test_kth_largest(self, toy_table):
        query = TopKCountingQuery(point_workload("state", ["A", "B", "C"]), k=2)
        assert query.kth_largest_count(toy_table) == 4.0

    def test_stable_tie_breaking(self):
        query = TopKCountingQuery(point_workload("state", ["A", "B", "C"]), k=2)
        assert query.select_by_counts(np.array([5.0, 5.0, 1.0])) == ["state = A", "state = B"]

    def test_kind(self):
        query = TopKCountingQuery(point_workload("state", ["A", "B"]), k=1)
        assert query.kind is QueryKind.TCQ


class TestSensitivityOverrides:
    def test_explicit_sensitivity_respected(self, toy_schema):
        workload = Workload(
            [point_workload("state", ["A"]).predicates[0]]
        )
        query = WorkloadCountingQuery(workload, sensitivity=7.0)
        assert query.sensitivity(toy_schema) == 7.0

    def test_disjoint_flag(self, toy_schema):
        query = WorkloadCountingQuery(
            prefix_workload("age", [10, 20, 30]), disjoint=True
        )
        assert query.sensitivity(toy_schema) == 1.0
