"""Tests for the declarative query-language parser."""

import pytest

from repro.core.exceptions import ParseError
from repro.queries.parser import parse_predicate, parse_query
from repro.queries.predicates import (
    And,
    Between,
    Comparison,
    In,
    IsNull,
    Not,
    Or,
    TruePredicate,
)
from repro.queries.query import (
    IcebergCountingQuery,
    TopKCountingQuery,
    WorkloadCountingQuery,
)


class TestParsePredicate:
    def test_simple_comparison(self):
        pred = parse_predicate("age > 50")
        assert isinstance(pred, Comparison)
        assert pred.op == ">" and pred.value == 50

    def test_equality_aliases(self):
        assert parse_predicate("age = 5").op == "=="
        assert parse_predicate("age == 5").op == "=="
        assert parse_predicate("age <> 5").op == "!="

    def test_string_literal(self):
        pred = parse_predicate("state = 'AL'")
        assert pred.value == "AL"

    def test_bare_word_value(self):
        pred = parse_predicate("workclass = private")
        assert pred.value == "private"

    def test_quoted_identifier(self):
        pred = parse_predicate('"capital gain" > 100')
        assert pred.attribute == "capital gain"

    def test_between_inclusive(self):
        pred = parse_predicate("age BETWEEN 10 AND 20")
        assert isinstance(pred, Between)
        assert pred.low == 10 and pred.high == 20
        assert pred.low_inclusive and pred.high_inclusive

    def test_in_list(self):
        pred = parse_predicate("state IN ('AL', 'WY')")
        assert isinstance(pred, In)
        assert pred.values == ("AL", "WY")

    def test_is_null(self):
        pred = parse_predicate("venue IS NULL")
        assert isinstance(pred, IsNull) and not pred.negated

    def test_is_not_null(self):
        pred = parse_predicate("venue IS NOT NULL")
        assert isinstance(pred, IsNull) and pred.negated

    def test_and_or_precedence(self):
        pred = parse_predicate("a > 1 AND b > 2 OR c > 3")
        assert isinstance(pred, Or)
        assert isinstance(pred.children[0], And)

    def test_parentheses(self):
        pred = parse_predicate("a > 1 AND (b > 2 OR c > 3)")
        assert isinstance(pred, And)
        assert isinstance(pred.children[1], Or)

    def test_not(self):
        pred = parse_predicate("NOT age > 5")
        assert isinstance(pred, Not)

    def test_true_literal(self):
        assert isinstance(parse_predicate("TRUE"), TruePredicate)

    def test_case_insensitive_keywords(self):
        pred = parse_predicate("age between 1 and 2 and state is null")
        assert isinstance(pred, And)

    def test_negative_numbers(self):
        assert parse_predicate("delta > -1.5").value == -1.5

    def test_scientific_notation(self):
        assert parse_predicate("x < 1e-3").value == pytest.approx(1e-3)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_predicate("age > 5 garbage garbage")

    def test_unknown_character_rejected(self):
        with pytest.raises(ParseError):
            parse_predicate("age @ 5")

    def test_missing_value_rejected(self):
        with pytest.raises(ParseError):
            parse_predicate("age >")


class TestParseQuery:
    WCQ = (
        "BIN D ON COUNT(*) WHERE W = {age > 50 AND state = 'AL', age > 50 AND state = 'WY'};"
    )

    def test_wcq(self):
        query, accuracy = parse_query(self.WCQ)
        assert isinstance(query, WorkloadCountingQuery)
        assert query.workload_size == 2
        assert accuracy is None

    def test_icq(self):
        text = (
            "BIN D ON COUNT(*) WHERE W = {state = 'AL', state = 'WY'} "
            "HAVING COUNT(*) > 5000000;"
        )
        query, _ = parse_query(text)
        assert isinstance(query, IcebergCountingQuery)
        assert query.threshold == 5_000_000

    def test_tcq(self):
        text = (
            "BIN D ON COUNT(*) WHERE W = {state = 'AL', state = 'WY', state = 'CA'} "
            "ORDER BY COUNT(*) LIMIT 2;"
        )
        query, _ = parse_query(text)
        assert isinstance(query, TopKCountingQuery)
        assert query.k == 2

    def test_accuracy_clause(self):
        text = (
            "BIN D ON COUNT(*) WHERE W = {age > 50} ERROR 100 CONFIDENCE 0.9995;"
        )
        _, accuracy = parse_query(text)
        assert accuracy is not None
        assert accuracy.alpha == 100
        assert accuracy.beta == pytest.approx(5e-4)

    def test_semicolon_optional(self):
        query, _ = parse_query("BIN D ON COUNT(*) WHERE W = {age > 50}")
        assert query.workload_size == 1

    def test_semicolon_separator_in_workload(self):
        query, _ = parse_query("BIN D ON COUNT(*) WHERE W = {age > 50; age > 60}")
        assert query.workload_size == 2

    def test_in_list_commas_not_split(self):
        query, _ = parse_query(
            "BIN D ON COUNT(*) WHERE W = {state IN ('AL', 'WY'), age > 5}"
        )
        assert query.workload_size == 2

    def test_having_and_order_by_conflict(self):
        text = (
            "BIN D ON COUNT(*) WHERE W = {age > 5, age > 10} "
            "HAVING COUNT(*) > 3 ORDER BY COUNT(*) LIMIT 1;"
        )
        with pytest.raises(ParseError):
            parse_query(text)

    def test_empty_workload_rejected(self):
        with pytest.raises(ParseError):
            parse_query("BIN D ON COUNT(*) WHERE W = {};")

    def test_bad_confidence_rejected(self):
        with pytest.raises(ParseError):
            parse_query("BIN D ON COUNT(*) WHERE W = {age > 5} ERROR 10 CONFIDENCE 2;")

    def test_having_requires_greater_than(self):
        with pytest.raises(ParseError):
            parse_query(
                "BIN D ON COUNT(*) WHERE W = {age > 5} HAVING COUNT(*) < 3;"
            )

    def test_missing_count_star_rejected(self):
        with pytest.raises(ParseError):
            parse_query("BIN D ON SUM(*) WHERE W = {age > 5};")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(ParseError):
            parse_query("BIN D ON COUNT(*) WHERE W = {age > 5}; extra")

    def test_paper_example_parses(self):
        text = """
        BIN D ON COUNT(*)
        WHERE W = {"capital gain" < 50, "capital gain" < 100, "capital gain" < 5000}
        HAVING COUNT(*) > 3256
        ERROR 651 CONFIDENCE 0.9995;
        """
        query, accuracy = parse_query(text)
        assert isinstance(query, IcebergCountingQuery)
        assert query.workload_size == 3
        assert accuracy.beta == pytest.approx(5e-4)

    def test_bin_names_are_descriptions(self):
        query, _ = parse_query("BIN D ON COUNT(*) WHERE W = {age > 50, sex = 'M'}")
        assert query.bin_names() == ("age > 50", "sex = 'M'")
