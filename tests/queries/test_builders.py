"""Tests for the workload builder helpers."""

import pytest

from repro.core.exceptions import QueryError
from repro.queries.builders import (
    cross_workload,
    cumulative_histogram_workload,
    histogram_workload,
    marginal_workload,
    point_workload,
    prefix_workload,
    range_workload,
)


class TestRangeAndHistogram:
    def test_range_bins(self, toy_table):
        workload = range_workload("age", [0, 30, 60, 100])
        assert workload.size == 3
        # ages: 10,20,30,40,50,60,70,80,90,15,25,35
        assert list(workload.true_answers(toy_table)) == [4, 4, 4]

    def test_range_needs_two_edges(self):
        with pytest.raises(QueryError):
            range_workload("age", [1])

    def test_range_monotone_edges(self):
        with pytest.raises(QueryError):
            range_workload("age", [0, 10, 5])

    def test_histogram_bin_count(self):
        workload = histogram_workload("age", start=0, stop=100, bins=10)
        assert workload.size == 10

    def test_histogram_invalid(self):
        with pytest.raises(QueryError):
            histogram_workload("age", start=0, stop=100, bins=0)
        with pytest.raises(QueryError):
            histogram_workload("age", start=10, stop=5, bins=2)

    def test_histogram_covers_range_disjointly(self, toy_table):
        workload = histogram_workload("age", start=0, stop=100, bins=5)
        counts = workload.true_answers(toy_table)
        ages = toy_table.column("age").astype(float)
        assert counts.sum() == ((ages >= 0) & (ages < 100)).sum()


class TestPrefixAndCumulative:
    def test_prefix_counts_are_monotone(self, toy_table):
        workload = prefix_workload("age", [20, 40, 60, 80, 100])
        counts = list(workload.true_answers(toy_table))
        assert counts == sorted(counts)

    def test_prefix_needs_increasing_cuts(self):
        with pytest.raises(QueryError):
            prefix_workload("age", [10, 10])

    def test_prefix_empty_rejected(self):
        with pytest.raises(QueryError):
            prefix_workload("age", [])

    def test_cumulative_matches_prefix_at_edges(self, toy_table):
        cumulative = cumulative_histogram_workload("age", start=0, stop=100, bins=5)
        counts = list(cumulative.true_answers(toy_table))
        assert counts == sorted(counts)
        assert counts[-1] == 12  # all rows have age in [0, 100)


class TestPointAndMarginal:
    def test_point_from_schema(self, toy_schema):
        workload = point_workload("state", schema=toy_schema)
        assert workload.size == 3

    def test_point_requires_values_or_schema(self):
        with pytest.raises(QueryError):
            point_workload("state")

    def test_point_non_categorical_needs_values(self, toy_schema):
        with pytest.raises(QueryError):
            point_workload("age", schema=toy_schema)
        assert point_workload("age", [1, 2, 3]).size == 3

    def test_marginal_size_is_product(self, toy_schema):
        marginal = marginal_workload(
            point_workload("state", schema=toy_schema),
            histogram_workload("age", start=0, stop=100, bins=4),
        )
        assert marginal.size == 12

    def test_marginal_counts(self, toy_table, toy_schema):
        marginal = marginal_workload(
            point_workload("state", schema=toy_schema),
            range_workload("age", [0, 50, 100]),
        )
        counts = marginal.true_answers(toy_table)
        assert counts.sum() == 12

    def test_cross_workload_concatenates(self, toy_schema):
        combined = cross_workload(
            [point_workload("state", schema=toy_schema), prefix_workload("age", [10, 20])]
        )
        assert combined.size == 5

    def test_cross_workload_empty_rejected(self):
        with pytest.raises(QueryError):
            cross_workload([])
