"""The staleness regression class: no cache survives a table mutation.

Every memo this stack grew (per-table mask LRU, workload-matrix memo,
translator memo, WCQ-SM's Monte-Carlo search, the histogram/true-count
caches) was built under a "tables never change" assumption.  These tests pin
the fix: each cache keys on the table's version token, so after
``append_rows`` a structurally identical request misses everywhere and
recomputes against the grown data.

These tests deliberately pass **bare version tokens**, which keep the
original, strictly conservative behaviour: every mutation rebuilds.  The
engine entry points pass :class:`~repro.data.table.DomainStamp` objects
instead, which additionally allow *revalidation* (re-tagging
data-independent artifacts across domain-preserving mutations) -- that
contract is pinned by ``tests/store/test_revalidation.py`` and
``tests/service/test_streaming.py``.
"""

import numpy as np

from repro.core.accuracy import AccuracySpec
from repro.core.engine import APExEngine
from repro.core.translator import AccuracyTranslator
from repro.data.schema import (
    Attribute,
    CategoricalDomain,
    NumericDomain,
    Schema,
)
from repro.data.table import Table
from repro.mechanisms.registry import default_registry
from repro.mechanisms.strategy_mechanism import StrategyMechanism
from repro.queries.predicates import Between, Comparison
from repro.queries.query import WorkloadCountingQuery
from repro.queries.reference import reference_mask
from repro.queries.workload import Workload, clear_matrix_cache, matrix_cache_stats


def make_schema() -> Schema:
    return Schema(
        [
            Attribute("state", CategoricalDomain(("CA", "NY", "TX")), nullable=True),
            Attribute("score", NumericDomain(0, 100), nullable=True),
        ],
        name="Staleness",
    )


def make_table(schema: Schema) -> Table:
    rows = [
        {"state": ("CA", "NY", "TX", None)[i % 4], "score": float(i % 97)}
        for i in range(200)
    ]
    return Table.from_rows(schema, rows)


def extra_rows() -> list[dict]:
    return [{"state": "CA", "score": float(3 * i % 100)} for i in range(40)]


def make_workload() -> Workload:
    return Workload(
        [
            Comparison("state", "==", "CA"),
            Between("score", 10.0, 60.0),
            Comparison("score", ">", 80.0),
        ]
    )


ACCURACY = AccuracySpec(alpha=20.0, beta=1e-3)


class TestMatrixMemoStaleness:
    def test_matrix_memo_misses_after_append(self):
        clear_matrix_cache()
        schema = make_schema()
        table = make_table(schema)
        workload = make_workload()

        first = workload.analyze(schema, version=table.version_token)
        misses_after_first = matrix_cache_stats()["misses"]
        again = workload.analyze(schema, version=table.version_token)
        assert again is first  # same version: memo hit
        assert matrix_cache_stats()["misses"] == misses_after_first

        table.append_rows(extra_rows())
        rebuilt = workload.analyze(schema, version=table.version_token)
        assert rebuilt is not first  # new version: memo miss, fresh build
        assert matrix_cache_stats()["misses"] == misses_after_first + 1
        # The matrix *values* are identical (domain analysis is data
        # independent) -- only the cached identity is version-scoped.
        assert np.array_equal(rebuilt.matrix, first.matrix)

    def test_query_level_matrix_cache_is_version_scoped(self):
        clear_matrix_cache()
        schema = make_schema()
        table = make_table(schema)
        query = WorkloadCountingQuery(make_workload(), name="q")
        m1 = query.workload_matrix(schema, table.version_token)
        assert query.workload_matrix(schema, table.version_token) is m1
        table.append_rows(extra_rows())
        assert query.workload_matrix(schema, table.version_token) is not m1


class TestStrategyMechanismStaleness:
    def test_wcq_sm_search_key_misses_after_append(self):
        clear_matrix_cache()
        schema = make_schema()
        table = make_table(schema)
        query = WorkloadCountingQuery(make_workload(), name="q")
        mechanism = StrategyMechanism(mc_samples=200)

        mechanism.translate(query, ACCURACY, schema, version=table.version_token)
        stats = mechanism._cache.stats()
        assert stats["size"] == 1

        # Same version: the Monte-Carlo search is shared, no new entry.
        mechanism.translate(query, ACCURACY, schema, version=table.version_token)
        stats = mechanism._cache.stats()
        assert stats["size"] == 1
        assert stats["hits"] >= 1

        table.append_rows(extra_rows())
        mechanism.translate(query, ACCURACY, schema, version=table.version_token)
        stats = mechanism._cache.stats()
        assert stats["size"] == 2  # new version token => new search key


class TestTranslatorMemoStaleness:
    def test_translator_memo_misses_after_append(self):
        clear_matrix_cache()
        schema = make_schema()
        table = make_table(schema)
        translator = AccuracyTranslator(default_registry(mc_samples=200))
        query = WorkloadCountingQuery(make_workload(), name="q")

        translator.translations(query, ACCURACY, schema, version=table.version_token)
        assert translator.is_cached(
            query, ACCURACY, schema, version=table.version_token
        )
        old_version = table.version_token
        table.append_rows(extra_rows())
        assert not translator.is_cached(
            query, ACCURACY, schema, version=table.version_token
        )
        # The pre-append entry is still addressable under the old token --
        # stale *reuse* is prevented by keying, not by forgetting history.
        assert translator.is_cached(query, ACCURACY, schema, version=old_version)


class TestDataCachesStaleness:
    def test_true_counts_recount_after_append(self):
        schema = make_schema()
        table = make_table(schema)
        query = WorkloadCountingQuery(make_workload(), name="q")
        before = query.true_counts(table).copy()
        table.append_rows(extra_rows())
        after = query.true_counts(table)
        expected = np.array(
            [reference_mask(p, table).sum() for p in query.workload.predicates],
            dtype=float,
        )
        assert np.array_equal(after, expected)
        assert not np.array_equal(after, before)

    def test_partition_histogram_recomputes_after_append(self):
        clear_matrix_cache()
        schema = make_schema()
        table = make_table(schema)
        workload = make_workload()
        matrix = workload.analyze(schema, version=table.version_token)
        before = matrix.partition_histogram(table).copy()
        table.append_rows(extra_rows())
        after = matrix.partition_histogram(table)
        assert after.sum() > before.sum()
        assert np.allclose(matrix.matrix @ after, workload.true_answers(table))

    def test_engine_explore_answers_track_the_grown_table(self):
        clear_matrix_cache()
        schema = make_schema()
        table = make_table(schema)
        engine = APExEngine(
            table, budget=1e6, registry=default_registry(mc_samples=200), seed=5
        )
        query = WorkloadCountingQuery(make_workload(), name="q")
        tight = AccuracySpec(alpha=0.5, beta=1e-3)  # sub-row noise scale
        first = engine.explore(query, tight)
        table.append_rows(extra_rows())
        second = engine.explore(query, tight)
        truth = np.array(
            [reference_mask(p, table).sum() for p in query.workload.predicates],
            dtype=float,
        )
        # The post-append answer is centred on the *grown* counts; the tight
        # alpha keeps the noise well below one row.
        assert first and second
        assert np.allclose(second.noisy_counts, truth, atol=1.0)
