"""Parity tests: the vectorized engine must match the seed semantics exactly.

Randomized tables (with NULLs in numeric *and* categorical columns) are
evaluated through both the array-native path (interned codes, cached columnar
artifacts, broadcast domain analysis) and the preserved reference
implementations of :mod:`repro.queries.reference`; masks and workload
matrices must be bit-identical, including SQL NULL handling and
inclusive/exclusive interval bounds.
"""

import numpy as np
import pytest

from repro.data.schema import Attribute, CategoricalDomain, NumericDomain, Schema
from repro.data.table import Table
from repro.queries.predicates import (
    And,
    Between,
    Comparison,
    In,
    IsNull,
    Not,
    Or,
    Predicate,
)
from repro.queries.reference import (
    reference_domain_matrix,
    reference_mask,
    reference_null_mask,
)
from repro.queries.workload import (
    Workload,
    WorkloadMatrix,
    clear_matrix_cache,
    matrix_cache_stats,
)

STATES = ("AL", "AK", "AZ", "CA", "NY", "TX")
KINDS = ("gold", "silver", "bronze")
#: Constants deliberately include exact data values (integers) so equality
#: and inclusive/exclusive bound edge cases actually trigger.
NUMERIC_CONSTANTS = (0.0, 1.0, 5.0, 10.0, 25.0, 49.0, 50.0, 99.0, 100.0)


def parity_schema() -> Schema:
    return Schema(
        [
            Attribute("state", CategoricalDomain(STATES), nullable=True),
            Attribute("kind", CategoricalDomain(KINDS)),
            Attribute("score", NumericDomain(0, 100), nullable=True),
            Attribute("count", NumericDomain(0, 1000, integral=True)),
        ],
        name="Parity",
    )


def random_table(rng: np.random.Generator, n_rows: int = 500) -> Table:
    schema = parity_schema()
    state = np.array(
        [STATES[i] for i in rng.integers(0, len(STATES), n_rows)], dtype=object
    )
    state[rng.random(n_rows) < 0.15] = None
    kind = np.array(
        [KINDS[i] for i in rng.integers(0, len(KINDS), n_rows)], dtype=object
    )
    score = rng.integers(0, 101, n_rows).astype(float)
    score[rng.random(n_rows) < 0.2] = np.nan
    count = rng.integers(0, 1001, n_rows).astype(float)
    return Table(
        schema, {"state": state, "kind": kind, "score": score, "count": count}
    )


def random_atom(rng: np.random.Generator) -> Predicate:
    choice = rng.integers(0, 7)
    if choice == 0:
        return Comparison("state", rng.choice(["==", "!="]), str(rng.choice(STATES)))
    if choice == 1:
        return Comparison(
            "score",
            str(rng.choice(["==", "!=", "<", "<=", ">", ">="])),
            float(rng.choice(NUMERIC_CONSTANTS)),
        )
    if choice == 2:
        low, high = sorted(rng.choice(NUMERIC_CONSTANTS, size=2))
        return Between(
            "score",
            float(low),
            float(high),
            low_inclusive=bool(rng.integers(0, 2)),
            high_inclusive=bool(rng.integers(0, 2)),
        )
    if choice == 3:
        size = int(rng.integers(1, 4))
        values = list(rng.choice(list(STATES) + ["ZZ"], size=size, replace=False))
        return In("state", values)
    if choice == 4:
        return IsNull(str(rng.choice(["state", "score"])), negated=bool(rng.integers(0, 2)))
    if choice == 5:
        return Comparison("kind", "==", str(rng.choice(KINDS)))
    return Comparison("count", str(rng.choice(["<", ">="])), float(rng.integers(0, 1001)))


def random_predicate(rng: np.random.Generator, depth: int = 2) -> Predicate:
    if depth == 0 or rng.random() < 0.4:
        return random_atom(rng)
    combinator = rng.integers(0, 3)
    if combinator == 0:
        return Not(random_predicate(rng, depth - 1))
    children = [random_predicate(rng, depth - 1) for _ in range(int(rng.integers(2, 4)))]
    return And(children) if combinator == 1 else Or(children)


class TestMaskParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_predicates_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        table = random_table(rng)
        for _ in range(40):
            predicate = random_predicate(rng)
            expected = reference_mask(predicate, table)
            actual = predicate.evaluate(table)
            assert actual.dtype == np.bool_
            assert np.array_equal(actual, expected), predicate.describe()

    def test_null_mask_parity(self):
        rng = np.random.default_rng(99)
        table = random_table(rng)
        for name in ("state", "kind", "score", "count"):
            assert np.array_equal(
                table.is_null(name), reference_null_mask(table, name)
            )

    def test_comparison_constant_absent_from_data(self):
        rng = np.random.default_rng(3)
        table = random_table(rng)
        for predicate in (
            Comparison("state", "==", "ZZ"),
            Comparison("state", "!=", "ZZ"),
            In("state", ["ZZ", "QQ"]),
        ):
            assert np.array_equal(
                predicate.evaluate(table), reference_mask(predicate, table)
            )

    def test_in_on_numeric_attribute_matches_seed(self):
        # IN lists hold strings; on a numeric column the seed matched nothing
        # (float != str).  The vectorized path must do the same -- without
        # interning every distinct float of the column.
        rng = np.random.default_rng(8)
        table = random_table(rng)
        predicate = In("score", ["5", "10"])
        assert np.array_equal(
            predicate.evaluate(table), reference_mask(predicate, table)
        )
        assert not predicate.evaluate(table).any()
        assert "score" not in table._category_codes

    def test_unknown_attribute_raises_schema_error(self):
        from repro.core.exceptions import SchemaError

        rng = np.random.default_rng(9)
        table = random_table(rng)
        with pytest.raises(SchemaError):
            Between("nope", 0.0, 1.0).evaluate(table)
        with pytest.raises(SchemaError):
            table.numeric_values("nope")

    def test_masks_are_cached_and_read_only(self):
        rng = np.random.default_rng(5)
        table = random_table(rng)
        predicate = Comparison("state", "==", "CA")
        first = predicate.evaluate(table)
        second = Comparison("state", "==", "CA").evaluate(table)
        assert first is second  # value-equal predicate hits the same entry
        with pytest.raises(ValueError):
            first[0] = True

    def test_filtered_table_has_fresh_caches(self):
        rng = np.random.default_rng(6)
        table = random_table(rng)
        predicate = Comparison("kind", "==", "gold")
        mask = predicate.evaluate(table)
        filtered = table.filter(mask)
        assert predicate.evaluate(filtered).all()
        assert len(predicate.evaluate(filtered)) == int(mask.sum())

    def test_clear_caches_recomputes_identically(self):
        rng = np.random.default_rng(7)
        table = random_table(rng)
        predicate = Or([IsNull("score"), Comparison("score", ">", 50.0)])
        before = predicate.evaluate(table).copy()
        table.clear_caches()
        assert np.array_equal(predicate.evaluate(table), before)


class TestDomainAnalysisParity:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_workloads_bit_identical(self, seed):
        rng = np.random.default_rng(1000 + seed)
        schema = parity_schema()
        predicates = [random_predicate(rng) for _ in range(int(rng.integers(3, 10)))]
        workload = Workload(predicates)
        expected_matrix, expected_partitions = reference_domain_matrix(
            workload, schema
        )
        analysis = WorkloadMatrix.from_domain_analysis(workload, schema)
        assert np.array_equal(analysis.matrix, expected_matrix)
        assert [p.signature for p in analysis.partitions] == [
            p.signature for p in expected_partitions
        ]
        assert [p.description for p in analysis.partitions] == [
            p.description for p in expected_partitions
        ]

    def test_interval_bound_edge_cases(self):
        schema = parity_schema()
        workload = Workload(
            [
                Between("score", 10.0, 50.0, low_inclusive=True, high_inclusive=True),
                Between("score", 10.0, 50.0, low_inclusive=False, high_inclusive=False),
                Comparison("score", "==", 50.0),
                Comparison("score", ">=", 50.0),
                Comparison("score", ">", 50.0),
            ]
        )
        expected_matrix, _ = reference_domain_matrix(workload, schema)
        analysis = WorkloadMatrix.from_domain_analysis(workload, schema)
        assert np.array_equal(analysis.matrix, expected_matrix)
        # histogram reconstruction still matches true answers on real data
        table = random_table(np.random.default_rng(42))
        histogram = analysis.partition_histogram(table)
        assert np.allclose(analysis.matrix @ histogram, workload.true_answers(table))

    def test_multi_chunk_enumeration_parity(self, monkeypatch):
        """Force many tiny chunks: cross-chunk dedupe and first-cell
        descriptions must match the single-pass reference exactly."""
        import repro.queries.workload as workload_module

        monkeypatch.setattr(workload_module, "_CELL_BUDGET", 1)
        monkeypatch.setattr(workload_module, "_MIN_CHUNK_CELLS", 7)
        rng = np.random.default_rng(777)
        schema = parity_schema()
        workload = Workload([random_predicate(rng) for _ in range(8)])
        expected_matrix, expected_partitions = reference_domain_matrix(
            workload, schema
        )
        analysis = WorkloadMatrix.from_domain_analysis(workload, schema)
        assert np.array_equal(analysis.matrix, expected_matrix)
        assert [(p.signature, p.description) for p in analysis.partitions] == [
            (p.signature, p.description) for p in expected_partitions
        ]

    def test_null_cells_parity(self):
        schema = parity_schema()
        workload = Workload(
            [
                IsNull("state"),
                IsNull("score", negated=True),
                And([IsNull("state", negated=True), Comparison("score", "<", 25.0)]),
            ]
        )
        expected_matrix, _ = reference_domain_matrix(workload, schema)
        analysis = WorkloadMatrix.from_domain_analysis(workload, schema)
        assert np.array_equal(analysis.matrix, expected_matrix)


class TestAnalysisMemo:
    def test_structurally_equal_workloads_share_matrix(self):
        clear_matrix_cache()
        schema = parity_schema()
        first = Workload([Comparison("score", ">", 10.0)]).analyze(schema)
        hits_before = matrix_cache_stats()["hits"]
        second = Workload([Comparison("score", ">", 10.0)]).analyze(schema)
        assert second is first
        assert matrix_cache_stats()["hits"] == hits_before + 1

    def test_different_overrides_do_not_collide(self):
        clear_matrix_cache()
        schema = parity_schema()
        workload = Workload([Comparison("score", ">", 10.0)])
        exact = workload.analyze(schema)
        disjoint = workload.analyze(schema, disjoint=True)
        assert exact.exact and not disjoint.exact
        assert disjoint.sensitivity == 1.0

    def test_memoised_matrix_does_not_pin_tables(self):
        """A matrix parked in the module-level memo holds its histogram's
        table only weakly, so discarded tables stay collectible."""
        import gc
        import weakref

        clear_matrix_cache()
        schema = parity_schema()
        analysis = Workload([Comparison("score", ">", 10.0)]).analyze(schema)
        table = random_table(np.random.default_rng(1), n_rows=50)
        analysis.partition_histogram(table)
        ref = weakref.ref(table)
        del table
        gc.collect()
        assert ref() is None

    def test_structural_tokens_shared_for_equal_identity_matrices(self):
        workload_a = Workload([Comparison("score", ">", 1.0)])
        workload_b = Workload([Comparison("count", "<", 7.0)])
        matrix_a = workload_a.analyze(None, sensitivity=1.0)
        matrix_b = workload_b.analyze(None, sensitivity=1.0)
        assert matrix_a.cache_token == matrix_b.cache_token
        # a different sensitivity means a different translation: token differs
        wider = Workload(
            [Comparison("score", ">", 1.0), Comparison("score", ">", 2.0)]
        ).analyze(None)
        assert matrix_a.cache_token != wider.cache_token
