"""Tests for the entity-resolution quality metrics."""

import numpy as np
import pytest

from repro.core.exceptions import ApexError
from repro.er.metrics import (
    blocking_cost,
    f1_score,
    f1_sets,
    precision_recall,
    set_precision_recall,
)


class TestPrecisionRecall:
    def test_perfect(self):
        actual = np.array([True, False, True, False])
        assert precision_recall(actual, actual) == (1.0, 1.0)

    def test_half_recall(self):
        predicted = np.array([True, False, False, False])
        actual = np.array([True, True, False, False])
        precision, recall = precision_recall(predicted, actual)
        assert precision == 1.0 and recall == 0.5

    def test_empty_prediction(self):
        predicted = np.zeros(4, dtype=bool)
        actual = np.array([True, False, True, False])
        assert precision_recall(predicted, actual) == (0.0, 0.0)

    def test_empty_truth(self):
        predicted = np.array([True, False])
        actual = np.zeros(2, dtype=bool)
        precision, recall = precision_recall(predicted, actual)
        assert precision == 0.0 and recall == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ApexError):
            precision_recall(np.zeros(3, dtype=bool), np.zeros(4, dtype=bool))


class TestF1:
    def test_perfect(self):
        mask = np.array([True, False, True])
        assert f1_score(mask, mask) == 1.0

    def test_zero_when_nothing_predicted(self):
        assert f1_score(np.zeros(3, dtype=bool), np.array([True, False, False])) == 0.0

    def test_harmonic_mean(self):
        predicted = np.array([True, True, False, False])
        actual = np.array([True, False, True, False])
        # precision = recall = 0.5 -> F1 = 0.5
        assert f1_score(predicted, actual) == pytest.approx(0.5)


class TestBlockingCost:
    def test_counts_kept_pairs(self):
        assert blocking_cost(np.array([True, False, True, True])) == 3

    def test_empty(self):
        assert blocking_cost(np.zeros(5, dtype=bool)) == 0


class TestSetMetrics:
    def test_set_precision_recall(self):
        precision, recall = set_precision_recall({"a", "b"}, {"b", "c", "d"})
        assert precision == pytest.approx(0.5)
        assert recall == pytest.approx(1 / 3)

    def test_f1_sets_identical(self):
        assert f1_sets(["a", "b"], ["b", "a"]) == 1.0

    def test_f1_sets_disjoint(self):
        assert f1_sets(["a"], ["b"]) == 0.0

    def test_f1_sets_both_empty(self):
        assert f1_sets([], []) == 1.0

    def test_f1_sets_one_empty(self):
        assert f1_sets([], ["a"]) == 0.0
        assert f1_sets(["a"], []) == 0.0

    def test_f1_sets_partial(self):
        assert f1_sets(["a", "b", "c"], ["a", "b", "d"]) == pytest.approx(2 / 3)
