"""Tests for the cleaner model (Appendix C, Table 3)."""

import numpy as np
import pytest

from repro.core.exceptions import ApexError
from repro.data.citations import ER_ATTRIBUTE_PAIRS
from repro.er.cleaner import CleanerModel, CleanerProfile


class TestCleanerProfile:
    def test_default_profile_is_valid(self):
        profile = CleanerModel.default_profile()
        assert profile.n_attributes == 2
        assert profile.style == "neutral"

    def test_invalid_style_rejected(self):
        with pytest.raises(ApexError):
            CleanerProfile(
                n_attributes=2, transforms=("space",), similarities=("jaccard",),
                threshold_low=0.2, threshold_high=0.8, n_thresholds=3,
                descending_thresholds=True, min_match_fraction=0.3,
                max_nonmatch_fraction=0.1, relaxation_factor=2.0, style="bogus",
            )

    def test_invalid_threshold_range_rejected(self):
        with pytest.raises(ApexError):
            CleanerProfile(
                n_attributes=2, transforms=("space",), similarities=("jaccard",),
                threshold_low=0.8, threshold_high=0.2, n_thresholds=3,
                descending_thresholds=True, min_match_fraction=0.3,
                max_nonmatch_fraction=0.1, relaxation_factor=2.0, style="neutral",
            )

    def test_adjust_styles(self):
        base = dict(
            n_attributes=2, transforms=("space",), similarities=("jaccard",),
            threshold_low=0.2, threshold_high=0.8, n_thresholds=3,
            descending_thresholds=True, min_match_fraction=0.3,
            max_nonmatch_fraction=0.1, relaxation_factor=2.0,
        )
        neutral = CleanerProfile(style="neutral", **base)
        optimistic = CleanerProfile(style="optimistic", **base)
        pessimistic = CleanerProfile(style="pessimistic", **base)
        assert neutral.adjust(100, alpha=50) == 100
        assert optimistic.adjust(100, alpha=50) == 110
        assert pessimistic.adjust(100, alpha=50) == 90


class TestCandidatePredicates:
    def test_ordered_by_descending_threshold(self):
        profile = CleanerModel.default_profile()
        candidates = profile.candidate_predicates(list(ER_ATTRIBUTE_PAIRS[:2]))
        thresholds = [spec.threshold for spec in candidates]
        assert thresholds == sorted(thresholds, reverse=True)

    def test_char_sims_use_identity_transform(self):
        profile = CleanerModel.default_profile()
        candidates = profile.candidate_predicates(list(ER_ATTRIBUTE_PAIRS[:2]))
        for spec in candidates:
            if spec.similarity in ("edit", "jaro", "smith_waterman"):
                assert spec.transform == "identity"
            if spec.similarity in ("jaccard", "cosine", "overlap"):
                assert spec.transform in profile.transforms

    def test_year_only_gets_diff(self):
        profile = CleanerModel.default_profile()
        candidates = profile.candidate_predicates(list(ER_ATTRIBUTE_PAIRS))
        year_specs = [s for s in candidates if s.attribute == "year"]
        assert year_specs and all(s.similarity == "diff" for s in year_specs)
        text_specs = [s for s in candidates if s.attribute != "year"]
        assert all(s.similarity != "diff" for s in text_specs)

    def test_column_names_follow_attribute_pairs(self):
        profile = CleanerModel.default_profile()
        candidates = profile.candidate_predicates([ER_ATTRIBUTE_PAIRS[0]])
        assert all(s.left_column == "title_l" and s.right_column == "title_r" for s in candidates)

    def test_shuffle_is_deterministic_per_seed(self):
        profile = CleanerModel.default_profile()
        a = profile.candidate_predicates(list(ER_ATTRIBUTE_PAIRS[:2]), np.random.default_rng(1))
        b = profile.candidate_predicates(list(ER_ATTRIBUTE_PAIRS[:2]), np.random.default_rng(1))
        assert [s.describe() for s in a] == [s.describe() for s in b]


class TestCleanerModel:
    def test_sample_produces_valid_profiles(self):
        model = CleanerModel(seed=0)
        for _ in range(20):
            profile = model.sample()
            assert 2 <= profile.n_attributes <= 3
            assert 0.05 <= profile.threshold_low < profile.threshold_high <= 0.95
            assert profile.style in ("neutral", "optimistic", "pessimistic")
            assert "diff" in profile.similarities
            assert 0.2 <= profile.min_match_fraction <= 0.5
            assert 0.1 <= profile.max_nonmatch_fraction <= 0.2

    def test_sampling_is_deterministic_per_seed(self):
        a = CleanerModel(seed=3).sample()
        b = CleanerModel(seed=3).sample()
        assert a.similarities == b.similarities
        assert a.threshold_low == b.threshold_low

    def test_distinct_samples(self):
        model = CleanerModel(seed=1)
        profiles = [model.sample() for _ in range(10)]
        assert len({p.threshold_low for p in profiles}) > 1
