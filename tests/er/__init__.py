"""Test package (explicit so same-named test modules in sibling packages coexist)."""
