"""Tests for similarity predicates, the score cache and boolean formulas."""

import numpy as np
import pytest

from repro.core.exceptions import ApexError
from repro.er.predicates import (
    BooleanFormula,
    SimilarityCache,
    SimilarityPredicateSpec,
    enumerate_thresholds,
)


@pytest.fixture()
def title_spec() -> SimilarityPredicateSpec:
    return SimilarityPredicateSpec(
        attribute="title",
        left_column="title_l",
        right_column="title_r",
        transform="2grams",
        similarity="jaccard",
        threshold=0.6,
    )


@pytest.fixture()
def cache(citation_table) -> SimilarityCache:
    return SimilarityCache(citation_table)


class TestSimilarityCache:
    def test_scores_shape_and_range(self, cache, title_spec, citation_table):
        scores = cache.scores(title_spec)
        assert scores.shape == (len(citation_table),)
        assert (scores >= 0).all() and (scores <= 1).all()

    def test_scores_cached_across_thresholds(self, cache, title_spec):
        first = cache.scores(title_spec)
        other_threshold = SimilarityPredicateSpec(
            attribute="title", left_column="title_l", right_column="title_r",
            transform="2grams", similarity="jaccard", threshold=0.9,
        )
        second = cache.scores(other_threshold)
        assert first is second
        assert cache.cached_keys() == [("title", "2grams", "jaccard")]

    def test_mask_respects_threshold(self, cache, title_spec):
        loose = cache.mask(title_spec)
        strict_spec = SimilarityPredicateSpec(
            attribute="title", left_column="title_l", right_column="title_r",
            transform="2grams", similarity="jaccard", threshold=0.95,
        )
        strict = cache.mask(strict_spec)
        assert strict.sum() <= loose.sum()

    def test_null_values_score_zero(self, cache):
        spec = SimilarityPredicateSpec(
            attribute="venue", left_column="venue_l", right_column="venue_r",
            transform="space", similarity="jaccard", threshold=0.0,
        )
        scores = cache.scores(spec)
        nulls = cache.table.is_null("venue_l") | cache.table.is_null("venue_r")
        assert (scores[nulls] == 0).all()

    def test_predicate_wraps_mask(self, cache, title_spec, citation_table):
        predicate = cache.predicate(title_spec)
        mask = predicate.evaluate(citation_table)
        assert np.array_equal(mask, cache.mask(title_spec))
        assert not predicate.supports_domain_analysis

    def test_predicate_on_other_table_rejected(self, cache, title_spec, toy_table):
        predicate = cache.predicate(title_spec)
        with pytest.raises(ApexError):
            predicate.evaluate(toy_table)

    def test_matches_score_higher(self, cache, title_spec, citation_table):
        scores = cache.scores(title_spec)
        labels = np.array([v == "MATCH" for v in citation_table.column("label")])
        assert scores[labels].mean() > scores[~labels].mean() + 0.3


class TestBooleanFormula:
    def test_empty_disjunction_matches_nothing(self, cache, citation_table):
        assert BooleanFormula.disjunction().evaluate(cache).sum() == 0

    def test_empty_conjunction_matches_everything(self, cache, citation_table):
        assert BooleanFormula.conjunction_of().evaluate(cache).sum() == len(citation_table)

    def test_disjunction_grows_coverage(self, cache, title_spec):
        authors_spec = SimilarityPredicateSpec(
            attribute="authors", left_column="authors_l", right_column="authors_r",
            transform="space", similarity="jaccard", threshold=0.6,
        )
        one = BooleanFormula.disjunction([title_spec])
        two = one.with_predicate(authors_spec)
        assert two.evaluate(cache).sum() >= one.evaluate(cache).sum()
        assert len(two) == 2

    def test_conjunction_shrinks_coverage(self, cache, title_spec):
        authors_spec = SimilarityPredicateSpec(
            attribute="authors", left_column="authors_l", right_column="authors_r",
            transform="space", similarity="jaccard", threshold=0.3,
        )
        one = BooleanFormula.conjunction_of([title_spec])
        two = one.with_predicate(authors_spec)
        assert two.evaluate(cache).sum() <= one.evaluate(cache).sum()

    def test_describe(self, title_spec):
        formula = BooleanFormula.disjunction([title_spec])
        assert "jaccard(2grams(title)) > 0.60" in formula.describe()
        assert BooleanFormula.disjunction().describe() == "FALSE"
        assert BooleanFormula.conjunction_of().describe() == "TRUE"

    def test_predicate_view(self, cache, title_spec, citation_table):
        formula = BooleanFormula.disjunction([title_spec])
        predicate = formula.predicate(cache)
        assert predicate.evaluate(citation_table).sum() == formula.evaluate(cache).sum()

    def test_is_empty(self, title_spec):
        assert BooleanFormula.disjunction().is_empty
        assert not BooleanFormula.disjunction([title_spec]).is_empty


class TestEnumerateThresholds:
    def test_descending_by_default(self):
        values = enumerate_thresholds(0.2, 0.8, 4)
        assert values == sorted(values, reverse=True)
        assert values[0] == 0.8 and values[-1] == 0.2

    def test_ascending(self):
        values = enumerate_thresholds(0.2, 0.8, 3, descending=False)
        assert values == sorted(values)

    def test_single_threshold_is_midpoint(self):
        assert enumerate_thresholds(0.2, 0.8, 1) == [0.5]

    def test_validation(self):
        with pytest.raises(ApexError):
            enumerate_thresholds(0.9, 0.2, 3)
        with pytest.raises(ApexError):
            enumerate_thresholds(0.1, 0.9, 0)
