"""Tests for the blocking/matching exploration strategies (BS1, BS2, MS1, MS2)."""

import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.engine import APExEngine
from repro.er.cleaner import CleanerModel
from repro.er.predicates import SimilarityCache
from repro.er.strategies import (
    BlockingStrategyICQ,
    BlockingStrategyWCQ,
    MatchingStrategyICQ,
    MatchingStrategyWCQ,
)
from repro.mechanisms.registry import default_registry

STRATEGIES = [
    BlockingStrategyWCQ,
    BlockingStrategyICQ,
    MatchingStrategyWCQ,
    MatchingStrategyICQ,
]


@pytest.fixture(scope="module")
def er_cache(citation_table) -> SimilarityCache:
    return SimilarityCache(citation_table)


@pytest.fixture()
def profile():
    return CleanerModel.default_profile()


def _engine(table, budget: float) -> APExEngine:
    return APExEngine(
        table, budget=budget, seed=11, registry=default_registry(mc_samples=300)
    )


def _accuracy(table) -> AccuracySpec:
    return AccuracySpec(alpha=0.08 * len(table))


class TestStrategyMechanics:
    @pytest.mark.parametrize("strategy_class", STRATEGIES)
    def test_runs_within_budget(self, strategy_class, citation_table, er_cache, profile):
        engine = _engine(citation_table, budget=1.0)
        strategy = strategy_class(
            citation_table, profile, _accuracy(citation_table), cache=er_cache, rng=5
        )
        outcome = strategy.run(engine)
        assert outcome.epsilon_spent <= engine.budget + 1e-9
        assert engine.transcript().is_valid(engine.budget)
        assert 0.0 <= outcome.recall <= 1.0
        assert 0.0 <= outcome.precision <= 1.0
        assert outcome.queries_answered >= 1

    @pytest.mark.parametrize("strategy_class", STRATEGIES)
    def test_tiny_budget_yields_trivial_formula(self, strategy_class, citation_table,
                                                er_cache, profile):
        engine = _engine(citation_table, budget=1e-4)
        strategy = strategy_class(
            citation_table, profile, _accuracy(citation_table), cache=er_cache, rng=5
        )
        outcome = strategy.run(engine)
        assert outcome.queries_answered == 0
        assert len(outcome.formula) == 0

    def test_blocking_formula_is_disjunction(self, citation_table, er_cache, profile):
        engine = _engine(citation_table, budget=2.0)
        outcome = BlockingStrategyWCQ(
            citation_table, profile, _accuracy(citation_table), cache=er_cache, rng=5
        ).run(engine)
        assert not outcome.formula.conjunction
        assert outcome.task == "blocking"

    def test_matching_formula_is_conjunction(self, citation_table, er_cache, profile):
        engine = _engine(citation_table, budget=2.0)
        outcome = MatchingStrategyWCQ(
            citation_table, profile, _accuracy(citation_table), cache=er_cache, rng=5
        ).run(engine)
        assert outcome.formula.conjunction
        assert outcome.task == "matching"

    def test_outcome_quality_property(self, citation_table, er_cache, profile):
        engine = _engine(citation_table, budget=2.0)
        blocking = BlockingStrategyWCQ(
            citation_table, profile, _accuracy(citation_table), cache=er_cache, rng=5
        ).run(engine)
        assert blocking.quality == blocking.recall
        engine = _engine(citation_table, budget=2.0)
        matching = MatchingStrategyWCQ(
            citation_table, profile, _accuracy(citation_table), cache=er_cache, rng=5
        ).run(engine)
        assert matching.quality == matching.f1


class TestStrategyQuality:
    """End-to-end behaviour the paper reports (Section 8.2)."""

    def test_blocking_quality_improves_with_budget(self, citation_table, er_cache, profile):
        small = BlockingStrategyWCQ(
            citation_table, profile, _accuracy(citation_table), cache=er_cache, rng=5
        ).run(_engine(citation_table, budget=0.15))
        large = BlockingStrategyWCQ(
            citation_table, profile, _accuracy(citation_table), cache=er_cache, rng=5
        ).run(_engine(citation_table, budget=3.0))
        assert large.recall >= small.recall

    def test_blocking_reaches_good_recall_with_generous_budget(self, citation_table,
                                                               er_cache, profile):
        outcome = BlockingStrategyWCQ(
            citation_table, profile, _accuracy(citation_table), cache=er_cache, rng=5
        ).run(_engine(citation_table, budget=3.0))
        assert outcome.recall > 0.6
        assert outcome.blocking_cost < len(citation_table)

    def test_matching_reaches_good_f1_with_generous_budget(self, citation_table,
                                                           er_cache, profile):
        outcome = MatchingStrategyWCQ(
            citation_table, profile, _accuracy(citation_table), cache=er_cache, rng=5
        ).run(_engine(citation_table, budget=3.0))
        assert outcome.f1 > 0.6

    def test_icq_strategy_answers_more_queries_per_budget(self, citation_table,
                                                          er_cache, profile):
        """BS2's ICQ/TCQ queries are cheaper, so more of them fit in the budget."""
        budget = 2.0
        wcq_outcome = BlockingStrategyWCQ(
            citation_table, profile, _accuracy(citation_table), cache=er_cache, rng=5
        ).run(_engine(citation_table, budget=budget))
        icq_outcome = BlockingStrategyICQ(
            citation_table, profile, _accuracy(citation_table), cache=er_cache, rng=5
        ).run(_engine(citation_table, budget=budget))
        assert icq_outcome.queries_answered >= wcq_outcome.queries_answered
