"""Tests for the similarity functions and transforms."""

import pytest

from repro.core.exceptions import ApexError
from repro.er.similarity import (
    SIMILARITIES,
    cosine_similarity,
    edit_similarity,
    get_similarity,
    jaccard_similarity,
    jaro_similarity,
    numeric_diff_similarity,
    overlap_similarity,
    pairwise_scores,
    smith_waterman_similarity,
)
from repro.er.transforms import TRANSFORMS, get_transform


class TestTransforms:
    def test_identity_normalises(self):
        transform = get_transform("identity")
        assert transform("  Hello   World  ") == "hello world"

    def test_2grams(self):
        grams = get_transform("2grams")("abcd")
        assert grams == ("ab", "bc", "cd")

    def test_3grams_short_string(self):
        assert get_transform("3grams")("ab") == ("ab",)

    def test_space_tokenisation(self):
        assert get_transform("space")("A quick  fox") == ("a", "quick", "fox")

    def test_none_input(self):
        assert get_transform("2grams")(None) == ()
        assert get_transform("identity")(None) == ""

    def test_unknown_transform(self):
        with pytest.raises(ApexError):
            get_transform("bogus")

    def test_registry_flags(self):
        assert TRANSFORMS["identity"].tokenizing is False
        assert TRANSFORMS["space"].tokenizing is True


class TestEditSimilarity:
    def test_identical(self):
        assert edit_similarity("databases", "databases") == 1.0

    def test_completely_different(self):
        assert edit_similarity("aaaa", "bbbb") == 0.0

    def test_single_typo(self):
        assert edit_similarity("database", "databose") == pytest.approx(1 - 1 / 8)

    def test_empty_scores_zero(self):
        assert edit_similarity("", "abc") == 0.0
        assert edit_similarity("", "") == 0.0

    def test_symmetry(self):
        assert edit_similarity("kitten", "sitting") == edit_similarity("sitting", "kitten")

    def test_range(self):
        assert 0.0 <= edit_similarity("abcdef", "xyz") <= 1.0


class TestJaro:
    def test_identical(self):
        assert jaro_similarity("martha", "martha") == 1.0

    def test_known_value(self):
        # classic JARO example: MARTHA vs MARHTA = 0.944...
        assert jaro_similarity("martha", "marhta") == pytest.approx(0.9444, abs=1e-3)

    def test_disjoint(self):
        assert jaro_similarity("abc", "xyz") == 0.0

    def test_empty(self):
        assert jaro_similarity("", "abc") == 0.0


class TestSmithWaterman:
    def test_identical(self):
        assert smith_waterman_similarity("align", "align") == 1.0

    def test_substring_match(self):
        assert smith_waterman_similarity("database systems", "database") == 1.0

    def test_unrelated(self):
        assert smith_waterman_similarity("aaaa", "bbbb") == 0.0

    def test_range(self):
        value = smith_waterman_similarity("approximate queries", "approximate joins")
        assert 0.0 < value < 1.0


class TestTokenSimilarities:
    def test_jaccard(self):
        assert jaccard_similarity(("a", "b"), ("b", "c")) == pytest.approx(1 / 3)
        assert jaccard_similarity(("a",), ("a",)) == 1.0
        assert jaccard_similarity((), ("a",)) == 0.0

    def test_cosine(self):
        assert cosine_similarity(("a", "b"), ("a", "b")) == pytest.approx(1.0)
        assert cosine_similarity(("a",), ("b",)) == 0.0

    def test_cosine_multiset(self):
        # repeated tokens weight the vector
        assert cosine_similarity(("a", "a", "b"), ("a",)) > cosine_similarity(("a", "b"), ("b", "c"))

    def test_overlap(self):
        assert overlap_similarity(("a", "b", "c"), ("a", "b")) == 1.0
        assert overlap_similarity(("a", "b"), ("b", "c", "d")) == pytest.approx(0.5)

    def test_string_inputs_are_tokenised(self):
        assert jaccard_similarity("a b", "a c") == pytest.approx(1 / 3)


class TestNumericDiff:
    def test_equal_years(self):
        assert numeric_diff_similarity("1999", "1999") == 1.0

    def test_one_year_apart(self):
        assert numeric_diff_similarity(1999, 2000) == pytest.approx(0.8)

    def test_far_apart(self):
        assert numeric_diff_similarity(1990, 2010) == 0.0

    def test_non_numeric(self):
        assert numeric_diff_similarity("abc", "1999") == 0.0


class TestRegistry:
    def test_all_registered(self):
        assert set(SIMILARITIES) == {
            "edit", "smith_waterman", "jaro", "jaccard", "cosine", "overlap", "diff"
        }

    def test_get_similarity(self):
        assert get_similarity("jaccard").token_based
        assert not get_similarity("edit").token_based
        with pytest.raises(ApexError):
            get_similarity("bogus")

    def test_pairwise_scores(self):
        scores = pairwise_scores(get_similarity("jaccard"), [("a",), ("b",)], [("a",), ("c",)])
        assert scores == [1.0, 0.0]

    def test_pairwise_scores_length_mismatch(self):
        with pytest.raises(ApexError):
            pairwise_scores(get_similarity("jaccard"), [("a",)], [])

    def test_all_similarities_bounded(self):
        samples = [
            ("scalable databases", "scalable database"),
            ("alice smith", "a. smith"),
            ("", "x"),
            ("1999", "2001"),
        ]
        for name, similarity in SIMILARITIES.items():
            for left, right in samples:
                value = similarity(left, right)
                assert 0.0 <= value <= 1.0, name
