"""Optional lint/type toolchain wrappers.

The `static-analysis` CI gate installs ruff and mypy and runs them with the
configuration in pyproject.toml.  The local environment may not have either
tool, so these wrappers skip (rather than fail) when the binary is missing --
the configuration itself is still pinned by the always-on test below.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

ROOT = Path(__file__).parents[2]
SCOPE = ("src/repro/analysis", "src/repro/core")


@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff is not installed")
def test_ruff_clean():
    result = subprocess.run(
        ["ruff", "check", *SCOPE],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy is not installed")
def test_mypy_clean():
    # Plain `mypy`: the file scope comes from [tool.mypy] files in pyproject.
    result = subprocess.run(
        ["mypy"],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_toolchain_is_configured():
    """pyproject must keep carrying the exact scope the CI gate relies on."""
    text = (ROOT / "pyproject.toml").read_text()
    assert "[tool.ruff]" in text
    assert "[tool.mypy]" in text
    for scoped in SCOPE:
        assert scoped in text, f"{scoped} missing from the toolchain scope"
