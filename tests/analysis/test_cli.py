"""CLI behavior: exit codes, JSON schema, suppression, baseline workflow."""

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
REPO_SRC = Path(__file__).parents[2] / "src"

BAD = FIXTURES / "apx001_bad.py"
GOOD = FIXTURES / "apx001_good.py"


def run_cli(args, cwd):
    env_path = str(REPO_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": env_path, "PATH": "/usr/bin:/bin"},
    )


@pytest.fixture
def dirty_project(tmp_path):
    """A tiny project with known APX001 violations."""
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    shutil.copy(BAD, pkg / "ledger_use.py")
    return tmp_path


@pytest.fixture
def clean_project(tmp_path):
    pkg = tmp_path / "src" / "pkg"
    pkg.mkdir(parents=True)
    shutil.copy(GOOD, pkg / "ledger_use.py")
    return tmp_path


class TestExitCodes:
    def test_clean_tree_checks_green(self, clean_project):
        result = run_cli(["--check", "src"], clean_project)
        assert result.returncode == 0, result.stdout + result.stderr

    def test_findings_without_check_still_exit_zero(self, dirty_project):
        result = run_cli(["src"], dirty_project)
        assert result.returncode == 0
        assert "APX001" in result.stdout

    def test_findings_with_check_exit_one(self, dirty_project):
        result = run_cli(["--check", "src"], dirty_project)
        assert result.returncode == 1
        assert "APX001" in result.stdout

    def test_syntax_error_fails_the_check(self, clean_project):
        (clean_project / "src" / "pkg" / "broken.py").write_text("def f(:\n")
        result = run_cli(["--check", "src"], clean_project)
        assert result.returncode == 1
        assert "parse errors" in result.stdout

    def test_list_rules(self, clean_project):
        result = run_cli(["--list-rules"], clean_project)
        assert result.returncode == 0
        for code in ("APX001", "APX002", "APX003", "APX004", "APX005"):
            assert code in result.stdout


class TestJsonReport:
    def test_schema(self, dirty_project):
        result = run_cli(["--json", "src"], dirty_project)
        payload = json.loads(result.stdout)
        assert payload["version"] == 1
        assert set(payload["rules"]) == {
            "APX001", "APX002", "APX003", "APX004", "APX005"
        }
        summary = payload["summary"]
        assert set(summary) == {"files", "new", "baselined", "suppressed", "errors"}
        assert summary["new"] == len(payload["findings"]) > 0
        for finding in payload["findings"]:
            assert set(finding) == {
                "rule", "path", "line", "col", "message", "context", "key"
            }
            assert finding["key"].startswith(f"{finding['rule']}|")

    def test_clean_report_counts_zero(self, clean_project):
        result = run_cli(["--json", "src"], clean_project)
        payload = json.loads(result.stdout)
        assert payload["summary"]["new"] == 0
        assert payload["findings"] == []


class TestSuppression:
    def test_inline_ignore_silences_only_its_rule(self, dirty_project):
        target = dirty_project / "src" / "pkg" / "ledger_use.py"
        source = target.read_text()
        source = source.replace(
            'ledger.reserve(0.25)  # result dropped: can never be charged or released',
            'ledger.reserve(0.25)  # apx: ignore[APX001] exercised by tests',
        )
        target.write_text(source)
        result = run_cli(["--json", "src"], dirty_project)
        payload = json.loads(result.stdout)
        assert payload["summary"]["suppressed"] == 1
        assert all("discarded" not in f["context"] for f in payload["findings"])
        # the other findings are untouched
        assert payload["summary"]["new"] > 0

    def test_wrong_code_does_not_suppress(self, dirty_project):
        target = dirty_project / "src" / "pkg" / "ledger_use.py"
        source = target.read_text().replace(
            'ledger.reserve(0.25)  # result dropped: can never be charged or released',
            'ledger.reserve(0.25)  # apx: ignore[APX002] wrong rule',
        )
        target.write_text(source)
        result = run_cli(["--json", "src"], dirty_project)
        payload = json.loads(result.stdout)
        assert payload["summary"]["suppressed"] == 0


class TestBaselineWorkflow:
    def test_write_baseline_then_check_is_green(self, dirty_project):
        write = run_cli(["--write-baseline", "src"], dirty_project)
        assert write.returncode == 0
        payload = json.loads((dirty_project / "analysis-baseline.json").read_text())
        assert payload["findings"]
        for entry in payload["findings"]:
            assert set(entry) == {"key", "rule", "path", "reason"}
            assert entry["reason"] == "TODO: justify"
        check = run_cli(["--check", "src"], dirty_project)
        assert check.returncode == 0, check.stdout

    def test_baseline_reasons_survive_rewrite(self, dirty_project):
        run_cli(["--write-baseline", "src"], dirty_project)
        baseline_path = dirty_project / "analysis-baseline.json"
        payload = json.loads(baseline_path.read_text())
        payload["findings"][0]["reason"] = "kept on purpose"
        kept_key = payload["findings"][0]["key"]
        baseline_path.write_text(json.dumps(payload))
        run_cli(["--write-baseline", "src"], dirty_project)
        rewritten = json.loads(baseline_path.read_text())
        reasons = {e["key"]: e["reason"] for e in rewritten["findings"]}
        assert reasons[kept_key] == "kept on purpose"

    def test_new_finding_on_top_of_baseline_fails(self, dirty_project):
        run_cli(["--write-baseline", "src"], dirty_project)
        extra = dirty_project / "src" / "pkg" / "extra.py"
        extra.write_text(
            "def fresh_leak(ledger):\n"
            "    ledger.reserve(0.5)\n"
        )
        check = run_cli(["--check", "src"], dirty_project)
        assert check.returncode == 1
        assert "extra.py" in check.stdout


class TestLockOrderEmission:
    def test_emit_rewrites_only_between_markers(self, tmp_path):
        pkg = tmp_path / "src" / "pkg"
        pkg.mkdir(parents=True)
        shutil.copy(FIXTURES / "apx003_good.py", pkg / "locks.py")
        doc = tmp_path / "doc.md"
        doc.write_text(
            "# Consistency\n\nprose before\n\n"
            "<!-- lock-order:begin -->\nstale\n<!-- lock-order:end -->\n\n"
            "prose after\n"
        )
        result = run_cli(["--emit-lock-order", str(doc), "src"], tmp_path)
        assert result.returncode == 0, result.stdout + result.stderr
        text = doc.read_text()
        assert "stale" not in text
        assert "prose before" in text and "prose after" in text
        assert "pkg.locks.Outer._lock" in text
        assert text.count("<!-- lock-order:begin -->") == 1

    def test_missing_markers_is_an_error(self, tmp_path):
        (tmp_path / "src").mkdir()
        doc = tmp_path / "doc.md"
        doc.write_text("no markers here\n")
        result = run_cli(["--emit-lock-order", str(doc), "src"], tmp_path)
        assert result.returncode == 2


class TestCommittedDocIsCurrent:
    def test_consistency_md_lock_order_matches_the_code(self):
        """The generated block in docs/consistency.md must not go stale."""
        from repro.analysis.cli import (
            LOCK_ORDER_BEGIN,
            LOCK_ORDER_END,
            lock_order_markdown,
        )

        root = Path(__file__).parents[2]
        text = (root / "docs" / "consistency.md").read_text()
        committed = text.split(LOCK_ORDER_BEGIN)[1].split(LOCK_ORDER_END)[0].strip()
        expected = lock_order_markdown([str(root / "src")], str(root)).strip()
        assert committed == expected, (
            "docs/consistency.md lock-order section is stale; regenerate with "
            "`python -m repro.analysis --emit-lock-order docs/consistency.md src/`"
        )
