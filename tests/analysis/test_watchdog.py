"""The runtime lock-order watchdog: inversions, self-deadlock, compatibility."""

import threading

import pytest

from repro.analysis.runtime import (
    LockInversionError,
    LockOrderWatchdog,
    watching,
)


class TestInstallation:
    def test_install_and_uninstall_restore_the_factories(self):
        original_lock, original_rlock = threading.Lock, threading.RLock
        watchdog = LockOrderWatchdog()
        watchdog.install()
        try:
            assert threading.Lock is not original_lock
            lock = threading.Lock()
            with lock:
                pass
        finally:
            watchdog.uninstall()
        assert threading.Lock is original_lock
        assert threading.RLock is original_rlock

    def test_preexisting_locks_stay_raw(self):
        lock = threading.Lock()
        with watching():
            with lock:  # not instrumented, must still work
                pass

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            LockOrderWatchdog(mode="explode")


class TestInversionDetection:
    def test_two_thread_inversion_is_recorded(self):
        """A real AB/BA inversion across a thread pair is caught even when
        the timing happens not to deadlock (threads run one after another)."""
        with watching(mode="record") as watchdog:
            lock_a = threading.Lock()
            lock_b = threading.Lock()

            def ab_order():
                with lock_a:
                    with lock_b:
                        pass

            def ba_order():
                with lock_b:
                    with lock_a:
                        pass

            first = threading.Thread(target=ab_order, name="ab")
            first.start()
            first.join()
            second = threading.Thread(target=ba_order, name="ba")
            second.start()
            second.join()

        inversions = [v for v in watchdog.violations if v.kind == "inversion"]
        assert len(inversions) == 1
        violation = inversions[0]
        assert violation.thread == "ba"
        assert "opposite order" in violation.details

    def test_raise_mode_raises_at_the_inverting_acquire(self):
        with watching(mode="raise"):
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            with lock_a:
                with lock_b:
                    pass
            with lock_b:
                with pytest.raises(LockInversionError, match="opposite order"):
                    lock_a.acquire()

    def test_consistent_order_is_silent(self):
        with watching(mode="record") as watchdog:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            for _ in range(3):
                with lock_a:
                    with lock_b:
                        pass
        assert watchdog.violations == []

    def test_trylock_does_not_report(self):
        """A non-blocking acquire cannot deadlock, whatever the order."""
        with watching(mode="raise") as watchdog:
            lock_a = threading.Lock()
            lock_b = threading.Lock()
            with lock_a:
                with lock_b:
                    pass
            with lock_b:
                assert lock_a.acquire(blocking=False)
                lock_a.release()
        assert watchdog.violations == []


class TestSelfDeadlock:
    def test_blocking_reacquire_of_plain_lock_raises_in_every_mode(self):
        with watching(mode="record") as watchdog:
            lock = threading.Lock()
            lock.acquire()
            with pytest.raises(LockInversionError, match="self-deadlock"):
                lock.acquire()
            lock.release()
        assert any(v.kind == "self-deadlock" for v in watchdog.violations)

    def test_rlock_reentry_is_fine(self):
        with watching(mode="raise") as watchdog:
            rlock = threading.RLock()
            with rlock:
                with rlock:
                    pass
        assert watchdog.violations == []


class TestThreadingCompatibility:
    def test_condition_over_instrumented_lock(self):
        """threading.Condition relies on _is_owned/_release_save/_acquire_restore."""
        with watching(mode="raise"):
            condition = threading.Condition()
            results = []

            def consumer():
                with condition:
                    while not results:
                        condition.wait(timeout=5)

            thread = threading.Thread(target=consumer)
            thread.start()
            with condition:
                results.append(1)
                condition.notify_all()
            thread.join(timeout=5)
            assert not thread.is_alive()

    def test_wrapped_lock_reports_locked_state(self):
        with watching():
            lock = threading.Lock()
            assert not lock.locked()
            with lock:
                assert lock.locked()
            assert not lock.locked()
