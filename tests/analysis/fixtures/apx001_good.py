"""APX001 good fixture: the canonical reserve/charge/release shapes."""


def balanced(ledger, mechanism):
    reservation = ledger.reserve(0.5)
    if reservation is None:
        return None
    try:
        value = mechanism()
        ledger.charge(reservation=reservation)
        return value
    except BaseException:
        ledger.release(reservation)
        raise


def retry_loop(translator, ledger, mechanism):
    while True:
        choice = translator.choose()
        if choice is None:
            return None
        reservation = ledger.reserve(choice)
        if reservation is not None:
            break
    try:
        value = mechanism()
        ledger.charge(reservation=reservation)
        return value
    except BaseException:
        ledger.release(reservation)
        raise


def refusal_only_path(ledger):
    reservation = ledger.reserve(1.0)
    if reservation is None:
        return False
    ledger.release(reservation)
    return True


def ownership_moves_to_caller(ledger):
    reservation = ledger.reserve(0.1)
    return reservation
