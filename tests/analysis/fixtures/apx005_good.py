"""APX005 good fixture: snapshot admission first, snapshot-typed helpers."""


class GoodMechanism:
    def run(self, query, accuracy, table):
        table = table.snapshot()  # admission: pins one version
        histogram = query.histogram(table)
        return self._finish(query, histogram)

    def helper(self, query, snapshot):
        return query.histogram(snapshot)  # snapshot-named params are trusted

    def metadata(self, table):
        return table.version_token  # data-independent surface is allowed

    def _finish(self, query, histogram):
        return histogram
