"""APX003 good fixture: one consistent order, RLock re-entry allowed."""

import threading


class Outer:
    def __init__(self, inner: "Inner"):
        self._lock = threading.RLock()
        self._inner = inner

    def op(self):
        with self._lock:
            self.helper()

    def helper(self):
        with self._lock:  # RLock re-entry by the holder: reentrant, fine
            self._inner.op()  # always Outer._lock -> Inner._lock


class Inner:
    def __init__(self):
        self._lock = threading.Lock()

    def op(self):
        with self._lock:
            pass
