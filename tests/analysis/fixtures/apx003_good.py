"""APX003 good fixture: one consistent order, RLock re-entry allowed."""

import threading


class Outer:
    def __init__(self, inner: "Inner"):
        self._lock = threading.RLock()
        self._inner = inner

    def op(self):
        with self._lock:
            self.helper()

    def helper(self):
        with self._lock:  # RLock re-entry by the holder: reentrant, fine
            self._inner.op()  # always Outer._lock -> Inner._lock


class Inner:
    def __init__(self):
        self._lock = threading.Lock()

    def op(self):
        with self._lock:
            pass


class Striped:
    """Striped lock array used correctly: one stripe at a time, plus an
    MPSC-drain-style combiner whose election lock is only try-acquired."""

    def __init__(self, n: int):
        locks = [threading.Lock() for _ in range(n)]
        self._stripe_locks = locks
        self._drain_lock = threading.Lock()
        self._books = threading.Lock()

    def get(self, i: int):
        with self._stripe_locks[i]:  # a single stripe: fine
            pass

    def combiner(self):
        if self._drain_lock.acquire(blocking=False):  # trylock: no edge
            try:
                with self._books:
                    pass
            finally:
                self._drain_lock.release()
