"""APX004 good fixture: every registered site fires, every firing site is registered."""

FAILPOINT_SITES = (
    "store.save.write",
    "store.load.read",
)


def fail_point(site):
    pass


def save(payload):
    fail_point("store.save.write")


def load(path):
    fail_point("store.load.read")
