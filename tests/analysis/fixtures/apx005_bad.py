"""APX005 bad fixture: a mechanism evaluating over a raw table."""


class BadMechanism:
    def run(self, query, accuracy, table):
        histogram = query.histogram(table)  # raw table leaks into evaluation
        rows = table.num_rows  # data-dependent attribute before admission
        return histogram, rows
