"""APX003 bad fixture: a two-lock cycle plus a plain-Lock self-deadlock."""

import threading


class Right:
    def __init__(self, left: "Left"):
        self._lock = threading.Lock()
        self._left = left

    def backward(self):
        with self._lock:
            self._left.touch()  # Right._lock -> Left._lock

    def grab(self):
        with self._lock:
            pass


class Left:
    def __init__(self, right: "Right"):
        self._lock = threading.Lock()
        self._right = right

    def forward(self):
        with self._lock:
            self._right.grab()  # Left._lock -> Right._lock: cycle!

    def touch(self):
        with self._lock:
            pass


class Selfish:
    def __init__(self):
        self._lock = threading.Lock()

    def outer(self):
        with self._lock:
            self.inner()  # re-acquires the same non-reentrant Lock

    def inner(self):
        with self._lock:
            pass


class CrossedStripes:
    def __init__(self, n: int):
        self._stripe_locks = [threading.Lock() for _ in range(n)]

    def transfer(self, i: int, j: int):
        with self._stripe_locks[i]:
            with self._stripe_locks[j]:  # two stripes nested: unorderable
                pass
