"""APX002 bad fixture: table-keyed caches with no version marker."""


class Planner:
    def __init__(self):
        self._plan_cache = {}

    def lookup(self, table, name):
        return self._plan_cache.get((table, name))

    def store(self, table, name, plan):
        self._plan_cache[(table, name)] = plan
