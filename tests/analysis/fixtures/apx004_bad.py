"""APX004 bad fixture: registry and call sites disagree in both directions."""

FAILPOINT_SITES = (
    "store.save.write",
    "orphan.site.never_fired",
)


def fail_point(site):
    pass


def save(payload):
    fail_point("store.save.write")
    fail_point("store.save.unregistered")  # not in FAILPOINT_SITES


def crash_anywhere(site_name):
    fail_point(site_name)  # dynamic name: unauditable
