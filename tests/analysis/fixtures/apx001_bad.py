"""APX001 bad fixture: three distinct ways to lose a reservation."""


def leak_on_exception(ledger, journal):
    reservation = ledger.reserve(0.5)
    if reservation is None:
        return None
    journal.append("reserve")  # a raise here leaks the live reservation
    ledger.charge(reservation=reservation)
    return True


def discarded(ledger):
    ledger.reserve(0.25)  # result dropped: can never be charged or released


def overwrite(ledger):
    reservation = ledger.reserve(0.1)
    reservation = ledger.reserve(0.2)  # first reservation is orphaned
    ledger.release(reservation)
