"""APX002 good fixture: versioned and table-free cache keys."""


class Planner:
    def __init__(self):
        self._plan_cache = {}
        self._name_memo = {}

    def lookup(self, table, name):
        return self._plan_cache.get((table.version_token, name))

    def store(self, table, name, plan):
        self._plan_cache[(table.version_token, name)] = plan

    def structural(self, name, plan):
        self._name_memo[name] = plan  # no table involved: out of scope

    def stamped(self, snapshot, name):
        return self._plan_cache.get((snapshot.domain_stamp, name))
