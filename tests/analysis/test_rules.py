"""Per-rule fixture tests: each bad fixture trips exactly its own rule.

Every rule has a paired good/bad fixture under ``fixtures/``.  The bad
fixture must produce at least one finding *of that rule and no other* when
the full rule catalog runs over it; the good fixture must be completely
clean.  That pins both directions: the rule fires on the pattern it
documents, and the rules do not bleed into each other's fixtures.
"""

import ast
from pathlib import Path

import pytest

from repro.analysis.findings import Baseline
from repro.analysis.runner import analyze
from repro.analysis.rules import all_rules
from repro.analysis.rules.common import SourceFile

FIXTURES = Path(__file__).parent / "fixtures"

#: rule code -> (fixture stem, path the SourceFile must claim, min bad findings)
#: APX004/APX005 only fire on their registry/scope paths, so fixtures are
#: mounted at the paths the rules watch.
CASES = {
    "APX001": ("apx001", "src/repro/core/example.py", 3),
    "APX002": ("apx002", "src/repro/core/example.py", 2),
    "APX003": ("apx003", "src/repro/core/example.py", 3),
    "APX004": ("apx004", "src/repro/reliability/faults.py", 3),
    "APX005": ("apx005", "src/repro/mechanisms/example.py", 2),
}


def load_fixture(stem: str, flavor: str, path: str) -> SourceFile:
    source = (FIXTURES / f"{stem}_{flavor}.py").read_text()
    return SourceFile(path=path, source=source, tree=ast.parse(source))


def run_all_rules(sf: SourceFile):
    findings = []
    for rule in all_rules():
        check = getattr(rule, "check", None)
        if callable(check):
            findings.extend(check(sf))
        check_project = getattr(rule, "check_project", None)
        if callable(check_project):
            findings.extend(check_project([sf], "."))
    return findings


@pytest.mark.parametrize("code", sorted(CASES))
def test_bad_fixture_trips_exactly_its_rule(code):
    stem, path, min_findings = CASES[code]
    findings = run_all_rules(load_fixture(stem, "bad", path))
    assert findings, f"{code} bad fixture produced no findings"
    assert {f.rule for f in findings} == {code}
    assert len(findings) >= min_findings


@pytest.mark.parametrize("code", sorted(CASES))
def test_good_fixture_is_clean(code):
    stem, path, _ = CASES[code]
    findings = run_all_rules(load_fixture(stem, "good", path))
    assert findings == []


class TestFindingShape:
    def test_findings_carry_stable_keys_and_locations(self):
        stem, path, _ = CASES["APX001"]
        findings = run_all_rules(load_fixture(stem, "bad", path))
        for finding in findings:
            assert finding.key == f"{finding.rule}|{finding.path}|{finding.context}"
            assert finding.line > 0
            assert finding.message
        # contexts are line-free: reformatting must not invalidate a baseline
        assert not any(str(f.line) in f.context for f in findings)

    def test_apx001_names_the_leaking_exit_kinds(self):
        stem, path, _ = CASES["APX001"]
        findings = run_all_rules(load_fixture(stem, "bad", path))
        leaks = [f for f in findings if "can leave" in f.message]
        assert any("exception path" in f.message for f in leaks)


class TestRepositoryTree:
    """The committed tree itself must satisfy every rule."""

    def test_src_analyzes_clean_against_the_committed_baseline(self):
        root = Path(__file__).parents[2]
        baseline = Baseline.load(str(root / "analysis-baseline.json"))
        report = analyze([str(root / "src")], root=str(root), baseline=baseline)
        assert report.errors == []
        assert report.files_analyzed > 50
        rendered = "\n".join(f.render() for f in report.new)
        assert report.new == [], f"non-baselined findings:\n{rendered}"

    def test_known_lock_edges_are_extracted(self):
        """Guard against the lock-graph extraction silently going blind."""
        from repro.analysis.runner import discover, parse_files
        from repro.analysis.rules.lock_order import build_lock_graph

        root = Path(__file__).parents[2]
        files, _ = parse_files(
            discover([str(root / "src")], str(root)), str(root)
        )
        graph = build_lock_graph(files)
        assert len(graph.decls) >= 15
        pairs = graph.edge_pairs()
        assert (
            "repro.core.accounting.PrivacyLedger._lock",
            "repro.reliability.journal.LedgerJournal._lock",
        ) in pairs
        assert (
            "repro.core.accounting.PrivacyLedger._lock",
            "repro.service.budget.SharedBudgetPool._lock",
        ) in pairs
        assert graph.cycles() == []
        # The striped mask/memo LRU registers its per-stripe lock list as
        # one array-flagged declaration...
        stripes = graph.decls["repro.core.lru.LRUCache._stripe_locks"]
        assert stripes.array and stripes.kind == "Lock"
        # ...and the MPSC commit-drain lock is declared but adds no edges:
        # the combiner only ever try-acquires it (trylocks cannot deadlock).
        drain = "repro.service.budget.SharedBudgetPool._commit_drain_lock"
        assert drain in graph.decls and not graph.decls[drain].array
        assert drain in {lock for lock, _path, _line in graph.nonblocking_sites}
        assert drain not in {e.held for e in graph.edges}

    def test_striped_array_subscript_acquisition_is_resolved(self):
        """``with self._locks[i]:`` must resolve to the array's identity."""
        from repro.analysis.rules.lock_order import build_lock_graph

        stem, path, _ = CASES["APX003"]
        graph = build_lock_graph([load_fixture(stem, "bad", path)])
        array_id = "repro.core.example.CrossedStripes._stripe_locks"
        assert graph.decls[array_id].array
        assert (array_id, array_id) in graph.edge_pairs()
