"""Concurrency stress: joint budget safety and cache integrity under threads.

These are the acceptance tests of the concurrent service layer:

* with a shared budget ``B`` and >= 8 threads issuing interleaved
  ``preview_cost``/``explore``, the total charged epsilon never exceeds ``B``
  and the merged transcript passes the Theorem 6.2 validity check;
* the process-wide memo layers (generic LRU, workload-matrix memo) lose no
  updates and corrupt no counters when hammered concurrently.
"""

import threading

import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.lru import LRUCache
from repro.mechanisms.registry import default_registry
from repro.queries.builders import histogram_workload
from repro.queries.query import WorkloadCountingQuery
from repro.queries.workload import Workload, clear_matrix_cache
from repro.service import BudgetPolicy, ExplorationService
from tests.service.util import small_table

N_THREADS = 8
ACC = AccuracySpec(alpha=100.0, beta=5e-4)


def run_threads(worker, n_threads=N_THREADS):
    barrier = threading.Barrier(n_threads)
    errors = []

    def wrapped(i):
        barrier.wait()
        try:
            worker(i)
        except Exception as exc:  # noqa: BLE001 - surfaced via assertion below
            errors.append(f"thread {i}: {type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=wrapped, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []


@pytest.fixture(scope="module")
def table():
    return small_table(2_000)


class TestConcurrentBudgetSafety:
    @pytest.mark.parametrize(
        "policy,max_analysts",
        [(BudgetPolicy.FIRST_COME, None), (BudgetPolicy.FIXED_SHARE, N_THREADS)],
    )
    def test_total_epsilon_never_exceeds_budget(self, table, policy, max_analysts):
        # Size B so only a fraction of the explores can be admitted: the
        # threads must race each other into denials without overspending.
        scratch = ExplorationService(
            table, budget=1e9, registry=default_registry(mc_samples=200), seed=0
        )
        scratch.register_analyst("probe")
        query = WorkloadCountingQuery(
            histogram_workload("amount", start=0, stop=10_000, bins=8), name="hist"
        )
        unit = min(up for _, up in scratch.preview_cost("probe", query, ACC).values())
        budget = 5.5 * unit

        service = ExplorationService(
            table,
            budget=budget,
            policy=policy,
            max_analysts=max_analysts,
            registry=default_registry(mc_samples=200),
            seed=1,
            batch_window=0.0,
        )
        for i in range(N_THREADS):
            service.register_analyst(f"t{i}")

        def worker(i):
            query_i = WorkloadCountingQuery(
                histogram_workload(
                    "amount", start=0, stop=10_000, bins=8 + 2 * (i % 3)
                ),
                name=f"hist-{i}",
            )
            for _ in range(3):
                service.preview_cost(f"t{i}", query_i, ACC)
                service.explore(f"t{i}", query_i, ACC)

        run_threads(worker)

        merged = service.merged_transcript()
        spent = merged.total_epsilon()
        assert spent <= budget + 1e-9
        assert service.budget_spent == pytest.approx(spent)
        assert service.pool.reserved == pytest.approx(0.0)
        # 24 explores were attempted against ~5.5 affordable units: some must
        # have been denied, and every denial costs nothing.
        assert len(merged.denied()) > 0
        assert all(e.epsilon_spent == 0 for e in merged.denied())
        # Theorem 6.2 over the merged, cross-analyst transcript.
        assert merged.is_valid(budget)
        assert service.validate()

    def test_concurrent_explores_for_one_analyst_serialize(self, table):
        """Same-analyst requests must not race on the engine's noise RNG."""
        service = ExplorationService(
            table,
            budget=50.0,
            registry=default_registry(mc_samples=200),
            seed=4,
            batch_window=0.0,
        )
        service.register_analyst("solo")
        query = WorkloadCountingQuery(
            histogram_workload("amount", start=0, stop=10_000, bins=8), name="hist"
        )

        def worker(i):
            result = service.explore("solo", query, ACC)
            assert not result.denied

        run_threads(worker)
        handle = service.session("solo")
        transcript = handle.transcript()
        assert len(transcript) == N_THREADS
        assert transcript.is_valid(handle.ledger.budget)
        assert service.validate()

    def test_per_analyst_transcripts_also_valid(self, table):
        service = ExplorationService(
            table,
            budget=2.0,
            registry=default_registry(mc_samples=200),
            seed=2,
            batch_window=0.0,
        )
        handles = [service.register_analyst(f"t{i}") for i in range(N_THREADS)]
        query = WorkloadCountingQuery(
            histogram_workload("amount", start=0, stop=10_000, bins=8), name="hist"
        )

        def worker(i):
            service.explore(f"t{i}", query, ACC)

        run_threads(worker)
        for handle in handles:
            assert handle.transcript().is_valid(handle.ledger.budget)


class TestCacheIntegrityUnderThreads:
    def test_lru_no_lost_updates(self):
        cache = LRUCache(max_entries=N_THREADS * 100)
        per_thread = 100

        def worker(i):
            for j in range(per_thread):
                key = (i, j)
                cache.put(key, i * per_thread + j + 1)
                value = cache.get(key)
                # The cache is large enough that nothing is evicted: every
                # thread must read back exactly what it wrote.
                assert value == i * per_thread + j + 1

        run_threads(worker)
        stats = cache.stats()
        assert stats["size"] == N_THREADS * per_thread
        assert stats["hits"] == N_THREADS * per_thread
        assert stats["misses"] == 0

    def test_lru_eviction_race_stays_consistent(self):
        cache = LRUCache(max_entries=16)

        def worker(i):
            for j in range(500):
                cache.put((i, j % 32), j)
                cache.get((i, (j * 7) % 32))

        run_threads(worker)
        stats = cache.stats()
        assert stats["size"] <= 16
        assert stats["hits"] + stats["misses"] == N_THREADS * 500

    def test_concurrent_matrix_memo_single_build(self, table):
        clear_matrix_cache()
        workload = histogram_workload("amount", start=0, stop=10_000, bins=12)
        results = [None] * N_THREADS

        def worker(i):
            # Structurally equal but distinct Workload objects, as they
            # would arrive from independent analysts.
            clone = Workload(list(workload.predicates), list(workload.names))
            results[i] = clone.analyze(table.schema)

        run_threads(worker)
        # All threads got value-identical matrices; after the first build the
        # memo serves everyone (a race may build it a handful of times at
        # most, never corrupt it).
        first = results[0]
        for matrix in results[1:]:
            assert matrix.shape == first.shape
            assert matrix.sensitivity == first.sensitivity
            assert (matrix.matrix == first.matrix).all()
