"""ExplorationService: sessions, policies, batching and merged transcripts."""

import pytest

from repro.bench.harness import RUN_TIMINGS
from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import ApexError
from repro.data.table import Table
from repro.mechanisms.registry import default_registry
from repro.queries.builders import histogram_workload
from repro.queries.query import WorkloadCountingQuery
from repro.service import BudgetPolicy, ExplorationService
from tests.service.util import small_table


@pytest.fixture(scope="module")
def table() -> Table:
    return small_table(2_000)


def make_service(table, **kwargs):
    kwargs.setdefault("registry", default_registry(mc_samples=200))
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("batch_window", 0.0)
    return ExplorationService(table, budget=kwargs.pop("budget", 5.0), **kwargs)


def hist_query(table, bins=8, name="hist"):
    return WorkloadCountingQuery(
        histogram_workload("amount", start=0, stop=10_000, bins=bins), name=name
    )


ACC = AccuracySpec(alpha=200.0, beta=5e-4)


class TestRegistration:
    def test_autonamed_sessions(self, table):
        service = make_service(table)
        first = service.register_analyst()
        second = service.register_analyst()
        assert first.analyst != second.analyst
        assert service.session(first.analyst) is first

    def test_duplicate_name_rejected(self, table):
        service = make_service(table)
        service.register_analyst("alice")
        with pytest.raises(ApexError, match="already registered"):
            service.register_analyst("alice")

    def test_unknown_table_rejected(self, table):
        service = make_service(table)
        with pytest.raises(ApexError, match="unknown table"):
            service.register_analyst("alice", table="nope")

    def test_unknown_analyst_rejected(self, table):
        service = make_service(table)
        with pytest.raises(ApexError, match="no session"):
            service.explore("ghost", hist_query(table), ACC)

    def test_fixed_share_mints_equal_shares_and_caps_headcount(self, table):
        service = make_service(
            table, budget=4.0, policy=BudgetPolicy.FIXED_SHARE, max_analysts=4
        )
        handles = [service.register_analyst(f"a{i}") for i in range(4)]
        assert all(h.ledger.budget == pytest.approx(1.0) for h in handles)
        with pytest.raises(ApexError, match="full"):
            service.register_analyst("a4")

    def test_fixed_share_requires_max_analysts(self, table):
        with pytest.raises(ApexError, match="max_analysts"):
            make_service(table, policy="fixed-share")


class TestExploration:
    def test_explore_charges_pool_and_merged_transcript(self, table):
        service = make_service(table)
        service.register_analyst("alice")
        service.register_analyst("bob")
        r1 = service.explore("alice", hist_query(table), ACC)
        r2 = service.explore("bob", hist_query(table), ACC)
        assert not r1.denied and not r2.denied
        merged = service.merged_transcript()
        assert len(merged) == 2
        assert {e.query_name for e in merged} == {"alice:hist", "bob:hist"}
        assert service.budget_spent == pytest.approx(
            r1.epsilon_spent + r2.epsilon_spent
        )
        assert service.validate()

    def test_explore_text_and_preview(self, table):
        service = make_service(table)
        service.register_analyst("alice")
        text = (
            "BIN D ON COUNT(*) WHERE W = {"
            "  amount BETWEEN 0 AND 5000, amount BETWEEN 5000 AND 10000"
            "} ERROR 200 CONFIDENCE 0.9995;"
        )
        result = service.explore_text("alice", text)
        assert not result.denied
        costs = service.preview_cost("alice", hist_query(table), ACC)
        assert costs and all(low <= up for low, up in costs.values())

    def test_first_come_exhaustion_denies_latecomer(self, table):
        scratch = make_service(table)
        scratch.register_analyst("probe")
        costs = scratch.preview_cost("probe", hist_query(table), ACC)
        unit = min(up for _, up in costs.values())

        service = make_service(table, budget=1.5 * unit)
        service.register_analyst("greedy")
        service.register_analyst("late")
        first = service.explore("greedy", hist_query(table), ACC)
        assert not first.denied
        second = service.explore("late", hist_query(table), ACC)
        assert second.denied
        merged = service.merged_transcript()
        assert len(merged.denied()) == 1
        assert service.validate()

    def test_fixed_share_protects_other_analysts(self, table):
        scratch = make_service(table)
        scratch.register_analyst("probe")
        costs = scratch.preview_cost("probe", hist_query(table), ACC)
        unit = min(up for _, up in costs.values())

        # Two equal shares; each share fits one query but not two.
        service = make_service(
            table,
            budget=3.0 * unit,
            policy=BudgetPolicy.FIXED_SHARE,
            max_analysts=2,
        )
        service.register_analyst("greedy")
        service.register_analyst("other")
        assert not service.explore("greedy", hist_query(table), ACC).denied
        assert service.explore("greedy", hist_query(table), ACC).denied
        # The other analyst's share is untouched by greedy's attempts.
        assert not service.explore("other", hist_query(table), ACC).denied

    def test_shared_translator_memo_across_analysts(self, table):
        service = make_service(table)
        service.register_analyst("alice")
        service.register_analyst("bob")
        q = hist_query(table, bins=6)
        service.preview_cost("alice", q, ACC)
        before = service.stats()["translations"]["hits"]
        service.preview_cost(
            "bob",
            WorkloadCountingQuery(
                histogram_workload("amount", start=0, stop=10_000, bins=6),
                name="hist",
            ),
            ACC,
        )
        assert service.stats()["translations"]["hits"] > before


class TestPreviewBatching:
    def test_warm_preview_bypasses_batching_window(self, table):
        service = make_service(table, batch_window=0.05)
        service.register_analyst("alice")
        q = hist_query(table, bins=7)
        service.preview_cost("alice", q, ACC)  # cold: goes through the batcher
        computed_after_cold = service.stats()["batching"]["computed"]
        import time

        start = time.perf_counter()
        service.preview_cost("alice", q, ACC)  # warm: must skip the window
        warm_seconds = time.perf_counter() - start
        assert service.stats()["batching"]["computed"] == computed_after_cold
        assert warm_seconds < 0.05  # did not sleep the batch window

    def test_preview_results_are_independent_copies(self, table):
        service = make_service(table)
        service.register_analyst("alice")
        service.register_analyst("bob")
        q = hist_query(table, bins=9)
        first = service.preview_cost("alice", q, ACC)
        second = service.preview_cost("bob", q, ACC)
        assert first == second
        first.clear()  # one analyst mutating its dict must not affect others
        assert second and service.preview_cost("alice", q, ACC) == second


class TestObservability:
    def test_latency_recorded_in_run_timings_and_aggregates(self, table):
        service = make_service(table)
        service.register_analyst("alice")
        RUN_TIMINGS.pop("service.preview_cost", None)
        RUN_TIMINGS.pop("service.explore", None)
        service.preview_cost("alice", hist_query(table), ACC)
        service.explore("alice", hist_query(table), ACC)
        assert RUN_TIMINGS["service.preview_cost"] > 0
        assert RUN_TIMINGS["service.explore"] > 0
        stats = service.latency_stats()
        assert stats["preview_cost"]["count"] == 1
        assert stats["explore"]["count"] == 1
        assert stats["explore"]["max_seconds"] >= stats["explore"]["mean_seconds"]

    def test_stats_snapshot_shape(self, table):
        service = make_service(table)
        service.register_analyst("alice")
        stats = service.stats()
        assert stats["policy"] == "first-come"
        assert "alice" in stats["sessions"]
        assert set(stats["budget"]) == {
            "budget",
            "spent",
            "reserved",
            "remaining",
            "batched_commits",
            "commit_batches",
            "commit_batch_sizes",
        }
        assert set(stats["batching"]) == {
            "computed",
            "coalesced",
            "failed",
            "window_seconds",
            "linger_seconds",
            "interarrival_ewma_seconds",
            "interarrival_samples",
        }
        assert stats["store"] is None  # no ArtifactStore configured

    def test_single_table_shorthand_and_table_required_when_ambiguous(self, table):
        service = ExplorationService(
            {"a": table, "b": table}, budget=1.0, seed=0, batch_window=0.0
        )
        with pytest.raises(ApexError, match="pass table="):
            service.register_analyst("alice")
        handle = service.register_analyst("alice", table="b")
        assert handle.table == "b"
