"""The replay machinery and the ``python -m repro.service`` CLI."""

import json

import pytest

from repro.core.exceptions import ApexError
from repro.service import ExplorationService, default_script, load_script, replay
from repro.service.__main__ import main
from repro.service.replay import AnalystScript, ScriptRequest
from tests.service.util import small_table


class TestScripts:
    def test_default_script_round_robins_tables(self):
        scripts = default_script(4, tables=("adult", "taxi"))
        assert [s.table for s in scripts] == ["adult", "taxi", "adult", "taxi"]
        assert all(s.requests for s in scripts)

    def test_default_script_rejects_unknown_table(self):
        with pytest.raises(ApexError):
            default_script(1, tables=("mystery",))

    def test_script_request_validates_op(self):
        with pytest.raises(ApexError):
            ScriptRequest(op="drop", text="BIN D ...;")

    def test_load_script_round_trip(self, tmp_path):
        payload = {
            "analysts": [
                {
                    "name": "alice",
                    "table": "adult",
                    "requests": [
                        {"op": "preview", "text": "BIN D ON COUNT(*) ... ;"}
                    ],
                }
            ]
        }
        path = tmp_path / "script.json"
        path.write_text(json.dumps(payload))
        scripts = load_script(str(path))
        assert scripts[0].analyst == "alice"
        assert scripts[0].requests[0].op == "preview"

    def test_load_script_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text("{}")
        with pytest.raises(ApexError):
            load_script(str(path))


class TestReplay:
    def test_replay_merges_and_validates(self):
        table = small_table(2_000)
        service = ExplorationService(
            {"bench": table}, budget=5.0, seed=0, batch_window=0.0
        )
        text = (
            "BIN D ON COUNT(*) WHERE W = {"
            "  amount BETWEEN 0 AND 5000, amount BETWEEN 5000 AND 10000"
            "} ERROR 200 CONFIDENCE 0.9995;"
        )
        scripts = [
            AnalystScript(
                analyst=f"a{i}",
                table="bench",
                requests=(
                    ScriptRequest("preview", text),
                    ScriptRequest("explore", text),
                ),
            )
            for i in range(4)
        ]
        report = replay(service, scripts)
        assert report.transcript_valid
        assert report.epsilon_spent <= report.budget + 1e-9
        assert len(report.outcomes) == 8
        assert not [o for o in report.outcomes if o.error]
        payload = report.to_json()
        assert payload["transcript_valid"] is True
        assert len(payload["outcomes"]) == 8


class TestCli:
    def test_cli_replays_and_writes_report(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            [
                "--analysts",
                "3",
                "--adult-rows",
                "2000",
                "--budget",
                "8.0",
                "--seed",
                "1",
                "--output",
                str(out),
            ]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "merged transcript valid (Theorem 6.2): True" in captured
        payload = json.loads(out.read_text())
        assert payload["transcript_valid"] is True
        assert payload["epsilon_spent"] <= payload["budget"] + 1e-9

    def test_cli_fixed_share_sizes_shares_from_script(self, tmp_path, capsys):
        """--script analyst count wins over --analysts for fixed shares."""
        text = (
            "BIN D ON COUNT(*) WHERE W = {"
            "  age BETWEEN 20 AND 40, age BETWEEN 40 AND 60"
            "} ERROR 160 CONFIDENCE 0.9995;"
        )
        payload = {
            "analysts": [
                {
                    "name": f"a{i}",
                    "table": "adult",
                    "requests": [{"op": "explore", "text": text}],
                }
                for i in range(5)  # more analysts than the default --analysts 4
            ]
        }
        path = tmp_path / "script.json"
        path.write_text(json.dumps(payload))
        code = main(
            [
                "--script",
                str(path),
                "--policy",
                "fixed-share",
                "--adult-rows",
                "2000",
                "--budget",
                "10.0",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "replayed 5 analysts" in out
        assert "errors: 0" in out

    def test_cli_fixed_share(self, capsys):
        code = main(
            [
                "--analysts",
                "2",
                "--adult-rows",
                "1500",
                "--policy",
                "fixed-share",
                "--budget",
                "6.0",
            ]
        )
        assert code == 0
        assert "policy=fixed-share" in capsys.readouterr().out
