"""Streaming ingest: ``append_rows`` between requests invalidates correctly.

The acceptance scenario for the versioned backend: a structurally identical
``preview_cost`` issued before and after the owner appends rows.  The second
call must never reuse a *stale* artifact: it misses the exact
(version-scoped) memo keys, and then either **revalidates** (the append
provably preserved every referenced attribute domain, so the
data-independent matrix/translation is re-tagged for the new version -- see
``docs/store.md``) or **rebuilds** (the append changed a referenced
domain).  Every data-dependent answer served afterwards must match the
reference semantics on the grown data -- under concurrency as well as
single-threaded.
"""

import threading

import numpy as np
import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import ApexError
from repro.mechanisms.registry import default_registry
from repro.queries.builders import histogram_workload
from repro.queries.query import WorkloadCountingQuery
from repro.queries.reference import reference_mask
from repro.queries.workload import Workload, clear_matrix_cache
from repro.service import ExplorationService
from repro.service.replay import AnalystScript, ScriptRequest, replay

from tests.service.util import small_table


def make_service(table, **kwargs) -> ExplorationService:
    kwargs.setdefault("budget", 1e6)
    kwargs.setdefault("registry", default_registry(mc_samples=200))
    kwargs.setdefault("seed", 3)
    kwargs.setdefault("batch_window", 0.0)
    return ExplorationService(table, **kwargs)


def make_query(bins: int = 6) -> WorkloadCountingQuery:
    # Re-built per call: structurally equal but distinct objects, as
    # independent requests would be.
    return WorkloadCountingQuery(
        histogram_workload("amount", start=0, stop=10_000, bins=bins),
        name="stream-hist",
    )


def append_batch(n: int = 300, seed: int = 77) -> list[dict]:
    rng = np.random.default_rng(seed)
    regions = [f"region-{i:02d}" for i in range(12)]
    return [
        {
            "region": regions[int(rng.integers(12))],
            "channel": "web",
            "amount": float(rng.uniform(0, 10_000)),
            "age": float(rng.integers(0, 101)),
        }
        for _ in range(n)
    ]


ACCURACY = AccuracySpec(alpha=100.0, beta=5e-4)


class TestAppendBetweenPreviews:
    def test_domain_preserving_append_revalidates_instead_of_rebuilding(self):
        """The query references only ``amount`` (a numeric attribute whose
        declared domain can never change under appends), so the post-append
        preview must re-tag the cached translation/matrix for the new
        version -- zero rebuilds -- while still missing the exact
        version-scoped key (no *stale* hit)."""
        clear_matrix_cache()
        table = small_table()
        service = make_service(table)
        service.register_analyst("alice")

        def counters() -> tuple[int, int, int]:
            stats = service.stats()
            return (
                stats["translations"]["hits"],
                stats["translations"]["revalidated"],
                stats["workload_matrices"]["built"],
            )

        first = service.preview_cost("alice", make_query(), ACCURACY)
        hits_0, revalidated_0, built_0 = counters()
        assert built_0 == 1

        # Warm repeat on the same version: exact memo hit, nothing rebuilt.
        warm = service.preview_cost("alice", make_query(), ACCURACY)
        hits_1, revalidated_1, built_1 = counters()
        assert warm == first
        assert hits_1 > hits_0
        assert (revalidated_1, built_1) == (revalidated_0, built_0)

        version = service.append_rows("default", append_batch())
        assert version.ordinal == 1
        assert service.stats()["tables"]["default"]["shards"] == 2

        # Structurally identical preview after the append: the exact key
        # misses (no stale hit), the fingerprint tier re-tags, and the
        # answer is the same data-independent translation.
        post = service.preview_cost("alice", make_query(), ACCURACY)
        hits_2, revalidated_2, built_2 = counters()
        assert post == first
        assert hits_2 == hits_1  # no stale exact-key hit
        assert revalidated_2 == revalidated_1 + 1  # re-tagged...
        assert built_2 == built_1  # ...not rebuilt

        # The re-tag made the new version warm: a further repeat hits the
        # exact tier again.
        service.preview_cost("alice", make_query(), ACCURACY)
        hits_3, revalidated_3, built_3 = counters()
        assert hits_3 > hits_2
        assert (revalidated_3, built_3) == (revalidated_2, built_2)

    def test_domain_changing_append_rebuilds(self):
        """An append that introduces a previously unobserved categorical
        value changes the referenced domain fingerprint, so the post-append
        preview must rebuild rather than revalidate."""
        from repro.queries.predicates import Comparison
        from repro.queries.workload import Workload

        clear_matrix_cache()
        base = small_table()
        # Restrict the observed regions to the first six of the twelve the
        # schema declares, so an append can introduce a *legal* new value.
        rows = []
        for i in range(400):
            row = base.row(i)
            row["region"] = f"region-{i % 6:02d}"
            rows.append(row)
        from repro.data.table import Table

        table = Table.from_rows(base.schema, rows)
        service = make_service(table)
        service.register_analyst("alice")

        def make_region_query() -> WorkloadCountingQuery:
            return WorkloadCountingQuery(
                Workload(
                    [Comparison("region", "==", f"region-{i:02d}") for i in range(6)]
                ),
                name="region-hist",
            )

        def counters() -> tuple[int, int]:
            stats = service.stats()
            return (
                stats["translations"]["revalidated"],
                stats["workload_matrices"]["built"],
            )

        service.preview_cost("alice", make_region_query(), ACCURACY)
        revalidated_0, built_0 = counters()

        # Preserving append: only already-observed regions.
        service.append_rows(
            "default", [dict(rows[0], region="region-03") for _ in range(5)]
        )
        service.preview_cost("alice", make_region_query(), ACCURACY)
        revalidated_1, built_1 = counters()
        assert revalidated_1 == revalidated_0 + 1
        assert built_1 == built_0

        # Changing append: region-06 is declared but was never observed.
        service.append_rows(
            "default", [dict(rows[0], region="region-06") for _ in range(5)]
        )
        service.preview_cost("alice", make_region_query(), ACCURACY)
        revalidated_2, built_2 = counters()
        assert revalidated_2 == revalidated_1  # fingerprints differ: no re-tag
        assert built_2 > built_1  # conservative rebuild

    def test_post_append_answers_match_reference_semantics(self):
        clear_matrix_cache()
        table = small_table()
        service = make_service(table)
        service.register_analyst("alice")
        tight = AccuracySpec(alpha=0.5, beta=1e-3)  # sub-row noise

        query = make_query()
        service.preview_cost("alice", query, ACCURACY)
        service.append_rows("default", append_batch())

        result = service.explore("alice", make_query(), tight)
        assert result
        truth = np.array(
            [reference_mask(p, table).sum() for p in query.workload.predicates],
            dtype=float,
        )
        assert len(table) == 2_300  # the service mutated the shared table
        assert np.allclose(result.noisy_counts, truth, atol=1.0)

    def test_unknown_table_rejected(self):
        service = make_service(small_table())
        with pytest.raises(ApexError, match="unknown table"):
            service.append_rows("nope", append_batch(1))

    def test_refresh_table_resets_rows(self):
        table = small_table()
        service = make_service(table)
        service.refresh_table("default", append_batch(50))
        assert len(table) == 50
        assert service.stats()["tables"]["default"]["version"] == 1


class TestStreamingUnderConcurrency:
    def test_appends_between_request_rounds_stay_consistent(self):
        """Analysts hammer previews while the owner appends between rounds;
        every answer must be internally consistent and the final state must
        match the reference semantics on the fully grown table."""
        clear_matrix_cache()
        table = small_table(1_000)
        service = make_service(table)
        n_analysts, n_rounds = 4, 3
        for i in range(n_analysts):
            service.register_analyst(f"a{i}")
        errors: list[str] = []
        round_barrier = threading.Barrier(n_analysts + 1)  # analysts + owner

        def analyst(i: int) -> None:
            try:
                for _ in range(n_rounds):
                    round_barrier.wait()
                    service.preview_cost(f"a{i}", make_query(), ACCURACY)
                    round_barrier.wait()
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(f"a{i}: {type(exc).__name__}: {exc}")

        def owner() -> None:
            try:
                for round_index in range(n_rounds):
                    round_barrier.wait()
                    round_barrier.wait()  # requests of this round are done
                    if round_index < n_rounds - 1:
                        service.append_rows("default", append_batch(100, seed=round_index))
            except Exception as exc:  # noqa: BLE001
                errors.append(f"owner: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=analyst, args=(i,)) for i in range(n_analysts)
        ] + [threading.Thread(target=owner)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == []
        assert len(table) == 1_000 + (n_rounds - 1) * 100
        assert table.version_token.ordinal == n_rounds - 1
        query = make_query()
        truth = np.array(
            [reference_mask(p, table).sum() for p in query.workload.predicates],
            dtype=float,
        )
        assert np.array_equal(query.true_counts(table), truth)
        assert service.validate()


class TestReplayStreamingScript:
    def test_append_rows_op_replays_between_requests(self):
        clear_matrix_cache()
        table = small_table()
        service = make_service(table)
        preview_text = (
            "BIN D ON COUNT(*) WHERE W = {amount BETWEEN 0 AND 5000, "
            "amount BETWEEN 5000 AND 10000} ERROR 100 CONFIDENCE 0.9995;"
        )
        script = AnalystScript(
            analyst="alice",
            table="default",
            requests=(
                ScriptRequest("preview", preview_text),
                ScriptRequest("append_rows", rows=tuple(append_batch(40))),
                ScriptRequest("preview", preview_text),
            ),
        )
        report = replay(service, [script])
        assert [o.error for o in report.outcomes] == [None, None, None]
        ops = [o.op for o in report.outcomes]
        assert ops.count("append_rows") == 1
        append_outcome = next(
            o for o in report.outcomes if o.op == "append_rows"
        )
        assert "40 rows" in append_outcome.query_name
        assert len(table) == 2_040
        assert report.transcript_valid

    def test_append_rows_request_validation(self):
        with pytest.raises(ApexError, match="non-empty 'rows'"):
            ScriptRequest("append_rows")
        with pytest.raises(ApexError, match="query 'text'"):
            ScriptRequest("preview")
        with pytest.raises(ApexError, match="unknown script op"):
            ScriptRequest("mutate", text="x")
