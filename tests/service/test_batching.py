"""Single-flight request coalescing."""

import threading
import time

import pytest

from repro.service.batching import RequestBatcher


class TestRequestBatcher:
    def test_concurrent_identical_requests_compute_once(self):
        batcher = RequestBatcher(window=0.0)
        n_threads = 8
        calls = []
        started = threading.Event()
        release = threading.Event()
        results = [None] * n_threads

        def compute():
            calls.append(threading.get_ident())
            started.set()
            release.wait(timeout=5)
            return "answer"

        def ask(i):
            results[i] = batcher.submit("key", compute)

        leader = threading.Thread(target=ask, args=(0,))
        leader.start()
        assert started.wait(timeout=5)
        followers = [
            threading.Thread(target=ask, args=(i,)) for i in range(1, n_threads)
        ]
        for t in followers:
            t.start()
        time.sleep(0.05)  # let every follower attach to the in-flight computation
        release.set()
        leader.join()
        for t in followers:
            t.join()

        assert len(calls) == 1
        assert results == ["answer"] * n_threads
        stats = batcher.stats()
        assert stats["computed"] == 1
        assert stats["coalesced"] == n_threads - 1

    def test_distinct_keys_do_not_coalesce(self):
        batcher = RequestBatcher(window=0.0)
        assert batcher.submit("a", lambda: 1) == 1
        assert batcher.submit("b", lambda: 2) == 2
        assert batcher.stats()["computed"] == 2
        assert batcher.stats()["coalesced"] == 0

    def test_sequential_requests_recompute(self):
        """The batcher is not a cache: flights end when the leader finishes."""
        batcher = RequestBatcher(window=0.0)
        values = iter([10, 20])
        assert batcher.submit("k", lambda: next(values)) == 10
        assert batcher.submit("k", lambda: next(values)) == 20

    def test_window_lingers_published_result_for_stragglers(self):
        """Within the window a duplicate of a *completed* fast flight still
        coalesces instead of recomputing (the window moved from a leader
        pre-sleep to a post-completion linger)."""
        batcher = RequestBatcher(window=30.0)
        values = iter([10, 20])
        assert batcher.submit("k", lambda: next(values)) == 10
        assert batcher.submit("k", lambda: next(values)) == 10  # linger hit
        stats = batcher.stats()
        assert stats["computed"] == 1
        assert stats["coalesced"] == 1

    def test_window_expiry_recomputes(self):
        batcher = RequestBatcher(window=0.02)
        values = iter([10, 20])
        assert batcher.submit("k", lambda: next(values)) == 10
        time.sleep(0.03)
        assert batcher.submit("k", lambda: next(values)) == 20
        assert batcher.stats()["computed"] == 2

    def test_leader_never_sleeps_before_computing(self):
        """A lone caller's latency is its compute time, not the window."""
        batcher = RequestBatcher(window=5.0)
        start = time.perf_counter()
        assert batcher.submit("k", lambda: "warm") == "warm"
        assert time.perf_counter() - start < 1.0

    def test_leader_failure_propagates_to_followers(self):
        batcher = RequestBatcher(window=0.0)
        n_followers = 3
        started = threading.Event()
        release = threading.Event()
        errors = []

        def compute():
            started.set()
            release.wait(timeout=5)
            raise ValueError("boom")

        def ask():
            try:
                batcher.submit("key", compute)
            except ValueError as exc:
                errors.append(exc)

        leader = threading.Thread(target=ask)
        leader.start()
        assert started.wait(timeout=5)
        followers = [threading.Thread(target=ask) for _ in range(n_followers)]
        for t in followers:
            t.start()
        time.sleep(0.05)  # let every follower attach to the flight
        release.set()
        leader.join()
        for t in followers:
            t.join()

        assert [str(e) for e in errors] == ["boom"] * (n_followers + 1)
        stats = batcher.stats()
        assert stats["failed"] == 1
        # A failed flight is not a computation.
        assert stats["computed"] == 0
        # The key is retired immediately (no linger for failures): a retry
        # computes fresh.
        assert batcher.submit("key", lambda: "ok") == "ok"

    def test_followers_raise_distinct_exception_copies(self):
        """Concurrent re-raises must not fight over one shared traceback."""
        batcher = RequestBatcher(window=0.0)
        n_followers = 3
        started = threading.Event()
        release = threading.Event()
        errors = []
        errors_lock = threading.Lock()

        def compute():
            started.set()
            release.wait(timeout=5)
            raise ValueError("boom")

        def ask():
            try:
                batcher.submit("key", compute)
            except ValueError as exc:
                with errors_lock:
                    errors.append(exc)

        leader = threading.Thread(target=ask)
        leader.start()
        assert started.wait(timeout=5)
        followers = [threading.Thread(target=ask) for _ in range(n_followers)]
        for t in followers:
            t.start()
        time.sleep(0.05)
        release.set()
        leader.join()
        for t in followers:
            t.join()

        assert len(errors) == n_followers + 1
        # Every raised object is distinct; followers chain to the leader's
        # original, whose traceback stays that of the leader's raise.
        assert len({id(e) for e in errors}) == n_followers + 1
        originals = [e for e in errors if e.__cause__ is None]
        assert len(originals) == 1
        original = originals[0]
        for copy_exc in errors:
            if copy_exc is original:
                continue
            assert copy_exc.__cause__ is original
            assert str(copy_exc) == "boom"

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            RequestBatcher(window=-0.1)

    def test_window_zero_still_coalesces_in_flight_requests(self):
        batcher = RequestBatcher(window=0.0)
        started = threading.Event()
        release = threading.Event()

        def slow():
            started.set()
            release.wait(timeout=5)
            return "slow"

        out = []
        leader = threading.Thread(target=lambda: out.append(batcher.submit("k", slow)))
        leader.start()
        assert started.wait(timeout=5)
        follower = threading.Thread(
            target=lambda: out.append(batcher.submit("k", lambda: "fast"))
        )
        follower.start()
        time.sleep(0.02)  # let the follower attach to the flight
        release.set()
        leader.join()
        follower.join()
        assert out == ["slow", "slow"]


class TestAdaptiveLinger:
    """The linger adapts to observed duplicate inter-arrival times (EWMA,
    clamped to [window/4, 4*window])."""

    def test_defaults_to_the_base_window_before_any_duplicate(self):
        batcher = RequestBatcher(window=0.1)
        assert batcher.effective_window() == pytest.approx(0.1)
        stats = batcher.stats()
        assert stats["interarrival_samples"] == 0
        assert stats["linger_seconds"] == pytest.approx(0.1)

    def test_bursty_duplicates_shrink_the_linger_to_the_floor(self):
        batcher = RequestBatcher(window=0.2)
        for _ in range(30):  # back-to-back duplicates: near-zero gaps
            batcher.submit("key", lambda: "value")
        stats = batcher.stats()
        assert stats["interarrival_samples"] >= 29
        assert stats["interarrival_ewma_seconds"] < 0.01
        assert batcher.effective_window() == pytest.approx(0.2 / 4.0)

    def test_slow_duplicates_are_clamped_to_four_windows(self):
        batcher = RequestBatcher(window=0.005)
        batcher.submit("key", lambda: "value")
        time.sleep(0.08)  # a gap far beyond 4*window
        batcher.submit("key", lambda: "value")
        assert batcher.effective_window() == pytest.approx(4 * 0.005)

    def test_zero_window_stays_zero(self):
        batcher = RequestBatcher(window=0.0)
        for _ in range(5):
            batcher.submit("key", lambda: "value")
        assert batcher.effective_window() == 0.0

    def test_adapted_linger_governs_flight_expiry(self):
        batcher = RequestBatcher(window=0.4)
        # Teach the EWMA a ~2ms duplicate gap: linger becomes ~4ms-100ms
        # (clamped floor), far below the 400ms base window.
        for _ in range(40):
            batcher.submit("key", lambda: "burst")
        linger = batcher.effective_window()
        assert linger == pytest.approx(0.1)  # the window/4 floor
        batcher.submit("fresh", lambda: "published")
        time.sleep(linger + 0.05)  # beyond the adapted linger...
        calls = []
        batcher.submit("fresh", lambda: calls.append(1) or "recomputed")
        assert calls == [1]  # ...so the flight expired and recomputed

    def test_service_latency_stats_expose_the_batcher(self):
        from repro.mechanisms.registry import default_registry
        from repro.service import ExplorationService

        from tests.service.util import small_table

        service = ExplorationService(
            small_table(200),
            budget=1.0,
            registry=default_registry(mc_samples=100),
            seed=0,
            batch_window=0.01,
        )
        stats = service.latency_stats()
        assert stats["batcher"]["window_seconds"] == pytest.approx(0.01)
        assert stats["batcher"]["linger_seconds"] == pytest.approx(0.01)
        assert stats["batcher"]["interarrival_samples"] == 0.0
