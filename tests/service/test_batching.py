"""Single-flight request coalescing."""

import threading
import time

import pytest

from repro.service.batching import RequestBatcher


class TestRequestBatcher:
    def test_concurrent_identical_requests_compute_once(self):
        batcher = RequestBatcher(window=0.02)
        n_threads = 8
        calls = []
        barrier = threading.Barrier(n_threads)
        results = [None] * n_threads

        def compute():
            calls.append(threading.get_ident())
            return "answer"

        def ask(i):
            barrier.wait()
            results[i] = batcher.submit("key", compute)

        threads = [threading.Thread(target=ask, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert len(calls) == 1
        assert results == ["answer"] * n_threads
        stats = batcher.stats()
        assert stats["computed"] == 1
        assert stats["coalesced"] == n_threads - 1

    def test_distinct_keys_do_not_coalesce(self):
        batcher = RequestBatcher(window=0.0)
        assert batcher.submit("a", lambda: 1) == 1
        assert batcher.submit("b", lambda: 2) == 2
        assert batcher.stats()["computed"] == 2
        assert batcher.stats()["coalesced"] == 0

    def test_sequential_requests_recompute(self):
        """The batcher is not a cache: flights end when the leader finishes."""
        batcher = RequestBatcher(window=0.0)
        values = iter([10, 20])
        assert batcher.submit("k", lambda: next(values)) == 10
        assert batcher.submit("k", lambda: next(values)) == 20

    def test_leader_failure_propagates_to_followers(self):
        batcher = RequestBatcher(window=0.05)
        n_threads = 4
        barrier = threading.Barrier(n_threads)
        errors = []

        def compute():
            raise ValueError("boom")

        def ask():
            barrier.wait()
            try:
                batcher.submit("key", compute)
            except ValueError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=ask) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert errors == ["boom"] * n_threads
        assert batcher.stats()["failed"] == 1
        # The key is retired: a retry computes fresh.
        assert batcher.submit("key", lambda: "ok") == "ok"

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            RequestBatcher(window=-0.1)

    def test_window_zero_still_coalesces_in_flight_requests(self):
        batcher = RequestBatcher(window=0.0)
        started = threading.Event()
        release = threading.Event()

        def slow():
            started.set()
            release.wait(timeout=5)
            return "slow"

        out = []
        leader = threading.Thread(target=lambda: out.append(batcher.submit("k", slow)))
        leader.start()
        assert started.wait(timeout=5)
        follower = threading.Thread(
            target=lambda: out.append(batcher.submit("k", lambda: "fast"))
        )
        follower.start()
        time.sleep(0.02)  # let the follower attach to the flight
        release.set()
        leader.join()
        follower.join()
        assert out == ["slow", "slow"]
