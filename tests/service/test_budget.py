"""Shared budget pool, session ledgers and the reservation protocol."""

import pytest

from repro.core.accounting import PrivacyLedger
from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import ApexError
from repro.service.budget import BudgetPolicy, SessionLedger, SharedBudgetPool

ACC = AccuracySpec(alpha=10.0, beta=1e-3)


def charge_kwargs(ledger, epsilon_upper, epsilon_spent, name="q"):
    reservation = ledger.reserve(epsilon_upper)
    assert reservation is not None
    return dict(
        query_name=name,
        query_kind="WCQ",
        accuracy=ACC,
        mechanism="LM",
        epsilon_upper=epsilon_upper,
        epsilon_spent=epsilon_spent,
        answer=None,
        reservation=reservation,
    )


class TestPrivacyLedgerReservations:
    def test_reserve_excludes_headroom(self):
        ledger = PrivacyLedger(1.0)
        reservation = ledger.reserve(0.6)
        assert reservation is not None
        assert ledger.remaining == pytest.approx(0.4)
        assert ledger.reserve(0.5) is None

    def test_release_returns_headroom(self):
        ledger = PrivacyLedger(1.0)
        reservation = ledger.reserve(0.6)
        ledger.release(reservation)
        assert ledger.remaining == pytest.approx(1.0)
        # Double release is a no-op.
        ledger.release(reservation)
        assert ledger.remaining == pytest.approx(1.0)

    def test_charge_with_reservation_keeps_only_actual_loss(self):
        ledger = PrivacyLedger(1.0)
        reservation = ledger.reserve(0.6)
        ledger.charge(
            query_name="q",
            query_kind="WCQ",
            accuracy=ACC,
            mechanism="MPM",
            epsilon_upper=0.6,
            epsilon_spent=0.25,
            answer=None,
            reservation=reservation,
        )
        assert ledger.spent == pytest.approx(0.25)
        assert ledger.reserved == pytest.approx(0.0)
        assert ledger.remaining == pytest.approx(0.75)

    def test_committed_reservation_cannot_be_reused(self):
        ledger = PrivacyLedger(1.0)
        reservation = ledger.reserve(0.3)
        kwargs = dict(
            query_name="q",
            query_kind="WCQ",
            accuracy=ACC,
            mechanism="LM",
            epsilon_upper=0.3,
            epsilon_spent=0.3,
            answer=None,
            reservation=reservation,
        )
        ledger.charge(**kwargs)
        with pytest.raises(ApexError):
            ledger.charge(**kwargs)

    def test_rejected_charge_leaves_reservation_releasable(self):
        """A charge with an out-of-range actual loss must not leak headroom."""
        ledger = PrivacyLedger(1.0)
        reservation = ledger.reserve(0.4)
        with pytest.raises(ApexError, match="must lie in"):
            ledger.charge(
                query_name="q",
                query_kind="WCQ",
                accuracy=ACC,
                mechanism="LM",
                epsilon_upper=0.4,
                epsilon_spent=0.5,  # above the worst case: rejected
                answer=None,
                reservation=reservation,
            )
        assert reservation.active  # validation happens before consumption
        ledger.release(reservation)
        assert ledger.remaining == pytest.approx(1.0)
        assert ledger.spent == pytest.approx(0.0)

    def test_unreserved_charge_still_enforces_admission(self):
        ledger = PrivacyLedger(0.5)
        ledger.charge(
            query_name="q",
            query_kind="WCQ",
            accuracy=ACC,
            mechanism="LM",
            epsilon_upper=0.5,
            epsilon_spent=0.5,
            answer=None,
        )
        assert ledger.exhausted


class TestSharedBudgetPool:
    def test_reserve_commit_release_accounting(self):
        pool = SharedBudgetPool(1.0)
        assert pool.try_reserve(0.7)
        assert not pool.try_reserve(0.4)
        pool.release(0.7)
        assert pool.remaining == pytest.approx(1.0)

    def test_over_release_raises_instead_of_clamping(self):
        """A double release means broken reservation accounting; clamping at
        zero would silently mask it as spare headroom."""
        pool = SharedBudgetPool(1.0)
        assert pool.try_reserve(0.7)
        pool.release(0.7)
        with pytest.raises(ApexError, match="double-released or never taken"):
            pool.release(0.7)
        assert pool.reserved == pytest.approx(0.0)
        assert pool.remaining == pytest.approx(1.0)

    def test_release_without_reservation_raises(self):
        pool = SharedBudgetPool(1.0)
        with pytest.raises(ApexError):
            pool.release(0.1)

    def test_locked_accessors_are_consistent_under_concurrency(self):
        """spent/reserved/remaining read under the pool lock: a racing
        reader can never observe torn accounting (e.g. spent and reserved
        both counting the same epsilon)."""
        import threading

        pool = SharedBudgetPool(1_000.0)
        ledger = SessionLedger(pool, 1_000.0, "racer")
        stop = threading.Event()
        violations = []

        def reader():
            while not stop.is_set():
                stats = pool.stats()
                total = stats["spent"] + stats["reserved"]
                if total > pool.budget + 1e-9:
                    violations.append(total)
                # Property reads must agree with the invariant too.
                if pool.spent + pool.reserved > pool.budget + 1e-9:
                    violations.append((pool.spent, pool.reserved))

        def writer():
            for i in range(300):
                ledger.charge(**charge_kwargs(ledger, 0.01, 0.005, name=f"q{i}"))

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        writer()
        stop.set()
        for t in threads:
            t.join()
        assert violations == []
        assert pool.spent == pytest.approx(300 * 0.005)
        assert pool.reserved == pytest.approx(0.0)

    def test_merged_transcript_commit_order(self):
        pool = SharedBudgetPool(2.0)
        alice = SessionLedger(pool, 2.0, "alice")
        bob = SessionLedger(pool, 2.0, "bob")
        alice.charge(**charge_kwargs(alice, 0.5, 0.5, name="qa"))
        bob.charge(**charge_kwargs(bob, 0.25, 0.25, name="qb"))
        bob.deny(query_name="qd", query_kind="WCQ", accuracy=ACC)
        merged = pool.merged_transcript
        assert [e.query_name for e in merged] == ["alice:qa", "bob:qb", "bob:qd"]
        assert merged.is_valid(pool.budget)
        assert merged.total_epsilon() == pytest.approx(0.75)
        assert pool.spent == pytest.approx(0.75)


class TestSessionLedger:
    def test_fixed_share_cap_binds_before_pool(self):
        pool = SharedBudgetPool(1.0)
        ledger = SessionLedger(pool, 0.25, "alice")
        assert ledger.reserve(0.3) is None
        reservation = ledger.reserve(0.25)
        assert reservation is not None
        ledger.release(reservation)

    def test_pool_refusal_rolls_back_share_reservation(self):
        pool = SharedBudgetPool(0.5)
        greedy = SessionLedger(pool, 0.5, "greedy")
        other = SessionLedger(pool, 0.5, "other")
        greedy.charge(**charge_kwargs(greedy, 0.4, 0.4))
        # other's own share would allow 0.3, but the pool only has 0.1 left.
        assert other.reserve(0.3) is None
        # The failed attempt must not leak a share-level reservation.
        assert other.reserve(0.1) is not None

    def test_rejected_charge_does_not_leak_pool_reservation(self):
        pool = SharedBudgetPool(1.0)
        ledger = SessionLedger(pool, 1.0, "alice")
        reservation = ledger.reserve(0.4)
        with pytest.raises(ApexError, match="must lie in"):
            ledger.charge(
                query_name="q",
                query_kind="WCQ",
                accuracy=ACC,
                mechanism="LM",
                epsilon_upper=0.4,
                epsilon_spent=9.9,
                answer=None,
                reservation=reservation,
            )
        # The engine releases on a failed charge; both layers must recover.
        ledger.release(reservation)
        assert pool.reserved == pytest.approx(0.0)
        assert pool.remaining == pytest.approx(1.0)
        assert ledger.remaining == pytest.approx(1.0)

    def test_charge_requires_reservation(self):
        pool = SharedBudgetPool(1.0)
        ledger = SessionLedger(pool, 1.0, "alice")
        with pytest.raises(ApexError, match="requires a reservation"):
            ledger.charge(
                query_name="q",
                query_kind="WCQ",
                accuracy=ACC,
                mechanism="LM",
                epsilon_upper=0.1,
                epsilon_spent=0.1,
                answer=None,
            )

    def test_policy_values(self):
        assert BudgetPolicy("fixed-share") is BudgetPolicy.FIXED_SHARE
        assert BudgetPolicy("first-come") is BudgetPolicy.FIRST_COME


class TestSessionReserveRollback:
    """Raise paths inside SessionLedger.reserve must not leak either book.

    Regression: a pool admission or journal append that *raised* (rather
    than refused) used to leave the share-level (and pool-level)
    reservation permanently held (APX001 finding).
    """

    def test_pool_failure_rolls_back_the_share_reservation(self):
        pool = SharedBudgetPool(2.0)
        ledger = SessionLedger(pool, 1.0, "alice")

        class Boom(RuntimeError):
            pass

        def exploding_try_reserve(epsilon_upper):
            raise Boom("pool fault")

        ledger._pool = type(
            "ExplodingPool",
            (),
            {
                "try_reserve": staticmethod(exploding_try_reserve),
                "remaining": property(lambda self: pool.remaining),
            },
        )()
        with pytest.raises(Boom):
            ledger.reserve(0.5)
        ledger._pool = pool
        assert ledger.reserved == 0.0
        assert pool.reserved == 0.0
        ledger.assert_invariants()

    def test_journal_failure_rolls_back_share_and_pool(self, tmp_path):
        from repro.core.exceptions import FaultInjected
        from repro.reliability import faults
        from repro.reliability.journal import LedgerJournal

        journal = LedgerJournal(tmp_path / "wal.jsonl")
        pool = SharedBudgetPool(2.0)
        ledger = SessionLedger(pool, 1.0, "alice", journal=journal)
        with faults.armed("ledger.reserve.after_journal", "error"):
            with pytest.raises(FaultInjected):
                ledger.reserve(0.5)
        assert ledger.reserved == 0.0
        assert pool.reserved == 0.0
        assert ledger.remaining == 1.0
        ledger.assert_invariants()
        journal.close()
