"""Shared fixtures: the service suite runs under the lock-order watchdog.

The service layer is where most real lock nesting happens (session handles,
the shared pool, the ledger, request batching), so this is the suite where
dynamic edges the static APX003 rule cannot resolve actually occur.
"""

import pytest

from repro.analysis.runtime import LockOrderWatchdog


@pytest.fixture(autouse=True, scope="package")
def lock_order_watchdog():
    """Record-mode watchdog over every lock the service tests create."""
    watchdog = LockOrderWatchdog(mode="record")
    watchdog.install()
    yield watchdog
    watchdog.uninstall()
    inversions = [v for v in watchdog.violations if v.kind == "inversion"]
    if inversions:
        pytest.fail(
            "lock-order inversions observed during the service suite:\n"
            + "\n".join(v.render() for v in inversions)
        )
