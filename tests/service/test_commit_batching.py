"""Batched ledger commits: equivalence with the serial two-phase protocol.

The MPSC drain (:meth:`SharedBudgetPool.commit_batched`) must be
*observationally equivalent* to the serial :meth:`SharedBudgetPool.commit`:
same final spend, a merged transcript that is a valid Theorem 6.2 ordering,
the invariant ``spent + reserved <= B`` at every instant, and the same
error contract.  The epsilon values used by the stress tests are exact
binary fractions (multiples of ``2**-20``), so sums are associative and
"equals the serial result" means bit-equality, not approximate equality.
"""

import threading

import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import LedgerInvariantError
from repro.reliability import faults
from repro.reliability.faults import FaultInjected
from repro.service.budget import SessionLedger, SharedBudgetPool

ACC = AccuracySpec(alpha=10.0, beta=1e-3)

#: One ULP-exact epsilon unit: keeps every sum exact in binary.
UNIT = 2.0**-20


@pytest.fixture(autouse=True)
def clean_failpoints():
    faults.disarm_all()
    faults.reset_fault_stats()
    yield
    faults.disarm_all()
    faults.reset_fault_stats()


def charge_once(ledger, epsilon_upper, epsilon_spent, name):
    reservation = ledger.reserve(epsilon_upper)
    if reservation is None:
        return None
    return ledger.charge(
        query_name=name,
        query_kind="WCQ",
        accuracy=ACC,
        mechanism="LM",
        epsilon_upper=epsilon_upper,
        epsilon_spent=epsilon_spent,
        answer=None,
        reservation=reservation,
    )


def mixed_schedule(analyst_index, n_ops):
    """The per-analyst op mix of the 8x48 stress (exact binary epsilons)."""
    ops = []
    for op_index in range(n_ops):
        upper = (16 + ((analyst_index * 7 + op_index) % 48)) * UNIT
        spent = upper if op_index % 3 else upper / 2  # mixed full/partial loss
        ops.append((upper, spent, f"q{analyst_index}-{op_index}"))
    return ops


class TestBatchedSerialEquivalence:
    def test_8x48_stress_matches_serial_spend_and_stays_valid(self):
        """8 analyst threads x 48 mixed charges, batched, against one pool:
        final spend must equal the serial two-phase run of the same ops,
        bit for bit, and the merged transcript must pass Theorem 6.2."""
        n_analysts, n_ops = 8, 48
        budget = 10_000 * UNIT * n_analysts  # ample: every op admits

        # Serial reference: identical ops, share-level charge plus the
        # *unbatched* pool.commit, one analyst at a time on this thread.
        serial_pool = SharedBudgetPool(budget)
        for a in range(n_analysts):
            ledger = SessionLedger(serial_pool, budget, f"a{a}")
            for upper, spent, name in mixed_schedule(a, n_ops):
                reservation = ledger.reserve(upper)
                assert reservation is not None
                entry = share_level_charge(ledger, upper, spent, name, reservation)
                serial_pool.commit(upper, entry, ledger.analyst)

        # Concurrent batched run.
        pool = SharedBudgetPool(budget)
        ledgers = [SessionLedger(pool, budget, f"a{a}") for a in range(n_analysts)]
        barrier = threading.Barrier(n_analysts)
        errors = []

        def analyst(a):
            try:
                barrier.wait()
                for upper, spent, name in mixed_schedule(a, n_ops):
                    entry = charge_once(ledgers[a], upper, spent, name)
                    assert entry is not None
                    # The invariant must hold at every observation point.
                    snap = pool.stats()
                    if snap["spent"] + snap["reserved"] > budget + 1e-9:
                        errors.append(("overspend", snap))
            except Exception as exc:  # pragma: no cover - diagnostic path
                errors.append((a, repr(exc)))

        threads = [threading.Thread(target=analyst, args=(a,)) for a in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors, errors[:3]
        assert pool.spent == serial_pool.spent  # exact: binary-fraction sums
        assert pool.reserved == 0.0
        assert len(pool.merged_transcript) == n_analysts * n_ops
        assert pool.merged_transcript.is_valid(budget)
        pool.assert_invariants()
        for ledger in ledgers:
            ledger.assert_invariants()
        stats = pool.stats()
        assert stats["batched_commits"] == n_analysts * n_ops
        assert stats["commit_batches"] >= 1
        assert sum(stats["commit_batch_sizes"]) <= stats["batched_commits"]

    def test_contended_batches_coalesce(self):
        """A stalled combiner must be followed by one drain that carries
        every queued commit (otherwise the batching path degenerated to
        serial without telling anyone).

        On a single-core box each producer usually wins the drain lock for
        its own slot, so coalescing is forced deterministically: the test
        holds the drain lock while 8 analysts enqueue, then releases it --
        the next combiner must take the whole backlog in one batch.
        """
        pool = SharedBudgetPool(1_000_000 * UNIT)
        ledgers = [SessionLedger(pool, pool.budget, f"a{a}") for a in range(8)]

        pool._commit_drain_lock.acquire()  # stall the combiner role
        try:
            threads = [
                threading.Thread(
                    target=charge_once,
                    args=(ledgers[a], 4 * UNIT, 2 * UNIT, f"q{a}"),
                )
                for a in range(8)
            ]
            for t in threads:
                t.start()
            deadline = threading.Event()
            for _ in range(200):  # wait for all 8 slots to queue up
                if len(pool._commit_queue) == 8:
                    break
                deadline.wait(0.01)
            assert len(pool._commit_queue) == 8
        finally:
            pool._commit_drain_lock.release()
        for t in threads:
            t.join()
        sizes = pool.stats()["commit_batch_sizes"]
        assert sizes and max(sizes) == 8
        assert pool.stats()["batched_commits"] == 8
        assert pool.spent == 8 * 2 * UNIT
        assert pool.merged_transcript.is_valid(pool.budget)

    def test_never_jointly_overspends_under_budget_pressure(self):
        """A tight budget admits only some of the concurrent demand; no
        interleaving of batched commits may push spend past B."""
        budget = 64 * UNIT
        pool = SharedBudgetPool(budget)
        ledgers = [SessionLedger(pool, budget, f"a{a}") for a in range(8)]
        barrier = threading.Barrier(8)
        answered = []

        def analyst(a):
            barrier.wait()
            for i in range(16):
                entry = charge_once(ledgers[a], 8 * UNIT, 8 * UNIT, f"q{a}-{i}")
                if entry is not None:
                    answered.append(entry)

        threads = [threading.Thread(target=analyst, args=(a,)) for a in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert answered  # the budget admits at least a few
        assert pool.spent <= budget + 1e-12
        assert pool.merged_transcript.is_valid(budget)
        pool.assert_invariants()


class TestDrainFailpoint:
    def test_failpoint_fires_inside_drain_and_wakes_all_waiters(self):
        """An injected fault inside the drain must propagate to the
        committing analysts -- never leave one parked on its slot."""
        pool = SharedBudgetPool(1.0)
        ledger = SessionLedger(pool, 1.0, "a0")
        faults.arm("pool.commit.drain", "error", count=1)
        # The share-level charge lands but the pool mirror dies in the
        # drain, so the session ledger raises its loudest error with the
        # injected fault as the cause (same contract as a serial-commit
        # failure).
        with pytest.raises(LedgerInvariantError) as excinfo:
            charge_once(ledger, 0.25, 0.25, "doomed")
        assert isinstance(excinfo.value.__cause__, FaultInjected)
        # The drain died before touching the pool: nothing spent, the
        # pool-side reservation still parked.
        assert pool.spent == 0.0
        assert pool.reserved == pytest.approx(0.25)
        pool.release(0.25)  # reclaim the orphaned pool-side reservation
        # The queue drained cleanly despite the fault: the next commit
        # goes through without a wedged slot in front of it.
        entry = charge_once(ledger, 0.25, 0.25, "after")
        assert entry is not None
        assert pool.spent == pytest.approx(0.25)

    def test_share_and_pool_disagreement_is_loud(self):
        """A pool-level ApexError inside the drain surfaces through the
        session ledger as LedgerInvariantError (same contract as the
        serial commit path)."""
        pool = SharedBudgetPool(1.0)
        ledger = SessionLedger(pool, 1.0, "a0")
        reservation = ledger.reserve(0.5)
        assert reservation is not None
        # Sabotage: consume the pool-side reservation behind the ledger's
        # back, so the drain's commit must fail with ApexError.
        pool.release(0.5)
        with pytest.raises(LedgerInvariantError, match="pool commit failed"):
            ledger.charge(
                query_name="q",
                query_kind="WCQ",
                accuracy=ACC,
                mechanism="LM",
                epsilon_upper=0.5,
                epsilon_spent=0.25,
                answer=None,
                reservation=reservation,
            )


# -- serial-reference helper -----------------------------------------------------


def share_level_charge(ledger, upper, spent, name, reservation):
    """The share-level half of a charge, bypassing the pool mirror.

    Keeps the serial reference honest: the per-analyst books are updated
    by the same code as the batched run, and only the pool commit path
    (serial ``commit`` vs batched ``commit_batched``) differs between the
    two runs.
    """
    from repro.core.accounting import PrivacyLedger

    return PrivacyLedger.charge(
        ledger,
        query_name=name,
        query_kind="WCQ",
        accuracy=ACC,
        mechanism="LM",
        epsilon_upper=upper,
        epsilon_spent=spent,
        answer=None,
        reservation=reservation,
    )
