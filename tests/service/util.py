"""Shared fixtures for the service tests: a small synthetic table."""

from repro.bench.microbench import build_bench_table
from repro.data.table import Table


def small_table(n_rows: int = 2_000, seed: int = 20190501) -> Table:
    """A small randomized table (amount/age/region/channel, with NULLs)."""
    return build_bench_table(n_rows, seed=seed)
