"""The asyncio front: many open sessions, bounded threads, joint budget safety."""

import asyncio

import pytest

from repro.core.accuracy import AccuracySpec
from repro.mechanisms.registry import default_registry
from repro.queries.builders import histogram_workload
from repro.queries.query import WorkloadCountingQuery
from repro.service import AsyncExplorationFront, ExplorationService
from tests.service.util import small_table

ACC = AccuracySpec(alpha=200.0, beta=5e-4)


def make_service(budget=50.0, **kwargs):
    kwargs.setdefault("registry", default_registry(mc_samples=200))
    kwargs.setdefault("seed", 0)
    kwargs.setdefault("batch_window", 0.0)
    return ExplorationService(small_table(2_000), budget=budget, **kwargs)


def hist_query(bins=8, name="hist"):
    return WorkloadCountingQuery(
        histogram_workload("amount", start=0, stop=10_000, bins=bins), name=name
    )


class TestAsyncFront:
    def test_serve_async_builds_front(self):
        service = make_service()
        front = service.serve_async(max_concurrency=4)
        assert isinstance(front, AsyncExplorationFront)
        assert front.max_concurrency == 4
        assert front.service is service
        with pytest.raises(ValueError):
            service.serve_async(max_concurrency=0)

    def test_preview_and_explore_roundtrip(self):
        async def scenario():
            service = make_service()
            async with service.serve_async(max_concurrency=4) as front:
                front.register_analyst("alice")
                costs = await front.preview_cost("alice", hist_query(), ACC)
                assert costs and all(lo <= up for lo, up in costs.values())
                result = await front.explore("alice", hist_query(), ACC)
                assert not result.denied
                text = (
                    "BIN D ON COUNT(*) WHERE W = {"
                    "  amount BETWEEN 0 AND 5000, amount BETWEEN 5000 AND 10000"
                    "} ERROR 200 CONFIDENCE 0.9995;"
                )
                assert not (await front.explore_text("alice", text)).denied
            assert service.validate()

        asyncio.run(scenario())

    def test_thousand_open_sessions_with_backpressure(self):
        """Thousands of coroutine sessions over a tiny thread budget.

        2000 sessions stay open concurrently; only ``max_concurrency``
        requests may run at once, so the admission semaphore must be
        observed queueing (``backpressure_waits``) and the in-flight count
        can never exceed the bound.
        """

        async def scenario():
            service = make_service(budget=500.0)
            q = hist_query(bins=4, name="shared")
            async with service.serve_async(max_concurrency=8) as front:
                handles = [
                    front.register_analyst(f"a{i}") for i in range(2_000)
                ]
                assert len(handles) == 2_000

                async def one_session(i):
                    costs = await front.preview_cost(f"a{i}", q, ACC)
                    assert front.stats()["in_flight"] <= 8
                    return costs

                results = await asyncio.gather(
                    *(one_session(i) for i in range(2_000))
                )
                stats = front.stats()
            assert len(results) == 2_000
            assert all(r == results[0] for r in results)
            assert stats["completed"] == 2_000
            assert stats["in_flight"] == 0
            assert stats["peak_in_flight"] <= 8
            assert stats["backpressure_waits"] > 0
            assert stats["errors"] == 0

        asyncio.run(scenario())

    def test_concurrent_explores_stay_jointly_budget_safe(self):
        """Async fan-in lands in the same two-phase protocol: spend <= B and
        the merged transcript stays a valid Theorem 6.2 ordering."""

        async def scenario():
            service = make_service(budget=6.0)
            q = hist_query(bins=4, name="stress")
            async with service.serve_async(max_concurrency=6) as front:
                for i in range(12):
                    front.register_analyst(f"a{i}")
                results = await asyncio.gather(
                    *(front.explore(f"a{i}", q, ACC) for i in range(12))
                )
            answered = [r for r in results if not r.denied]
            assert answered  # the budget admits at least one
            assert service.budget_spent <= service.budget + 1e-9
            assert service.validate()
            service.assert_invariants()

        asyncio.run(scenario())

    def test_errors_propagate_and_are_counted(self):
        async def scenario():
            service = make_service()
            async with service.serve_async(max_concurrency=2) as front:
                with pytest.raises(Exception, match="no session"):
                    await front.explore("ghost", hist_query(), ACC)
                assert front.stats()["errors"] == 1

        asyncio.run(scenario())
