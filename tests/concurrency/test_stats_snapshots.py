"""Torn-multi-field-read pins for every ``stats()``-style snapshot.

A multi-field snapshot is *torn* when its fields are read at different
instants: a reader can then observe, say, a ``count`` from before an
update and a ``sum`` from after it.  This PR fixed that for
:meth:`LRUCache.stats` (one seqlock validation around all counters); the
tests here pin the fix *and* pin the already-atomic snapshots in
:class:`RequestBatcher.stats` and
:meth:`ExplorationService.latency_stats`, so that a future refactor
moving any of those reads outside their lock fails loudly instead of
silently re-introducing the race.

Detector design: writers only ever publish values for which a sharp
cross-field identity holds (e.g. every latency sample is exactly ``0.5``
seconds, so ``mean == max == 0.5`` in *every* untorn snapshot; binary
fractions keep the arithmetic exact).  Any snapshot mixing fields from
two instants breaks the identity.
"""

import sys
import threading

import pytest

from repro.core.lru import LRUCache

#: Preempt aggressively inside snapshot windows (default is 5 ms).
FAST_SWITCH = 1e-5


@pytest.fixture(autouse=True)
def aggressive_preemption():
    old = sys.getswitchinterval()
    sys.setswitchinterval(FAST_SWITCH)
    yield
    sys.setswitchinterval(old)


class TestLRUCacheStatsSnapshot:
    def test_snapshot_is_internally_consistent_under_writers(self):
        """``inserts - evictions == size`` must hold in every snapshot taken
        while writers churn the cache -- the regression this PR fixed by
        validating the whole counter block under one sequence read."""
        cache = LRUCache(32)
        stop = threading.Event()
        errors = []

        def writer(tid):
            i = 0
            while not stop.is_set():
                i += 1
                cache.put((tid, i % 64), i)

        writers = [
            threading.Thread(target=writer, args=(t,)) for t in range(2)
        ]
        for t in writers:
            t.start()
        try:
            for _ in range(2_000):
                snap = cache.stats()
                if snap["inserts"] - snap["evictions"] != snap["size"]:
                    errors.append(snap)
                    break
        finally:
            stop.set()
            for t in writers:
                t.join()
        assert not errors, errors[:1]


class TestBatcherStatsSnapshot:
    def test_counters_snapshot_atomically_under_traffic(self):
        """Every flight retires as exactly one of ``computed``/``failed``,
        and each follower adds exactly one ``coalesced`` -- so in an untorn
        snapshot ``computed + failed <= leaders_started`` and the counter
        triple is monotone.  A torn read shows up as a snapshot whose
        triple regresses against an earlier one."""
        from repro.service.batching import RequestBatcher

        batcher = RequestBatcher(window=0.0)
        stop = threading.Event()
        errors = []
        gate = threading.Event()

        def traffic(tid):
            while not stop.is_set():
                # One shared key: concurrent submits coalesce; leader blocks
                # on the gate long enough for followers to pile on.
                gate.clear()
                try:
                    batcher.submit("k", lambda: gate.wait(0.0005) or tid)
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(repr(exc))

        workers = [
            threading.Thread(target=traffic, args=(t,)) for t in range(3)
        ]
        for t in workers:
            t.start()
        prev = None
        try:
            for _ in range(2_000):
                snap = batcher.stats()
                triple = (snap["computed"], snap["coalesced"], snap["failed"])
                if any(v < 0 for v in triple):
                    errors.append(("negative", snap))
                    break
                if prev is not None and any(
                    a < b for a, b in zip(triple, prev)
                ):
                    errors.append(("regressed", prev, triple))
                    break
                prev = triple
        finally:
            stop.set()
            gate.set()
            for t in workers:
                t.join()
        assert not errors, errors[:1]
        final = batcher.stats()
        assert final["computed"] + final["failed"] >= 1


class TestLatencyStatsSnapshot:
    def test_constant_samples_pin_mean_equals_max(self):
        """All latency samples are exactly ``0.5`` (a binary fraction), so
        every untorn ``latency_stats`` snapshot must report
        ``mean_seconds == max_seconds == 0.5`` bit-for-bit whenever
        ``count > 0``.  A count/sum pair read at different instants breaks
        the equality."""
        from repro.mechanisms.registry import default_registry
        from repro.service import ExplorationService
        from tests.service.util import small_table

        service = ExplorationService(
            small_table(64),
            budget=1.0,
            registry=default_registry(mc_samples=50),
            seed=0,
            batch_window=0.0,
        )
        stop = threading.Event()
        errors = []

        def recorder():
            while not stop.is_set():
                service._note_latency("explore", 0.5)

        writers = [threading.Thread(target=recorder) for _ in range(2)]
        for t in writers:
            t.start()
        try:
            seen_nonzero = False
            for _ in range(2_000):
                snap = service.latency_stats()["explore"]
                if snap["count"]:
                    seen_nonzero = True
                    if snap["mean_seconds"] != 0.5 or snap["max_seconds"] != 0.5:
                        errors.append(snap)
                        break
        finally:
            stop.set()
            for t in writers:
                t.join()
        assert not errors, errors[:1]
        assert seen_nonzero
