"""Property-based deterministic history replay across fresh interpreters.

A concurrency battery is only trustworthy if its histories can be
*reproduced*: the same seed must generate the same operation schedule and
-- replayed sequentially in canonical order -- the same outcomes, in a
brand-new interpreter.  This pins two properties at once:

* the cache itself is deterministic for a fixed history (counters,
  eviction order, final contents -- no hidden dependence on ids, hash
  randomization, or interpreter state), and
* the battery's seeded schedule generation is stable, so a failing seed
  reported by CI can be replayed locally, bit for bit.

Keys are restricted to types whose hashes are stable across interpreters
with ``PYTHONHASHSEED`` pinned (ints here; the battery's own SlowKey
hashes delegate to ints too), which is also why the subprocesses run with
an explicit hash seed.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

#: The replay program run in each fresh interpreter: generates a seeded
#: history, applies it to an LRUCache, prints a digest of everything
#: observable (per-op results, final stats, final contents in order).
REPLAY_PROGRAM = """
import json
import random
import sys

from repro.core.lru import LRUCache

seed, stripes, n_ops = (int(a) for a in sys.argv[1:4])
rng = random.Random(seed)
cache = LRUCache(32, stripes=stripes)

history = []
for _ in range(n_ops):
    op = rng.choice(("get", "put", "put", "get", "contains", "len"))
    key = rng.randrange(64)
    if op == "put":
        value = (key, rng.randrange(1 << 16))
        cache.put(key, value)
        history.append(("put", key, value[1]))
    elif op == "get":
        value = cache.get(key)
        history.append(("get", key, None if value is None else value[1]))
    elif op == "contains":
        history.append(("contains", key, key in cache))
    else:
        history.append(("len", len(cache)))

stats = cache.stats()
final = [(k, cache.get(k) is not None) for k in range(64)]
print(json.dumps({"history": history, "stats": stats, "final": final}))
"""


def replay_in_fresh_interpreter(seed, stripes, n_ops=400):
    env = dict(os.environ)
    root = Path(__file__).resolve().parents[2]
    src = str(root / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONHASHSEED"] = "0"
    result = subprocess.run(
        [sys.executable, "-c", REPLAY_PROGRAM, str(seed), str(stripes), str(n_ops)],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestDeterministicReplay:
    @pytest.mark.parametrize("stripes", [1, 4])
    @pytest.mark.parametrize("seed", [0, 12345])
    def test_history_replays_identically_across_interpreters(self, seed, stripes):
        first = replay_in_fresh_interpreter(seed, stripes)
        second = replay_in_fresh_interpreter(seed, stripes)
        assert first == second
        assert '"history"' in first  # the digest actually carries the history

    def test_different_seeds_generate_different_histories(self):
        # The property test has teeth only if the schedule space is real.
        assert replay_in_fresh_interpreter(1, 1) != replay_in_fresh_interpreter(2, 1)
