"""HISTEX-style adversarial interleavings over the seqlock-striped LRU.

Each test builds a *seeded* history: every thread derives its operation
schedule from ``random.Random(seed + thread_id)``, threads are paced by a
:class:`threading.Barrier` so each round genuinely overlaps, and the
interpreter's switch interval is lowered so the scheduler preempts inside
the optimistic windows.  The assertions are the cache's documented
contract:

* **no torn reads** -- a returned value is always one consistently
  published object (readers check internal self-consistency of every
  value they observe);
* **no stale value for a newer pinned token** -- keys embed their version
  token (the repo-wide discipline), so a reader that pinned version ``v``
  must only ever observe values built for ``v``;
* **eviction counters conserved** -- every ``stats()`` snapshot satisfies
  ``inserts - evictions == size`` even while writers run (the torn-stats
  regression this PR fixes), and hit/miss counters never overcount.

Reader-side counters (``optimistic_hits``, ``seqlock_retries``) are
updated without the lock and may *undercount* under concurrent readers
(lost increments), never overcount -- the inequality direction asserted
here.
"""

import random
import sys
import threading

import pytest

from repro.core.lru import LRUCache

#: Preempt aggressively inside optimistic windows (default is 5 ms).
FAST_SWITCH = 1e-5


@pytest.fixture(autouse=True)
def aggressive_preemption():
    old = sys.getswitchinterval()
    sys.setswitchinterval(FAST_SWITCH)
    yield
    sys.setswitchinterval(old)


def run_threads(workers):
    threads = [threading.Thread(target=w) for w in workers]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


class SlowKey:
    """A key whose equality check invites preemption mid-``dict`` probe.

    ``dict.get`` compares keys inside one C call, but a Python ``__eq__``
    re-enters the interpreter -- exactly the window an adversarial
    schedule needs to interleave a writer between a reader's sequence
    reads.
    """

    __slots__ = ("ident",)

    def __init__(self, ident):
        self.ident = ident

    def __hash__(self):
        return hash(self.ident)

    def __eq__(self, other):
        if isinstance(other, SlowKey):
            for _ in range(3):  # a few extra bytecodes to preempt inside
                pass
            return self.ident == other.ident
        return NotImplemented


class TestAdversarialInterleavings:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("stripes", [1, 4])
    def test_no_torn_values_and_conserved_counters(self, seed, stripes):
        """Barrier-paced readers/writers/evictors per stripe, seeded schedules."""
        cache = LRUCache(64, stripes=stripes)
        keyspace = [SlowKey(i) for i in range(128)]  # > capacity: evictions
        n_readers, n_writers, rounds, ops = 3, 2, 8, 120
        barrier = threading.Barrier(n_readers + n_writers + 1)
        errors = []
        get_counts = []

        def reader(tid):
            rng = random.Random(seed * 1_000 + tid)
            gets = 0
            try:
                for _ in range(rounds):
                    barrier.wait()
                    for _ in range(ops):
                        key = keyspace[rng.randrange(len(keyspace))]
                        value = cache.get(key)
                        gets += 1
                        if value is not None:
                            # Torn-read check: the value triple must be the
                            # consistent object its writer published.
                            ident, a, b = value
                            if ident != key.ident or a != b:
                                errors.append(("torn", key.ident, value))
            except Exception as exc:  # pragma: no cover - diagnostic path
                errors.append(("reader-raise", tid, repr(exc)))
            get_counts.append(gets)

        def writer(tid):
            rng = random.Random(seed * 2_000 + tid)
            try:
                for _ in range(rounds):
                    barrier.wait()
                    for _ in range(ops):
                        key = keyspace[rng.randrange(len(keyspace))]
                        gen = rng.randrange(1 << 30)
                        cache.put(key, (key.ident, gen, gen))
            except Exception as exc:  # pragma: no cover - diagnostic path
                errors.append(("writer-raise", tid, repr(exc)))

        def evictor():
            # The eviction adversary: floods fresh keys through the LRU
            # tails while auditing a live stats() snapshot each round --
            # the torn-multi-field-read regression check under real
            # concurrent mutation.
            try:
                for r in range(rounds):
                    barrier.wait()
                    for i in range(ops // 2):
                        ident = 10_000 + r * ops + i
                        cache.put(SlowKey(ident), (ident, 0, 0))
                    snap = cache.stats()
                    if snap["inserts"] - snap["evictions"] != snap["size"]:
                        errors.append(("conservation", snap))
            except Exception as exc:  # pragma: no cover - diagnostic path
                errors.append(("evictor-raise", repr(exc)))

        run_threads(
            [lambda t=t: reader(t) for t in range(n_readers)]
            + [lambda t=t: writer(t) for t in range(n_writers)]
            + [evictor]
        )
        assert not errors, errors[:5]
        stats = cache.stats()
        # Writer-side counters are exact; conservation must hold at rest.
        assert stats["inserts"] - stats["evictions"] == stats["size"]
        assert stats["evictions"] > 0, "the schedule must exercise eviction"
        # Reader-side counters never overcount (lock-free increments can
        # only lose updates, not invent them).
        assert stats["hits"] + stats["misses"] <= sum(get_counts)

    def test_no_stale_value_for_newer_pinned_token(self):
        """The version-token discipline under churn: a reader that pinned
        version ``v`` keys its lookup on ``v`` and must only ever observe a
        value built for ``v`` -- across overwrites, eviction and stripe
        growth."""
        cache = LRUCache(32, stripes=2, max_stripes=8)
        current_version = [0]
        stop = threading.Event()
        errors = []

        def mutator():
            # Advances the "table version" and publishes artifacts for the
            # new version, exactly like a refresh invalidating by re-keying.
            for version in range(1, 400):
                current_version[0] = version
                for name in ("a", "b", "c"):
                    cache.put((name, version), (name, version))

        def pinned_reader(tid):
            rng = random.Random(tid)
            while not stop.is_set():
                version = current_version[0]  # pin
                name = rng.choice(("a", "b", "c"))
                value = cache.get((name, version))
                if value is not None and value != (name, version):
                    errors.append((name, version, value))

        readers = [lambda t=t: pinned_reader(t) for t in range(3)]
        threads = [threading.Thread(target=r) for r in readers]
        for t in threads:
            t.start()
        mutator()
        stop.set()
        for t in threads:
            t.join()
        assert not errors, errors[:5]

    def test_seqlock_conflicts_are_observed_and_survivable(self):
        """Under a write-hammered stripe the optimistic protocol must both
        (a) keep returning correct values and (b) record its conflicts
        (``seqlock_retries``) rather than silently degrading."""
        cache = LRUCache(8)  # one stripe: every op conflicts on it
        keys = [SlowKey(i) for i in range(8)]
        for k in keys:
            cache.put(k, (k.ident, 0, 0))
        stop = threading.Event()
        errors = []

        def hammer():
            gen = 0
            while not stop.is_set():
                gen += 1
                for k in keys:
                    cache.put(k, (k.ident, gen, gen))

        writer = threading.Thread(target=hammer)
        writer.start()
        try:
            rng = random.Random(7)
            for _ in range(400):
                for _ in range(200):
                    k = keys[rng.randrange(len(keys))]
                    value = cache.get(k)
                    if value is not None:
                        ident, a, b = value
                        if ident != k.ident or a != b:
                            errors.append((k.ident, value))
                if cache.stats()["seqlock_retries"] > 0:
                    break
        finally:
            stop.set()
            writer.join()
        assert not errors, errors[:5]
        assert cache.stats()["seqlock_retries"] > 0

    def test_adaptive_stripe_growth_under_conflict(self):
        """Sustained conflict on a growable cache must trigger stripe
        doubling (observable as ``stripes`` > initial and
        ``stripe_migrations`` > 0) without losing a single entry."""
        cache = LRUCache(256, stripes=1, max_stripes=8)
        keys = [SlowKey(i) for i in range(64)]
        for k in keys:
            cache.put(k, (k.ident, 0, 0))
        stop = threading.Event()
        errors = []

        def hammer():
            gen = 0
            while not stop.is_set():
                gen += 1
                for k in keys:
                    cache.put(k, (k.ident, gen, gen))

        writer = threading.Thread(target=hammer)
        writer.start()
        try:
            rng = random.Random(11)
            for _ in range(2_000):
                k = keys[rng.randrange(len(keys))]
                value = cache.get(k)
                if value is not None:
                    ident, a, b = value
                    if ident != k.ident or a != b:
                        errors.append((k.ident, value))
                if cache.stripes > 1:
                    break
        finally:
            stop.set()
            writer.join()
        assert not errors, errors[:5]
        # Growth is contention-triggered; when this box's scheduler never
        # produced enough conflicts, force the resize path explicitly so
        # migration correctness is still exercised.
        if cache.stripes == 1:
            cache.resize_stripes(4)
        assert cache.stripes > 1
        assert cache.stripe_migrations > 0
        for k in keys:
            value = cache.get(k)
            assert value is not None and value[0] == k.ident
        stats = cache.stats()
        assert stats["inserts"] - stats["evictions"] == stats["size"]
