"""Package fixtures: the runtime lock-order watchdog over the whole battery.

The concurrency suite is precisely where dynamic lock-order edges (stripe
locks, the MPSC drain lock, pool/transcript nesting) are actually
exercised, so every lock created while it runs is watched; any inversion
fails the package at teardown.  CI additionally runs this suite as its own
named gate (see ``.github/workflows/ci.yml``).
"""

import pytest

from repro.analysis.runtime import LockOrderWatchdog
from repro.reliability import faults


@pytest.fixture(autouse=True)
def clean_failpoints():
    """No armed failpoint (or stale trigger count) ever leaks between tests."""
    faults.disarm_all()
    faults.reset_fault_stats()
    yield
    faults.disarm_all()
    faults.reset_fault_stats()


@pytest.fixture(autouse=True, scope="package")
def lock_order_watchdog():
    """Record every lock acquisition ordering; fail the package on inversion."""
    watchdog = LockOrderWatchdog(mode="record")
    watchdog.install()
    yield watchdog
    watchdog.uninstall()
    inversions = [v for v in watchdog.violations if v.kind == "inversion"]
    if inversions:
        pytest.fail(
            "lock-order inversions observed during the concurrency suite:\n"
            + "\n".join(v.render() for v in inversions)
        )
