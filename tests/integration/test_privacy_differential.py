"""Empirical differential-privacy sanity checks on neighbouring databases.

These tests do not prove DP (that is Theorem 6.2); they check the mechanics
the proof relies on: noise scales derived from the declared sensitivity, and
output distributions on neighbouring tables that overlap heavily (no
give-away outputs), using simple likelihood-ratio style statistics.
"""

import numpy as np
import pytest

from repro.core.accuracy import AccuracySpec
from repro.data.schema import Attribute, CategoricalDomain, Schema
from repro.data.table import Table
from repro.mechanisms.laplace import LaplaceMechanism
from repro.mechanisms.noisy_topk import LaplaceTopKMechanism
from repro.queries.builders import point_workload
from repro.queries.query import TopKCountingQuery, WorkloadCountingQuery


@pytest.fixture()
def neighbouring_tables():
    schema = Schema([Attribute("color", CategoricalDomain(["r", "g", "b"]))])
    rows = [{"color": "r"}] * 40 + [{"color": "g"}] * 30 + [{"color": "b"}] * 30
    table = Table.from_rows(schema, rows)
    neighbour = Table.from_rows(schema, rows + [{"color": "r"}])
    return table, neighbour


class TestLaplaceOnNeighbours:
    def test_noise_scale_matches_declared_epsilon(self, neighbouring_tables):
        table, _ = neighbouring_tables
        query = WorkloadCountingQuery(point_workload("color", ["r", "g", "b"]))
        accuracy = AccuracySpec(alpha=5.0, beta=0.01)
        mechanism = LaplaceMechanism()
        translation = mechanism.translate(query, accuracy, table.schema)
        rng = np.random.default_rng(0)
        errors = []
        for _ in range(2_000):
            result = mechanism.run(query, accuracy, table, rng)
            errors.extend(np.asarray(result.value) - query.true_counts(table))
        observed_scale = np.mean(np.abs(errors))
        expected_scale = translation.details["sensitivity"] / translation.epsilon_upper
        assert observed_scale == pytest.approx(expected_scale, rel=0.1)

    def test_output_distributions_overlap(self, neighbouring_tables):
        """Means of noisy answers on D and D' differ by at most 1 (the true gap)."""
        table, neighbour = neighbouring_tables
        query = WorkloadCountingQuery(point_workload("color", ["r"]))
        accuracy = AccuracySpec(alpha=10.0, beta=0.05)
        mechanism = LaplaceMechanism()
        rng = np.random.default_rng(1)
        on_d = [float(mechanism.run(query, accuracy, table, rng).value[0]) for _ in range(1_500)]
        on_d_prime = [
            float(mechanism.run(query, accuracy, neighbour, rng).value[0]) for _ in range(1_500)
        ]
        assert abs(np.mean(on_d_prime) - np.mean(on_d) - 1.0) < 0.5
        # empirical epsilon estimate from histogram likelihood ratios stays small
        bins = np.linspace(min(on_d + on_d_prime), max(on_d + on_d_prime), 20)
        hist_d, _ = np.histogram(on_d, bins=bins, density=True)
        hist_dp, _ = np.histogram(on_d_prime, bins=bins, density=True)
        mask = (hist_d > 0) & (hist_dp > 0)
        ratios = np.abs(np.log(hist_d[mask] / hist_dp[mask]))
        translation = mechanism.translate(query, accuracy, table.schema)
        assert np.median(ratios) <= translation.epsilon_upper * 3 + 0.5


class TestTopKOnNeighbours:
    def test_selection_probabilities_are_close(self, neighbouring_tables):
        table, neighbour = neighbouring_tables
        query = TopKCountingQuery(point_workload("color", ["r", "g", "b"]), k=1)
        accuracy = AccuracySpec(alpha=20.0, beta=0.05)
        mechanism = LaplaceTopKMechanism()
        rng = np.random.default_rng(2)
        trials = 1_500

        def selection_rate(data):
            hits = 0
            for _ in range(trials):
                if mechanism.run(query, accuracy, data, rng).value == ["color = r"]:
                    hits += 1
            return hits / trials

        rate_d = selection_rate(table)
        rate_dp = selection_rate(neighbour)
        translation = mechanism.translate(query, accuracy, table.schema)
        bound = np.exp(translation.epsilon_upper)
        assert rate_dp <= rate_d * bound + 0.05
        assert rate_d <= rate_dp * bound + 0.05
