"""End-to-end integration tests: full exploration sessions through the engine."""

import numpy as np
import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.engine import APExEngine
from repro.core.translator import SelectionMode
from repro.mechanisms.registry import default_registry
from repro.queries.builders import (
    cumulative_histogram_workload,
    histogram_workload,
    point_workload,
)
from repro.queries.query import (
    IcebergCountingQuery,
    TopKCountingQuery,
    WorkloadCountingQuery,
)


@pytest.fixture()
def engine(adult_small):
    return APExEngine(
        adult_small, budget=5.0, seed=1, registry=default_registry(mc_samples=400)
    )


class TestMixedSession:
    def test_adaptive_session_stays_valid(self, engine, adult_small):
        """A realistic adaptive session: histogram -> CDF -> iceberg -> top-k."""
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))

        histogram = engine.explore(
            WorkloadCountingQuery(
                histogram_workload("capital_gain", start=0, stop=5000, bins=25),
                name="histogram",
            ),
            accuracy,
        )
        assert not histogram.denied

        # the analyst uses the histogram to pick a threshold for the iceberg query
        threshold = float(np.sort(histogram.answer)[-3])
        iceberg = engine.explore(
            IcebergCountingQuery(
                histogram_workload("capital_gain", start=0, stop=5000, bins=25),
                threshold=threshold,
                name="iceberg",
            ),
            accuracy,
        )
        assert not iceberg.denied

        cdf = engine.explore(
            WorkloadCountingQuery(
                cumulative_histogram_workload("capital_gain", start=0, stop=5000, bins=25),
                name="cdf",
            ),
            accuracy,
        )
        assert not cdf.denied
        assert cdf.mechanism == "WCQ-SM"

        top = engine.explore(
            TopKCountingQuery(point_workload("state", schema=adult_small.schema), k=5,
                              name="top-states"),
            accuracy,
        )
        assert not top.denied
        assert len(top.answer) == 5

        transcript = engine.transcript()
        assert len(transcript) == 4
        assert transcript.is_valid(engine.budget)
        assert engine.budget_spent == pytest.approx(transcript.total_epsilon())

    def test_session_denies_once_budget_exhausted_then_recovers_for_cheaper_queries(
        self, adult_small
    ):
        engine = APExEngine(adult_small, budget=0.08, seed=2)
        expensive = WorkloadCountingQuery(
            cumulative_histogram_workload("capital_gain", start=0, stop=5000, bins=50),
            name="expensive",
        )
        cheap = WorkloadCountingQuery(
            point_workload("sex", ["M", "F"]), name="cheap"
        )
        tight = AccuracySpec(alpha=0.02 * len(adult_small))
        loose = AccuracySpec(alpha=0.3 * len(adult_small))

        first = engine.explore(expensive, tight)
        # whatever happened, a loose-accuracy cheap query should still fit
        followup = engine.explore(cheap, loose)
        assert not followup.denied
        assert engine.transcript().is_valid(engine.budget)
        assert engine.budget_spent <= engine.budget + 1e-9
        _ = first

    def test_accuracy_bounds_hold_across_session(self, adult_small):
        engine = APExEngine(adult_small, budget=50.0, seed=3)
        accuracy = AccuracySpec(alpha=0.04 * len(adult_small), beta=1e-3)
        query = WorkloadCountingQuery(
            histogram_workload("age", start=0, stop=100, bins=20), name="ages"
        )
        truth = query.true_counts(adult_small)
        for _ in range(10):
            result = engine.explore(query, accuracy)
            assert not result.denied
            assert np.abs(result.answer - truth).max() < accuracy.alpha

    def test_text_interface_session(self, adult_small):
        engine = APExEngine(adult_small, budget=2.0, seed=4)
        alpha = 0.1 * len(adult_small)
        queries = [
            f"BIN D ON COUNT(*) WHERE W = {{sex = 'M', sex = 'F'}} ERROR {alpha} CONFIDENCE 0.9995;",
            (
                "BIN D ON COUNT(*) WHERE W = {age BETWEEN 17 AND 30, age BETWEEN 30 AND 50, "
                f"age BETWEEN 50 AND 90}} ERROR {alpha} CONFIDENCE 0.9995;"
            ),
            (
                "BIN D ON COUNT(*) WHERE W = {workclass = 'private', workclass = 'state-gov'} "
                f"ORDER BY COUNT(*) LIMIT 1 ERROR {alpha} CONFIDENCE 0.9995;"
            ),
        ]
        results = [engine.explore_text(text) for text in queries]
        assert all(not result.denied for result in results)
        assert results[2].answer == ["workclass = 'private'"]

    def test_modes_agree_on_data_independent_queries(self, adult_small,
                                                     capital_gain_histogram_query):
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        optimistic = APExEngine(
            adult_small, budget=1.0, seed=5, mode=SelectionMode.OPTIMISTIC
        ).explore(capital_gain_histogram_query, accuracy)
        pessimistic = APExEngine(
            adult_small, budget=1.0, seed=5, mode=SelectionMode.PESSIMISTIC
        ).explore(capital_gain_histogram_query, accuracy)
        assert optimistic.mechanism == pessimistic.mechanism == "WCQ-LM"
        assert optimistic.epsilon_spent == pytest.approx(pessimistic.epsilon_spent)


class TestPrivacyAccountingProperties:
    def test_actual_charge_never_exceeds_admitted_bound(self, adult_small):
        engine = APExEngine(adult_small, budget=1.0, seed=6)
        accuracy = AccuracySpec(alpha=0.05 * len(adult_small))
        query = IcebergCountingQuery(
            histogram_workload("capital_gain", start=0, stop=5000, bins=20),
            threshold=0.5 * len(adult_small),
            name="icq",
        )
        for _ in range(10):
            result = engine.explore(query, accuracy)
            if result.denied:
                break
            assert result.epsilon_spent <= result.epsilon_upper + 1e-9
        assert engine.transcript().is_valid(engine.budget)

    def test_denied_queries_do_not_change_state(self, adult_small):
        engine = APExEngine(adult_small, budget=0.01, seed=7)
        accuracy = AccuracySpec(alpha=0.01 * len(adult_small))
        query = WorkloadCountingQuery(
            cumulative_histogram_workload("capital_gain", start=0, stop=5000, bins=50),
            name="expensive",
        )
        before = engine.budget_spent
        for _ in range(3):
            assert engine.explore(query, accuracy).denied
        assert engine.budget_spent == before
        assert len(engine.transcript().denied()) == 3
