"""Tests for the analyst-session extensions (Appendix E aggregates, recommender)."""

import numpy as np
import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.engine import APExEngine
from repro.core.exceptions import ApexError, QueryError
from repro.extensions import AnalystSession, recommend_costs
from repro.mechanisms.registry import default_registry
from repro.queries.builders import histogram_workload, prefix_workload
from repro.queries.query import WorkloadCountingQuery


@pytest.fixture()
def session(adult_small) -> AnalystSession:
    engine = APExEngine(
        adult_small, budget=10.0, seed=3, registry=default_registry(mc_samples=300)
    )
    return AnalystSession(engine, AccuracySpec(alpha=0.05 * len(adult_small)))


class TestConstruction:
    def test_requires_engine(self):
        with pytest.raises(ApexError):
            AnalystSession("not an engine", AccuracySpec(alpha=1))  # type: ignore[arg-type]

    def test_budget_passthrough(self, session):
        assert session.budget_remaining == session.engine.budget_remaining == 10.0


class TestHistogramAndCdf:
    def test_histogram_uses_domain_range(self, session):
        result = session.histogram("age", bins=10)
        assert not result.denied
        assert len(result.answer) == 10

    def test_histogram_explicit_range(self, session):
        result = session.histogram("capital_gain", bins=5, value_range=(0, 5000))
        assert len(result.answer) == 5

    def test_unbounded_attribute_needs_range(self, adult_small):
        engine = APExEngine(adult_small, budget=1.0, seed=0)
        session = AnalystSession(engine, AccuracySpec(alpha=100))
        # hours_per_week has a bounded domain; fabricate the failure with a
        # categorical attribute instead
        with pytest.raises(QueryError):
            session.histogram("sex")

    def test_cdf_monotone_up_to_noise(self, session, adult_small):
        result = session.cdf("age", bins=8)
        counts = np.asarray(result.answer)
        # noisy, but the total must be close to |D|
        assert counts[-1] == pytest.approx(len(adult_small), abs=0.1 * len(adult_small))

    def test_each_call_charges_budget(self, session):
        before = session.budget_remaining
        session.histogram("age", bins=10)
        assert session.budget_remaining < before


class TestQuantiles:
    def test_median_close_to_truth(self, session, adult_small):
        median, result = session.median("age", bins=40, value_range=(15, 95))
        assert not result.denied
        true_median = float(np.median(adult_small.column("age").astype(float)))
        assert median == pytest.approx(true_median, abs=5.0)

    def test_quantile_ordering(self, session):
        q25, _ = session.quantile("age", 0.25, bins=40, value_range=(15, 95))
        q75, _ = session.quantile("age", 0.75, bins=40, value_range=(15, 95))
        assert q25 <= q75

    def test_quantile_validation(self, session):
        with pytest.raises(QueryError):
            session.quantile("age", 1.5)

    def test_denied_quantile_returns_none(self, adult_small):
        engine = APExEngine(adult_small, budget=1e-6, seed=0)
        session = AnalystSession(engine, AccuracySpec(alpha=0.05 * len(adult_small)))
        value, result = session.median("age", value_range=(15, 95))
        assert value is None and result.denied


class TestGroupBy:
    def test_group_by_returns_large_groups(self, session, adult_small):
        counts, results = session.group_by_counts("sex", min_count=0.05 * len(adult_small))
        assert len(results) == 2
        assert set(counts) == {"M", "F"}
        true_male = float((adult_small.column("sex") == "M").sum())
        assert counts["M"] == pytest.approx(true_male, abs=0.1 * len(adult_small))

    def test_group_by_threshold_filters(self, session, adult_small):
        counts, _ = session.group_by_counts(
            "workclass", min_count=0.5 * len(adult_small)
        )
        assert counts == {} or set(counts) == {"private"}

    def test_group_by_requires_categorical(self, session):
        with pytest.raises(QueryError):
            session.group_by_counts("age")

    def test_group_by_denied_when_budget_gone(self, adult_small):
        engine = APExEngine(adult_small, budget=1e-6, seed=0)
        session = AnalystSession(engine, AccuracySpec(alpha=0.05 * len(adult_small)))
        counts, results = session.group_by_counts("sex")
        assert counts == {}
        assert results[0].denied


class TestSumAndMean:
    def test_sum_estimate_close(self, session, adult_small):
        estimate, result = session.sum_estimate("hours_per_week", bins=50, value_range=(0, 100))
        assert not result.denied
        truth = float(adult_small.column("hours_per_week").astype(float).sum())
        assert estimate == pytest.approx(truth, rel=0.15)

    def test_mean_estimate_close(self, session, adult_small):
        estimate, _ = session.mean_estimate("age", bins=40, value_range=(15, 95))
        truth = float(adult_small.column("age").astype(float).mean())
        assert estimate == pytest.approx(truth, abs=4.0)

    def test_mean_none_when_denied(self, adult_small):
        engine = APExEngine(adult_small, budget=1e-6, seed=0)
        session = AnalystSession(engine, AccuracySpec(alpha=0.05 * len(adult_small)))
        estimate, result = session.mean_estimate("age", value_range=(15, 95))
        assert estimate is None and result.denied


class TestRecommender:
    def test_recommendations_cost_nothing(self, session, adult_small):
        histogram = WorkloadCountingQuery(
            histogram_workload("capital_gain", start=0, stop=5000, bins=20), name="hist"
        )
        prefix = WorkloadCountingQuery(
            prefix_workload("capital_gain", [250.0 * i for i in range(1, 21)]), name="prefix"
        )
        before = session.budget_remaining
        recommendations = session.recommend([(histogram, None), (prefix, None)])
        assert session.budget_remaining == before
        assert len(recommendations) == 2
        by_name = {r.query_name: r for r in recommendations}
        assert by_name["hist"].best_mechanism == "WCQ-LM"
        assert by_name["prefix"].best_mechanism == "WCQ-SM"
        assert all(r.fits_budget for r in recommendations)

    def test_recommendation_flags_unaffordable_queries(self, adult_small):
        engine = APExEngine(adult_small, budget=1e-5, seed=0)
        recommendations = recommend_costs(
            engine,
            [(
                WorkloadCountingQuery(
                    histogram_workload("capital_gain", start=0, stop=5000, bins=20),
                    name="hist",
                ),
                AccuracySpec(alpha=0.05 * len(adult_small)),
            )],
        )
        assert not recommendations[0].fits_budget
        assert recommendations[0].epsilon_lower <= recommendations[0].epsilon_upper
