"""ArtifactStore fault tolerance: lock timeouts, retries, degradation, logging."""

import hashlib
import logging
import os

import pytest

from repro.core.exceptions import StoreLockTimeout
from repro.reliability import faults
from repro.store import ArtifactStore
from repro.store.artifact_store import _MAGIC, _FileLock

try:
    import fcntl
except ImportError:  # pragma: no cover - POSIX-only suite
    fcntl = None

DIGEST = hashlib.sha256(b"key").hexdigest()


def make_store(tmp_path, **kwargs):
    kwargs.setdefault("retry_base_delay", 0.001)
    return ArtifactStore(str(tmp_path / "store"), **kwargs)


@pytest.mark.skipif(fcntl is None, reason="needs fcntl advisory locks")
class TestLockTimeout:
    def test_contended_lock_times_out_typed(self, tmp_path):
        lock_path = str(tmp_path / ".lock")
        holder = open(lock_path, "a+b")
        fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
        try:
            with pytest.raises(StoreLockTimeout, match="could not acquire"):
                with _FileLock(lock_path, timeout=0.05, interval=0.01):
                    pass
        finally:
            fcntl.flock(holder.fileno(), fcntl.LOCK_UN)
            holder.close()

    def test_uncontended_lock_acquires(self, tmp_path):
        with _FileLock(str(tmp_path / ".lock"), timeout=0.05):
            pass

    def test_clear_surfaces_lock_timeout(self, tmp_path):
        store = make_store(tmp_path, lock_timeout=0.05)
        holder = open(os.path.join(store.root, ".lock"), "a+b")
        fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
        try:
            with pytest.raises(StoreLockTimeout):
                store.clear()
        finally:
            fcntl.flock(holder.fileno(), fcntl.LOCK_UN)
            holder.close()

    def test_eviction_degrades_past_lock_timeout(self, tmp_path):
        # A tiny cap forces eviction on every save; a held lock must skip
        # the pass (counted), not fail the save.
        store = make_store(tmp_path, max_bytes=256, lock_timeout=0.05)
        holder = open(os.path.join(store.root, ".lock"), "a+b")
        fcntl.flock(holder.fileno(), fcntl.LOCK_EX)
        try:
            assert store.save("kind", DIGEST, list(range(200)))
        finally:
            fcntl.flock(holder.fileno(), fcntl.LOCK_UN)
            holder.close()
        assert store.stats()["lock_timeouts"] == 1


class TestCorruptLoadObservability:
    def test_corrupt_file_counted_and_named_in_log(self, tmp_path, caplog):
        store = make_store(tmp_path)
        assert store.save("translations", DIGEST, {"x": 1})
        path = store._path("translations", DIGEST)
        blob = open(path, "rb").read()
        with open(path, "wb") as handle:  # flip one payload byte
            handle.write(blob[:-1] + bytes([blob[-1] ^ 0xFF]))
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert store.load("translations", DIGEST) is None
        stats = store.stats()
        assert stats["corrupt_loads"] == 1
        assert stats["corrupt"] == 1  # back-compat counter still moves
        record = caplog.records[-1]
        assert "translations" in record.getMessage()
        assert DIGEST in record.getMessage()
        assert not os.path.exists(path)  # evicted

    def test_unpicklable_payload_also_counted(self, tmp_path, caplog):
        store = make_store(tmp_path)
        path = store._path("translations", DIGEST)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        payload = b"not a pickle"
        blob = _MAGIC + hashlib.sha256(payload).hexdigest().encode() + b"\n" + payload
        with open(path, "wb") as handle:
            handle.write(blob)
        with caplog.at_level(logging.WARNING, logger="repro.store"):
            assert store.load("translations", DIGEST) is None
        assert store.stats()["corrupt_loads"] == 1


class TestRetries:
    def test_transient_read_error_is_retried(self, tmp_path):
        store = make_store(tmp_path, io_retries=2)
        assert store.save("kind", DIGEST, 42)
        faults.arm("store.load.read", "io-error", count=1)  # fails once
        assert store.load("kind", DIGEST) == 42
        stats = store.stats()
        assert stats["io_retries"] == 1
        assert stats["io_errors"] == 0  # never exhausted the retries
        assert stats["hits"] == 1

    def test_persistent_read_error_becomes_miss(self, tmp_path):
        store = make_store(tmp_path, io_retries=1, degrade_after=0)
        assert store.save("kind", DIGEST, 42)
        faults.arm("store.load.read", "io-error")  # every attempt fails
        assert store.load("kind", DIGEST) is None
        stats = store.stats()
        assert stats["io_errors"] == 1
        assert stats["io_retries"] == 1
        assert stats["misses"] == 1

    def test_transient_write_error_is_retried(self, tmp_path):
        store = make_store(tmp_path, io_retries=2)
        faults.arm("store.save.write", "io-error", count=1)
        assert store.save("kind", DIGEST, 42)
        assert store.load("kind", DIGEST) == 42
        assert store.stats()["io_retries"] == 1

    def test_missing_file_is_plain_miss_not_error(self, tmp_path):
        store = make_store(tmp_path)
        assert store.load("kind", DIGEST) is None
        stats = store.stats()
        assert stats["misses"] == 1
        assert stats["io_errors"] == 0


class TestDegradationGate:
    def test_failure_streak_trips_gate_and_cooldown_reopens(self, tmp_path):
        store = make_store(
            tmp_path, io_retries=0, degrade_after=2, degrade_cooldown=0.05
        )
        assert store.save("kind", DIGEST, 42)
        faults.arm("store.load.read", "io-error", count=2)
        assert store.load("kind", DIGEST) is None
        assert store.load("kind", DIGEST) is None  # streak hits 2: gate trips
        assert store.stats()["degraded"] == 1
        # While degraded: loads miss and saves no-op without touching disk
        # (the failpoint is exhausted, so a disk touch would succeed and
        # wrongly return a hit here).
        assert store.load("kind", DIGEST) is None
        assert not store.save("kind", DIGEST, 43)
        assert store.stats()["degraded_skips"] >= 2
        import time

        time.sleep(0.06)  # cooldown expires; the disk is probed again
        assert store.load("kind", DIGEST) == 42
        assert store.stats()["degraded"] == 0

    def test_success_resets_the_streak(self, tmp_path):
        store = make_store(tmp_path, io_retries=0, degrade_after=2)
        assert store.save("kind", DIGEST, 42)
        faults.arm("store.load.read", "io-error", count=1)
        assert store.load("kind", DIGEST) is None  # streak 1
        assert store.load("kind", DIGEST) == 42  # success resets
        faults.arm("store.load.read", "io-error", count=1)
        assert store.load("kind", DIGEST) is None  # streak 1 again, no trip
        assert store.stats()["degraded"] == 0

    def test_gate_disabled_with_degrade_after_zero(self, tmp_path):
        store = make_store(tmp_path, io_retries=0, degrade_after=0)
        faults.arm("store.load.read", "io-error", count=5)
        for _ in range(5):
            assert store.load("kind", DIGEST) is None
        assert store.stats()["degraded"] == 0
        assert store.stats()["io_errors"] == 5


class TestConstructorValidation:
    def test_bad_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(str(tmp_path / "s"), io_retries=-1)
        with pytest.raises(ValueError):
            ArtifactStore(str(tmp_path / "s"), degrade_after=-1)
