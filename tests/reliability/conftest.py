"""Shared fixtures: failpoint hygiene for every reliability test."""

import pytest

from repro.reliability import faults


@pytest.fixture(autouse=True)
def clean_failpoints():
    """No armed failpoint (or stale trigger count) ever leaks between tests."""
    faults.disarm_all()
    faults.reset_fault_stats()
    yield
    faults.disarm_all()
    faults.reset_fault_stats()
