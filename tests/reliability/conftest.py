"""Shared fixtures: failpoint hygiene + lock-order watchdog for the suite."""

import pytest

from repro.analysis.runtime import LockOrderWatchdog
from repro.reliability import faults


@pytest.fixture(autouse=True)
def clean_failpoints():
    """No armed failpoint (or stale trigger count) ever leaks between tests."""
    faults.disarm_all()
    faults.reset_fault_stats()
    yield
    faults.disarm_all()
    faults.reset_fault_stats()


@pytest.fixture(autouse=True, scope="package")
def lock_order_watchdog():
    """Every lock created by reliability tests runs under the watchdog.

    Record mode: the tests themselves are unaffected, but any lock-order
    inversion the suite exercises (the dynamic edges APX003 cannot resolve
    statically) fails the package at teardown.
    """
    watchdog = LockOrderWatchdog(mode="record")
    watchdog.install()
    yield watchdog
    watchdog.uninstall()
    inversions = [v for v in watchdog.violations if v.kind == "inversion"]
    if inversions:
        pytest.fail(
            "lock-order inversions observed during the reliability suite:\n"
            + "\n".join(v.render() for v in inversions)
        )
