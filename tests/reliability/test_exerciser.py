"""The property-based history exerciser over a bounded seed set.

Each seed derives a full random scenario (ops, crash plan, optional torn
tail) and checks every recovery invariant; a failure message carries the
whole report so the scenario can be replayed from its seed.  CI runs the
same seeds as a named gate; the ``--suite reliability`` benchmark runs a
larger sweep.
"""

import json

import pytest

from repro.reliability.exerciser import CRASH_SITES, generate_script, run_history

SEEDS = [2, 3, 5]


@pytest.mark.parametrize("seed", SEEDS)
def test_history_invariants_hold(seed, tmp_path):
    report = run_history(
        seed,
        work_dir=str(tmp_path / f"seed-{seed}"),
        n_ops=6,
        n_rows=300,
        mc_samples=120,
    )
    assert report["ok"], json.dumps(report, indent=2, default=str)


def test_generated_scripts_are_reproducible():
    import random

    a = generate_script(random.Random(7), 20)
    b = generate_script(random.Random(7), 20)
    assert a == b
    ops = {op["op"] for op in a}
    assert "explore" in ops  # the generator must actually explore


def test_crash_sites_are_registered():
    from repro.reliability.faults import FAILPOINT_SITES

    for site in CRASH_SITES:
        assert site in FAILPOINT_SITES
