"""Per-request deadlines: cooperative abort that never leaks a reservation."""

import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.exceptions import ApexError, RequestTimeoutError
from repro.mechanisms.registry import default_registry
from repro.queries.builders import histogram_workload
from repro.queries.query import WorkloadCountingQuery
from repro.reliability import faults
from repro.reliability.deadline import Deadline
from repro.service import ExplorationService
from tests.service.util import small_table

ACC = AccuracySpec(alpha=100.0, beta=5e-4)


def hist_query(name="hist"):
    return WorkloadCountingQuery(
        histogram_workload("amount", start=0, stop=10_000, bins=8), name=name
    )


class TestDeadline:
    def test_unexpired_check_passes(self):
        Deadline(60.0).check("request")

    def test_expired_check_raises_typed_error(self):
        deadline = Deadline(1e-9)
        with pytest.raises(RequestTimeoutError) as excinfo:
            while True:  # spin until the nanosecond budget is gone
                deadline.check("request")
        assert excinfo.value.deadline == 1e-9
        assert excinfo.value.elapsed > 0

    def test_after_none_means_no_deadline(self):
        assert Deadline.after(None) is None
        assert Deadline.after(5.0).seconds == 5.0

    def test_nonpositive_rejected(self):
        with pytest.raises(ApexError):
            Deadline(0.0)


class TestServiceTimeout:
    @pytest.fixture(scope="class")
    def table(self):
        return small_table(800)

    def make_service(self, table, **kwargs):
        return ExplorationService(
            table,
            budget=kwargs.pop("budget", 2.0),
            registry=default_registry(mc_samples=150),
            seed=0,
            batch_window=0.0,
            **kwargs,
        )

    def test_slow_explore_aborts_and_releases_reservation(self, table):
        service = self.make_service(table, request_deadline=0.05)
        service.register_analyst("alice")
        handle = service.session("alice")
        # Stall after the mechanism ran but before the charge: the abort
        # must discard the (already computed!) answer without charging.
        with faults.armed("engine.explore.after_run", "sleep:0.2"):
            with pytest.raises(RequestTimeoutError):
                service.explore("alice", hist_query(), ACC)
        assert service.budget_spent == 0.0  # nothing charged
        assert handle.ledger.reserved == 0.0  # nothing leaked
        assert service.pool.reserved == 0.0
        service.assert_invariants()
        assert service.stats()["reliability"]["timeouts"] == 1

    def test_request_within_deadline_succeeds(self, table):
        service = self.make_service(table, request_deadline=60.0)
        service.register_analyst("alice")
        result = service.explore("alice", hist_query(), ACC)
        assert not result.denied
        assert service.stats()["reliability"]["timeouts"] == 0
        service.assert_invariants()

    def test_no_deadline_by_default(self, table):
        service = self.make_service(table)
        service.register_analyst("alice")
        with faults.armed("engine.explore.after_run", "sleep:0.05"):
            result = service.explore("alice", hist_query(), ACC)
        assert not result.denied

    def test_nonpositive_deadline_rejected(self, table):
        with pytest.raises(ApexError, match="request_deadline"):
            self.make_service(table, request_deadline=0.0)

    def test_timed_out_budget_is_reusable(self, table):
        """The headroom a timeout released must admit the next request."""
        service = self.make_service(table, budget=0.6, request_deadline=0.05)
        service.register_analyst("alice")
        with faults.armed("engine.explore.after_run", "sleep:0.2"):
            with pytest.raises(RequestTimeoutError):
                service.explore("alice", hist_query("q1"), ACC)
        # Budget 0.6 admits only ~one explore; it must not be eaten by the
        # timed-out attempt.
        result = service.explore("alice", hist_query("q2"), ACC)
        assert not result.denied
        service.assert_invariants()
