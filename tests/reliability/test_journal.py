"""The write-ahead journal: framing, torn tails, corruption, recovery math."""

import os

import pytest

from repro.core.exceptions import ApexError, JournalCorruptError
from repro.reliability.journal import (
    JournalRecovery,
    LedgerJournal,
    _encode,
    read_journal,
)


def journal_path(tmp_path) -> str:
    return str(tmp_path / "ledger.wal")


class TestRoundTrip:
    def test_append_then_reopen_replays_exactly(self, tmp_path):
        path = journal_path(tmp_path)
        with LedgerJournal(path) as journal:
            rid = journal.append("reserve", eps_upper=0.5, query="q1")
            journal.append(
                "commit", rid=rid, eps_upper=0.5, eps_spent=0.3, query="q1"
            )
        recovery = LedgerJournal(path).recovery
        assert len(recovery.records) == 2
        assert recovery.committed_epsilon == 0.3
        assert recovery.inflight == ()
        assert recovery.spent == 0.3
        assert recovery.truncated_bytes == 0

    def test_floats_roundtrip_bit_identical(self, tmp_path):
        path = journal_path(tmp_path)
        eps = 0.1 + 0.2  # a float with no short decimal representation
        with LedgerJournal(path) as journal:
            journal.append("commit", eps_spent=eps, eps_upper=eps)
        recovery = LedgerJournal(path).recovery
        assert recovery.committed_epsilon == eps  # exact, not approximate

    def test_seq_strictly_increasing_across_restarts(self, tmp_path):
        path = journal_path(tmp_path)
        with LedgerJournal(path) as journal:
            first = journal.append("deny", query="a")
        with LedgerJournal(path) as journal:
            second = journal.append("deny", query="b")
        assert second > first

    def test_unknown_op_rejected(self, tmp_path):
        with LedgerJournal(journal_path(tmp_path)) as journal:
            with pytest.raises(ApexError, match="unknown journal op"):
                journal.append("frobnicate")

    def test_append_after_close_rejected(self, tmp_path):
        journal = LedgerJournal(journal_path(tmp_path))
        journal.close()
        with pytest.raises(ApexError, match="closed"):
            journal.append("deny")


class TestTornTail:
    def test_torn_tail_is_truncated(self, tmp_path):
        path = journal_path(tmp_path)
        with LedgerJournal(path) as journal:
            journal.append("commit", eps_spent=0.2, eps_upper=0.2)
        with open(path, "ab") as handle:
            handle.write(b"deadbeef {\"torn\": tr")  # no newline, bad json
        records, truncated = read_journal(path)
        assert len(records) == 1
        assert truncated > 0
        # repair=True physically truncates; the reopened journal is clean
        recovery = LedgerJournal(path).recovery
        assert recovery.truncated_bytes > 0
        assert read_journal(path) == ([r for r in recovery.records], 0) or (
            read_journal(path)[1] == 0
        )

    def test_bitflipped_tail_is_truncated(self, tmp_path):
        path = journal_path(tmp_path)
        with LedgerJournal(path) as journal:
            journal.append("commit", eps_spent=0.2, eps_upper=0.2)
            journal.append("commit", eps_spent=0.1, eps_upper=0.1)
        blob = open(path, "rb").read()
        flipped = blob[:-5] + bytes([blob[-5] ^ 0xFF]) + blob[-4:]
        with open(path, "wb") as handle:
            handle.write(flipped)
        records, truncated = read_journal(path)
        assert len(records) == 1  # the damaged last record is dropped
        assert truncated > 0

    def test_mid_file_corruption_refuses_to_truncate(self, tmp_path):
        path = journal_path(tmp_path)
        with LedgerJournal(path) as journal:
            journal.append("commit", eps_spent=0.2, eps_upper=0.2)
            journal.append("commit", eps_spent=0.1, eps_upper=0.1)
        blob = open(path, "rb").read()
        first_end = blob.index(b"\n") + 1
        # Corrupt the FIRST record; the second stays valid -> not a torn tail.
        damaged = b"x" * (first_end - 1) + blob[first_end - 1 :]
        with open(path, "wb") as handle:
            handle.write(damaged)
        with pytest.raises(JournalCorruptError, match="mid-file corruption"):
            read_journal(path)
        with pytest.raises(JournalCorruptError):
            LedgerJournal(path)  # opening must also refuse, not silently drop

    def test_sequence_regression_is_corruption(self, tmp_path):
        path = journal_path(tmp_path)
        with open(path, "wb") as handle:
            handle.write(_encode({"op": "deny", "seq": 5}))
            handle.write(_encode({"op": "deny", "seq": 3}))
        with pytest.raises(JournalCorruptError, match="regressed"):
            read_journal(path)

    def test_missing_file_is_empty_recovery(self, tmp_path):
        assert read_journal(str(tmp_path / "nope.wal")) == ([], 0)


class TestRecoveryMath:
    def test_inflight_reserve_charged_at_upper(self):
        recovery = JournalRecovery.from_records(
            [
                {"op": "reserve", "seq": 1, "eps_upper": 0.5},
                {"op": "commit", "seq": 2, "rid": 1, "eps_spent": 0.3, "eps_upper": 0.5},
                {"op": "reserve", "seq": 3, "eps_upper": 0.4},
            ]
        )
        assert recovery.committed_epsilon == 0.3
        assert recovery.inflight_epsilon == 0.4  # conservative: worst case
        assert recovery.spent == pytest.approx(0.7)

    def test_release_clears_inflight(self):
        recovery = JournalRecovery.from_records(
            [
                {"op": "reserve", "seq": 1, "eps_upper": 0.5},
                {"op": "release", "seq": 2, "rid": 1},
            ]
        )
        assert recovery.inflight == ()
        assert recovery.spent == 0.0

    def test_denials_cost_nothing(self):
        recovery = JournalRecovery.from_records(
            [{"op": "deny", "seq": 1, "query": "q"}]
        )
        assert recovery.spent == 0.0
        assert len(recovery.denials) == 1

    def test_unknown_ops_preserved_but_ignored(self):
        recovery = JournalRecovery.from_records(
            [{"op": "future-op", "seq": 1, "eps_spent": 9.0}]
        )
        assert recovery.spent == 0.0
        assert len(recovery.records) == 1


class TestDurability:
    def test_sync_false_still_recovers_after_close(self, tmp_path):
        path = journal_path(tmp_path)
        with LedgerJournal(path, sync=False) as journal:
            journal.append("commit", eps_spent=0.1, eps_upper=0.1)
        assert LedgerJournal(path).recovery.spent == 0.1

    def test_stats_counters(self, tmp_path):
        path = journal_path(tmp_path)
        with LedgerJournal(path) as journal:
            journal.append("deny")
            stats = journal.stats()
        assert stats["appended_records"] == 1
        assert stats["recovered_records"] == 0
        reopened = LedgerJournal(path)
        assert reopened.stats()["recovered_records"] == 1
        assert os.path.exists(reopened.path)
