"""Journaled accounting: write-ahead ordering, recovery adoption, invariants.

Includes the exception-path audit regressions: any failure between reserve
and commit -- injected at the engine's and the ledger's own failpoints --
must always release the reservation (no orphaned headroom), and
``assert_invariants`` must catch the books drifting.
"""

import pytest

from repro.core.accounting import PrivacyLedger
from repro.core.accuracy import AccuracySpec
from repro.core.engine import APExEngine
from repro.core.exceptions import ApexError, FaultInjected, LedgerInvariantError
from repro.mechanisms.registry import default_registry
from repro.queries.builders import histogram_workload
from repro.queries.query import WorkloadCountingQuery
from repro.reliability import faults
from repro.reliability.journal import LedgerJournal
from repro.service.budget import SessionLedger, SharedBudgetPool
from tests.service.util import small_table

ACC = AccuracySpec(alpha=100.0, beta=5e-4)


def hist_query(name="hist", bins=8):
    return WorkloadCountingQuery(
        histogram_workload("amount", start=0, stop=10_000, bins=bins), name=name
    )


@pytest.fixture()
def journal(tmp_path):
    with LedgerJournal(str(tmp_path / "ledger.wal")) as j:
        yield j


class TestWriteAheadOrdering:
    def test_reserve_then_charge_round_trips(self, tmp_path, journal):
        ledger = PrivacyLedger(1.0, journal=journal)
        reservation = ledger.reserve(0.4, context={"query": "q1", "kind": "wcq"})
        assert reservation.rid is not None
        ledger.charge(
            query_name="q1",
            query_kind="wcq",
            accuracy=ACC,
            mechanism="LM",
            epsilon_upper=0.4,
            epsilon_spent=0.25,
            answer=None,
            reservation=reservation,
        )
        journal.close()
        recovery = LedgerJournal(journal.path).recovery
        assert recovery.spent == 0.25  # exact commit, no in-flight surcharge
        assert recovery.inflight == ()

    def test_unresolved_reserve_recovered_conservatively(self, tmp_path, journal):
        ledger = PrivacyLedger(1.0, journal=journal)
        ledger.reserve(0.4, context={"query": "q1", "kind": "wcq"})
        journal.close()  # process "dies" with the reservation in flight
        recovery = LedgerJournal(journal.path).recovery
        assert recovery.spent == 0.4  # worst case, not zero

    def test_release_is_journaled_first(self, journal):
        ledger = PrivacyLedger(1.0, journal=journal)
        reservation = ledger.reserve(0.4)
        ledger.release(reservation)
        journal.close()
        recovery = LedgerJournal(journal.path).recovery
        assert recovery.spent == 0.0  # released means the mechanism never ran

    def test_denials_are_journaled(self, journal):
        ledger = PrivacyLedger(1.0, journal=journal)
        ledger.deny(query_name="q", query_kind="wcq", accuracy=ACC)
        journal.close()
        recovery = LedgerJournal(journal.path).recovery
        assert len(recovery.denials) == 1
        assert recovery.spent == 0.0


class TestAdoptRecovery:
    def test_recovered_spend_seeds_ledger_and_transcript(self, journal):
        first = PrivacyLedger(1.0, journal=journal)
        r = first.reserve(0.3, context={"query": "q1", "kind": "wcq"})
        first.charge(
            query_name="q1",
            query_kind="wcq",
            accuracy=ACC,
            mechanism="LM",
            epsilon_upper=0.3,
            epsilon_spent=0.3,
            answer=None,
            reservation=r,
        )
        first.reserve(0.4, context={"query": "q2", "kind": "wcq"})  # in flight
        journal.close()

        reopened = LedgerJournal(journal.path)
        ledger = PrivacyLedger(1.0)
        entries = ledger.adopt_recovery(reopened.recovery)
        assert entries == 2
        assert ledger.spent == pytest.approx(0.7)
        assert ledger.transcript.is_valid(1.0)
        names = [e.query_name for e in ledger.transcript.entries]
        assert any(n.startswith("recovered-inflight:") for n in names)
        ledger.assert_invariants()

    def test_adoption_requires_pristine_ledger(self, journal):
        first = PrivacyLedger(1.0, journal=journal)
        first.reserve(0.3)
        journal.close()
        recovery = LedgerJournal(journal.path).recovery
        used = PrivacyLedger(1.0)
        used.deny(query_name="q", query_kind="wcq", accuracy=ACC)
        with pytest.raises(ApexError, match="pristine"):
            used.adopt_recovery(recovery)

    def test_recovered_spend_beyond_budget_refused(self, journal):
        first = PrivacyLedger(2.0, journal=journal)
        r = first.reserve(1.5)
        first.charge(
            query_name="q",
            query_kind="wcq",
            accuracy=ACC,
            mechanism="LM",
            epsilon_upper=1.5,
            epsilon_spent=1.5,
            answer=None,
            reservation=r,
        )
        journal.close()
        recovery = LedgerJournal(journal.path).recovery
        shrunk = PrivacyLedger(1.0)  # owner restarted with a smaller B
        with pytest.raises(ApexError, match="refusing to restart"):
            shrunk.adopt_recovery(recovery)

    def test_pool_adoption(self, journal):
        first = PrivacyLedger(1.0, journal=journal)
        r = first.reserve(0.3, context={"query": "q1", "kind": "wcq"})
        first.charge(
            query_name="q1",
            query_kind="wcq",
            accuracy=ACC,
            mechanism="LM",
            epsilon_upper=0.3,
            epsilon_spent=0.3,
            answer=None,
            reservation=r,
        )
        journal.close()
        pool = SharedBudgetPool(1.0)
        pool.adopt_recovery(LedgerJournal(journal.path).recovery)
        assert pool.spent == pytest.approx(0.3)
        assert pool.merged_transcript.is_valid(1.0)
        pool.assert_invariants()


class TestInvariants:
    def test_clean_ledger_passes(self):
        ledger = PrivacyLedger(1.0)
        reservation = ledger.reserve(0.4)
        ledger.assert_invariants()
        ledger.release(reservation)
        ledger.assert_invariants()

    def test_orphaned_reservation_detected(self):
        ledger = PrivacyLedger(1.0)
        reservation = ledger.reserve(0.4)
        # Simulate the bug the invariant exists to catch: the reservation
        # object is dropped without release/charge ever deactivating it.
        ledger._active_reservations.pop(id(reservation))
        with pytest.raises(LedgerInvariantError, match="orphaned"):
            ledger.assert_invariants()

    def test_transcript_drift_detected(self):
        ledger = PrivacyLedger(1.0)
        ledger._spent = 0.5  # books say spent, transcript says nothing
        with pytest.raises(LedgerInvariantError, match="transcript"):
            ledger.assert_invariants()


class TestExceptionPathAudit:
    """Any failure between reserve and commit must release the reservation."""

    @pytest.fixture(scope="class")
    def table(self):
        return small_table(800)

    @pytest.mark.parametrize(
        "site",
        [
            "engine.explore.after_reserve",
            "engine.explore.after_run",
            "ledger.charge.before_journal",
        ],
    )
    def test_injected_failure_releases_reservation(self, table, site):
        engine = APExEngine(
            table,
            budget=2.0,
            registry=default_registry(mc_samples=150),
            seed=3,
        )
        ledger = engine._ledger
        with faults.armed(site, "error"):
            with pytest.raises(FaultInjected):
                engine.explore(hist_query(), ACC)
        assert ledger.reserved == 0.0  # nothing orphaned
        assert ledger.spent == 0.0  # nothing charged
        ledger.assert_invariants()
        # the engine is still usable afterwards
        result = engine.explore(hist_query("hist-after"), ACC)
        assert not result.denied
        ledger.assert_invariants()

    def test_session_ledger_pool_refusal_keeps_books_clean(self, tmp_path):
        journal = LedgerJournal(str(tmp_path / "ledger.wal"))
        pool = SharedBudgetPool(0.5)
        # Two sessions, each individually allowed 0.5: the pool is the
        # binding constraint for the second reserve.
        first = SessionLedger(pool, 0.5, "alice", journal=journal)
        second = SessionLedger(pool, 0.5, "bob", journal=journal)
        held = first.reserve(0.4)
        assert held is not None
        refused = second.reserve(0.4)  # share OK, pool says no
        assert refused is None
        second.assert_invariants()
        pool.assert_invariants()
        journal.close()
        # The refused reservation was never journaled: recovery must not
        # conservatively charge an admission that never happened.
        recovery = LedgerJournal(journal.path).recovery
        assert recovery.spent == pytest.approx(0.4)  # only alice's reserve
