"""The failpoint framework: arming, counting, env parsing, actions."""

import time

import pytest

from repro.core.exceptions import FaultInjected
from repro.reliability import faults


class TestArming:
    def test_disarmed_site_is_a_noop(self):
        faults.fail_point("ledger.charge.before_journal")  # must not raise

    def test_unknown_site_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown failpoint site"):
            faults.arm("no.such.site", "error")

    def test_unknown_action_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown failpoint action"):
            faults.arm("store.load.read", "explode")

    def test_error_action_raises_fault_injected(self):
        faults.arm("store.load.read", "error")
        with pytest.raises(FaultInjected):
            faults.fail_point("store.load.read")

    def test_io_error_action_raises_oserror(self):
        faults.arm("store.load.read", "io-error")
        with pytest.raises(OSError):
            faults.fail_point("store.load.read")

    def test_other_sites_stay_unarmed(self):
        faults.arm("store.load.read", "error")
        faults.fail_point("store.save.write")  # must not raise

    def test_count_exhaustion_self_disarms(self):
        faults.arm("store.load.read", "error", count=2)
        for _ in range(2):
            with pytest.raises(FaultInjected):
                faults.fail_point("store.load.read")
        faults.fail_point("store.load.read")  # third hit: disarmed
        assert faults.fault_stats()["store.load.read"] == 2

    def test_armed_context_manager_disarms_on_exit(self):
        with faults.armed("store.load.read", "error"):
            with pytest.raises(FaultInjected):
                faults.fail_point("store.load.read")
        faults.fail_point("store.load.read")

    def test_sleep_action_stalls(self):
        faults.arm("store.lock.acquire", "sleep:0.05")
        start = time.perf_counter()
        faults.fail_point("store.lock.acquire")
        assert time.perf_counter() - start >= 0.05

    def test_invalid_sleep_rejected(self):
        with pytest.raises(ValueError, match="malformed sleep"):
            faults.arm("store.lock.acquire", "sleep:fast")
        with pytest.raises(ValueError, match=">= 0"):
            faults.arm("store.lock.acquire", "sleep:-1")


class TestEnvParsing:
    def test_parses_sites_actions_and_counts(self):
        armed = faults.arm_from_env(
            {
                faults.ENV_VAR: (
                    "ledger.charge.after_journal=crash:1;"
                    "store.load.read=io-error;"
                    "store.lock.acquire=sleep:0.2:3"
                )
            }
        )
        assert armed == [
            "ledger.charge.after_journal",
            "store.load.read",
            "store.lock.acquire",
        ]
        # the sleep entry kept its duration and got count=3
        with pytest.raises(OSError):
            faults.fail_point("store.load.read")

    def test_empty_env_arms_nothing(self):
        assert faults.arm_from_env({}) == []
        assert faults.arm_from_env({faults.ENV_VAR: "  "}) == []

    def test_malformed_entry_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            faults.arm_from_env({faults.ENV_VAR: "just-a-site"})

    def test_catalog_only_contains_known_prefixes(self):
        # every site names an existing module area; a typo here would let a
        # doc reference drift from the code
        prefixes = ("journal.", "ledger.", "engine.", "store.", "service.", "pool.")
        for site in faults.FAILPOINT_SITES:
            assert site.startswith(prefixes)


class TestStats:
    def test_trigger_counts_accumulate_and_reset(self):
        faults.arm("store.load.read", "error", count=3)
        for _ in range(3):
            with pytest.raises(FaultInjected):
                faults.fail_point("store.load.read")
        assert faults.fault_stats() == {"store.load.read": 3}
        faults.reset_fault_stats()
        assert faults.fault_stats() == {}
