"""kill -9 mid-explore, restart over the same journal: the acceptance test.

A real subprocess (:mod:`repro.reliability.crash_worker`) is SIGKILL'd at an
armed failpoint with a reservation in flight; a second incarnation over the
same WAL directory must recover conservatively (never under-count), keep
the merged transcript Theorem 6.2-valid, and -- given identical seeds --
produce bit-identical answers across repeated recoveries.
"""

import json
import shutil

import pytest

from repro.reliability.exerciser import run_worker

BUDGET = 1.5
COMMON = dict(budget=BUDGET, n_rows=400, seed=20190501, mc_samples=150)

SCRIPT = [
    {"op": "explore", "analyst": "a0", "name": "q1"},
    {"op": "explore", "analyst": "a0", "name": "q2"},
]


def events_of(kind, events):
    return [e for e in events if e.get("event") == kind]


class TestKillNineMidExplore:
    @pytest.fixture()
    def crashed_journal(self, tmp_path):
        """A journal left behind by a worker killed between run and charge."""
        journal = str(tmp_path / "ledger.wal")
        rc, events, stderr = run_worker(
            journal,
            SCRIPT,
            failpoints="engine.explore.after_run=crash:1",
            **COMMON,
        )
        assert rc == -9, f"worker should have been SIGKILL'd: rc={rc} {stderr!r}"
        # It died inside the first explore: nothing was ever acknowledged.
        assert events_of("ack", events) == []
        return journal

    def test_recovery_is_conservative_and_valid(self, crashed_journal):
        rc, events, stderr = run_worker(crashed_journal, [], **COMMON)
        assert rc == 0, stderr
        recovered = events_of("recovered", events)[0]
        # The in-flight reservation is charged at its worst case even though
        # no answer was ever released -- over-counting is the safe direction.
        assert recovered["spent"] > 0.0
        assert recovered["spent"] <= BUDGET
        assert recovered["inflight"] == 1
        assert recovered["valid"]

    def test_repeated_recovery_is_bit_identical(self, crashed_journal, tmp_path):
        copies = []
        for name in ("r1", "r2"):
            copy = str(tmp_path / f"{name}.wal")
            shutil.copy2(crashed_journal, copy)
            rc, events, stderr = run_worker(copy, SCRIPT, **COMMON)
            assert rc == 0, stderr
            copies.append(events)
        # Same journal, same seed, same script => identical acknowledgement
        # streams, noisy answers included.
        assert json.dumps(copies[0], sort_keys=True) == json.dumps(
            copies[1], sort_keys=True
        )
        answers = [
            e["answer"]
            for e in events_of("ack", copies[0])
            if e.get("op") == "explore" and "answer" in e
        ]
        assert answers, "recovery should still answer at least one explore"

    def test_no_overspend_across_crash_boundary(self, crashed_journal):
        rc, events, stderr = run_worker(crashed_journal, SCRIPT, **COMMON)
        assert rc == 0, stderr
        for event in events:
            spent = event.get("spent_total", event.get("spent"))
            if spent is not None:
                assert float(spent) <= BUDGET + 1e-9
        done = events_of("done", events)[0]
        assert done["valid"]


class TestCrashDuringJournalAppend:
    @pytest.mark.parametrize(
        "site",
        [
            "journal.append.before_write",
            "journal.append.before_fsync",
            "journal.append.after_fsync",
        ],
    )
    def test_any_append_crash_recovers_cleanly(self, tmp_path, site):
        journal = str(tmp_path / "ledger.wal")
        rc, events, stderr = run_worker(
            journal, SCRIPT, failpoints=f"{site}=crash:1", **COMMON
        )
        assert rc == -9, f"rc={rc} {stderr!r}"
        acked = sum(
            float(e.get("epsilon_spent", 0.0))
            for e in events_of("ack", events)
            if e.get("op") == "explore"
        )
        rc2, events2, stderr2 = run_worker(journal, [], **COMMON)
        assert rc2 == 0, stderr2
        recovered = events_of("recovered", events2)[0]
        assert recovered["valid"]
        assert recovered["spent"] + 1e-9 >= acked  # no under-count
        assert recovered["spent"] <= BUDGET + 1e-9


class TestCrashInsideCommitDrain:
    def test_drain_crash_recovers_conservatively(self, tmp_path):
        """SIGKILL inside the batched-commit drain: the share-level commit
        record hit the WAL before the pool mirror ran, so recovery must
        charge the op (conservative direction) and stay valid."""
        journal = str(tmp_path / "ledger.wal")
        rc, events, stderr = run_worker(
            journal,
            SCRIPT,
            failpoints="pool.commit.drain=crash:1",
            **COMMON,
        )
        assert rc == -9, f"rc={rc} {stderr!r}"
        # The drain runs after the share charge but before the ack.
        assert events_of("ack", events) == []
        rc2, events2, stderr2 = run_worker(journal, [], **COMMON)
        assert rc2 == 0, stderr2
        recovered = events_of("recovered", events2)[0]
        assert recovered["valid"]
        assert 0.0 < recovered["spent"] <= BUDGET
        # Recovered spend is at least the journaled charge: never an
        # under-count across the crash boundary.
        rc3, events3, stderr3 = run_worker(journal, SCRIPT, **COMMON)
        assert rc3 == 0, stderr3
        done = events_of("done", events3)[0]
        assert done["valid"]


class TestCorruptedTailOnStartup:
    def test_garbage_tail_never_fails_startup(self, tmp_path):
        journal = str(tmp_path / "ledger.wal")
        rc, events, stderr = run_worker(
            journal,
            [{"op": "explore", "analyst": "a0", "name": "q1"}],
            **COMMON,
        )
        assert rc == 0, stderr
        with open(journal, "ab") as handle:
            handle.write(b"\x00\xffgarbage torn write")
        rc2, events2, stderr2 = run_worker(journal, [], **COMMON)
        assert rc2 == 0, stderr2
        recovered = events_of("recovered", events2)[0]
        assert recovered["truncated_bytes"] > 0
        assert recovered["valid"]
