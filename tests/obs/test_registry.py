"""Registry battery: naming scheme, collisions, torn-snapshot resistance.

The :class:`~repro.obs.Histogram` torn-read checks mirror the stance of
``tests/concurrency/test_stats_snapshots.py``: writers only ever publish
values for which a sharp cross-field identity holds (every observation is
exactly ``0.5``, a binary fraction), so any snapshot whose aggregates mix
two instants breaks the identity bit-for-bit.
"""

import sys
import threading

import pytest

from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricNameError,
    MetricsRegistry,
    default_metrics,
    flatten_stats,
    metric_name_is_valid,
)
from repro.obs.registry import _HISTOGRAM_SUFFIXES, quantile

#: Preempt aggressively inside snapshot windows (default is 5 ms).
FAST_SWITCH = 1e-5


@pytest.fixture
def aggressive_preemption():
    old = sys.getswitchinterval()
    sys.setswitchinterval(FAST_SWITCH)
    yield
    sys.setswitchinterval(old)


class TestNamingScheme:
    def test_plain_names(self):
        assert metric_name_is_valid("repro_lru_hits")
        assert metric_name_is_valid("repro_engine_budget_remaining")

    def test_labelled_names(self):
        assert metric_name_is_valid('repro_lru_hits{cache="translation"}')
        assert metric_name_is_valid(
            'repro_session_spent{analyst="a-0",table="adult"}'
        )

    def test_rejects_off_scheme_names(self):
        for bad in (
            "lru_hits",  # missing repro_ prefix
            "repro_hits",  # missing subsystem segment
            "repro_Lru_hits",  # upper case
            "repro_lru_hits{}",  # empty label block
            'repro_lru_hits{cache=x}',  # unquoted label value
            'repro_lru_hits{cache="x"',  # unterminated block
        ):
            assert not metric_name_is_valid(bad), bad

    def test_primitive_registration_validates_and_reserves(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total")
        with pytest.raises(MetricNameError):
            registry.counter("repro_test_total")
        with pytest.raises(MetricNameError):
            registry.gauge("repro_test_total")
        with pytest.raises(MetricNameError):
            registry.counter("not_a_metric")

    def test_collector_names_validated_per_snapshot(self):
        registry = MetricsRegistry()
        registry.register_collector("bad", lambda: {"NotValid": 1.0})
        with pytest.raises(MetricNameError):
            registry.snapshot()

    def test_collector_collision_fails_loudly(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc()
        registry.register_collector("dup", lambda: {"repro_test_total": 2.0})
        with pytest.raises(MetricNameError):
            registry.snapshot()
        registry.unregister_collector("dup")
        assert registry.snapshot()["repro_test_total"] == 1.0

    def test_duplicate_collector_subsystem_rejected(self):
        registry = MetricsRegistry()
        registry.register_collector("svc", dict)
        with pytest.raises(MetricNameError):
            registry.register_collector("svc", dict)

    def test_histogram_suffixes_inserted_before_labels(self):
        registry = MetricsRegistry()
        registry.histogram('repro_bench_seconds{phase="run"}').observe(1.0)
        snapshot = registry.snapshot()
        for suffix in _HISTOGRAM_SUFFIXES:
            name = f'repro_bench_seconds_{suffix}{{phase="run"}}'
            assert name in snapshot
            assert metric_name_is_valid(name)

    def test_snapshot_names_unique_and_conformant(self):
        registry = MetricsRegistry()
        registry.counter("repro_test_total").inc(3)
        registry.gauge("repro_test_level").set(0.5)
        registry.histogram("repro_test_seconds").observe(0.25)
        registry.register_collector(
            "svc", lambda: {"repro_svc_requests_total": 7.0}
        )
        snapshot = registry.snapshot()
        assert all(metric_name_is_valid(name) for name in snapshot)
        # Dict keys are unique by construction; the collision check above is
        # what guarantees no series was silently overwritten on the way in.
        assert snapshot["repro_svc_requests_total"] == 7.0
        assert snapshot["repro_test_total"] == 3.0


class TestPrimitives:
    def test_counter_rejects_negative(self):
        counter = Counter("repro_test_total")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_set_and_add(self):
        gauge = Gauge("repro_test_level")
        gauge.set(2.0)
        gauge.add(-0.5)
        assert gauge.value() == 1.5

    def test_histogram_aggregates(self):
        histogram = Histogram("repro_test_seconds")
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.observe(value)
        snap = histogram.snapshot()
        assert snap["count"] == 4.0
        assert snap["sum"] == 10.0
        assert snap["mean"] == 2.5
        assert snap["min"] == 1.0
        assert snap["max"] == 4.0
        assert snap["p50"] == 2.5

    def test_histogram_empty_snapshot_is_zeroes(self):
        snap = Histogram("repro_test_seconds").snapshot()
        assert all(snap[suffix] == 0.0 for suffix in _HISTOGRAM_SUFFIXES)

    def test_histogram_reservoir_is_bounded(self):
        histogram = Histogram("repro_test_seconds", reservoir=8)
        for i in range(100):
            histogram.observe(float(i))
        snap = histogram.snapshot()
        assert snap["count"] == 100.0
        # min/max track the full stream, not just the ring.
        assert snap["min"] == 0.0
        assert snap["max"] == 99.0
        # Quantiles come from the last 8 observations only.
        assert snap["p50"] >= 92.0

    def test_quantile_interpolates(self):
        assert quantile([1.0, 3.0], 0.5) == 2.0
        assert quantile([5.0], 0.95) == 5.0


class TestTornSnapshots:
    def test_constant_observations_pin_all_aggregates(self, aggressive_preemption):
        """Writers observe exactly ``0.5`` forever, so every untorn snapshot
        with ``count > 0`` must satisfy ``mean == min == max == p50 == 0.5``
        and ``sum == 0.5 * count`` exactly (binary fractions)."""
        histogram = Histogram("repro_test_seconds")
        stop = threading.Event()
        errors = []

        def writer():
            while not stop.is_set():
                histogram.observe(0.5)

        writers = [threading.Thread(target=writer) for _ in range(2)]
        for t in writers:
            t.start()
        try:
            seen_nonzero = False
            for _ in range(2_000):
                snap = histogram.snapshot()
                if not snap["count"]:
                    continue
                seen_nonzero = True
                if (
                    snap["mean"] != 0.5
                    or snap["min"] != 0.5
                    or snap["max"] != 0.5
                    or snap["p50"] != 0.5
                    or snap["sum"] != 0.5 * snap["count"]
                ):
                    errors.append(snap)
                    break
        finally:
            stop.set()
            for t in writers:
                t.join()
        assert not errors, errors[:1]
        assert seen_nonzero

    def test_concurrent_increments_are_exact(self, aggressive_preemption):
        counter = Counter("repro_test_total")
        n_threads, n_incs = 4, 5_000
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(n_incs):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value() == float(n_threads * n_incs)

    def test_concurrent_observe_never_loses_a_sample(self, aggressive_preemption):
        histogram = Histogram("repro_test_seconds")
        n_threads, n_obs = 4, 3_000
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(n_obs):
                histogram.observe(0.25)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = histogram.snapshot()
        assert snap["count"] == float(n_threads * n_obs)
        assert snap["sum"] == 0.25 * n_threads * n_obs


class TestFlattenStats:
    def test_nested_mappings_flatten_under_scheme(self):
        out = flatten_stats("cache", {"lru": {"hits": 3, "misses": 1}, "size": 7})
        assert out == {
            "repro_cache_lru_hits": 3.0,
            "repro_cache_lru_misses": 1.0,
            "repro_cache_size": 7.0,
        }
        assert all(metric_name_is_valid(name) for name in out)

    def test_non_numeric_leaves_dropped_and_bools_are_01(self):
        out = flatten_stats(
            "svc", {"policy": "first-come", "valid": True, "path": None, "n": 2}
        )
        assert out == {"repro_svc_valid": 1.0, "repro_svc_n": 2.0}


class TestFacadeMetrics:
    def test_service_as_metrics_names_conform(self):
        from repro.mechanisms.registry import default_registry
        from repro.service import ExplorationService
        from tests.service.util import small_table

        service = ExplorationService(
            small_table(256),
            budget=1.0,
            registry=default_registry(mc_samples=50),
            seed=0,
            batch_window=0.0,
        )
        service.register_analyst("a-0")
        metrics = service.as_metrics()
        assert metrics, "as_metrics() came back empty"
        assert all(metric_name_is_valid(name) for name in metrics)
        assert 'repro_session_share{analyst="a-0"}' in metrics
        assert "repro_translations_built" in metrics

    def test_service_registers_into_a_registry(self):
        from repro.mechanisms.registry import default_registry
        from repro.service import ExplorationService
        from tests.service.util import small_table

        service = ExplorationService(
            small_table(256),
            budget=1.0,
            registry=default_registry(mc_samples=50),
            seed=0,
            batch_window=0.0,
        )
        registry = MetricsRegistry()
        service.register_metrics(registry)
        snapshot = registry.snapshot()
        assert "repro_pool_budget" in snapshot or any(
            name.startswith("repro_pool_") for name in snapshot
        )
        assert all(metric_name_is_valid(name) for name in snapshot)

    def test_default_metrics_is_a_singleton(self):
        assert default_metrics() is default_metrics()
