"""Tracing battery: tree shape, sampling, propagation, batcher coalesce edges."""

import threading
import time

import pytest

from repro.obs.tracing import (
    Tracer,
    annotate,
    bind_current,
    current_span,
    get_tracer,
    install_tracer,
    root_span,
    span,
    span_tree,
)


@pytest.fixture
def tracer():
    installed = Tracer(1.0, keep_traces=32, seed=0)
    previous = install_tracer(installed)
    yield installed
    install_tracer(previous)


@pytest.fixture
def no_tracer():
    previous = install_tracer(None)
    yield
    install_tracer(previous)


class TestSpanTreeShape:
    def test_nested_spans_form_one_tree(self, tracer):
        with root_span("svc.request", analyst="a0") as root:
            with span("svc.step_one") as one:
                with span("svc.inner") as inner:
                    pass
            with span("svc.step_two") as two:
                pass
        (trace,) = tracer.drain()
        by_name = {s["name"]: s for s in trace}
        assert by_name["svc.request"]["parent_id"] is None
        assert by_name["svc.step_one"]["parent_id"] == root.span_id
        assert by_name["svc.inner"]["parent_id"] == one.span_id
        assert by_name["svc.step_two"]["parent_id"] == root.span_id
        assert by_name["svc.request"]["attributes"] == {"analyst": "a0"}
        assert {one.span_id, two.span_id, inner.span_id} <= {
            s["span_id"] for s in trace
        }
        # Spans publish in completion order; the root always lands last.
        assert trace[-1]["name"] == "svc.request"

    def test_span_tree_helper_orders_by_depth_and_start(self, tracer):
        with root_span("svc.request"):
            with span("svc.a"):
                with span("svc.a_child"):
                    pass
            with span("svc.b"):
                pass
        (trace,) = tracer.drain()
        walked = [(depth, s["name"]) for depth, s in span_tree(trace)]
        assert walked == [
            (0, "svc.request"),
            (1, "svc.a"),
            (2, "svc.a_child"),
            (1, "svc.b"),
        ]

    def test_nested_entry_points_degrade_to_one_tree(self, tracer):
        """Stacked root_span calls (async front over service over engine)
        must produce a single trace, not three."""
        with root_span("async.request"):
            with root_span("service.explore"):
                with root_span("engine.explore"):
                    pass
        traces = tracer.drain()
        assert len(traces) == 1
        names = {s["name"] for s in traces[0]}
        assert names == {"async.request", "service.explore", "engine.explore"}
        stats = tracer.stats()
        assert stats["roots_started"] == 1.0
        assert stats["roots_sampled"] == 1.0

    def test_exception_stamps_error_attribute(self, tracer):
        with pytest.raises(RuntimeError):
            with root_span("svc.request"):
                with span("svc.boom"):
                    raise RuntimeError("kaput")
        (trace,) = tracer.drain()
        by_name = {s["name"]: s for s in trace}
        assert by_name["svc.boom"]["attributes"]["error"] == "RuntimeError"
        assert by_name["svc.request"]["attributes"]["error"] == "RuntimeError"
        assert all(s["end"] is not None for s in trace)

    def test_annotate_targets_the_current_span(self, tracer):
        with root_span("svc.request"):
            with span("svc.translate"):
                annotate("cache_tier", "built")
            annotate("outcome", "answered")
        (trace,) = tracer.drain()
        by_name = {s["name"]: s for s in trace}
        assert by_name["svc.translate"]["attributes"] == {"cache_tier": "built"}
        assert by_name["svc.request"]["attributes"] == {"outcome": "answered"}


class TestSamplingAndDisabledPath:
    def test_no_tracer_means_shared_noop(self, no_tracer):
        assert get_tracer() is None
        handle = root_span("svc.request")
        assert handle is span("svc.child")
        with handle as entered:
            assert entered is None
        annotate("key", "value")  # must not raise
        assert current_span() is None

    def test_zero_rate_counts_roots_but_keeps_nothing(self, no_tracer):
        tracer = Tracer(0.0, seed=0)
        install_tracer(tracer)
        for _ in range(5):
            with root_span("svc.request"):
                with span("svc.child"):
                    pass
        assert tracer.drain() == []
        stats = tracer.stats()
        assert stats["roots_started"] == 5.0
        assert stats["roots_sampled"] == 0.0

    def test_head_sampling_keeps_whole_traces(self, no_tracer):
        tracer = Tracer(0.5, seed=7)
        install_tracer(tracer)
        for _ in range(40):
            with root_span("svc.request"):
                with span("svc.child"):
                    pass
        traces = tracer.drain()
        stats = tracer.stats()
        assert 0 < len(traces) < 40
        assert stats["roots_sampled"] == float(len(traces))
        # A kept trace is always complete: sampling is decided at the root.
        for trace in traces:
            assert {s["name"] for s in trace} == {"svc.request", "svc.child"}

    def test_bind_current_returns_fn_unchanged_when_off(self, no_tracer):
        def fn():
            return 42

        assert bind_current(fn) is fn

    def test_invalid_sample_rate_rejected(self):
        with pytest.raises(ValueError):
            Tracer(1.5)

    def test_ring_is_bounded(self, no_tracer):
        tracer = Tracer(1.0, keep_traces=4, seed=0)
        install_tracer(tracer)
        for i in range(10):
            with root_span("svc.request", index=i):
                pass
        traces = tracer.drain()
        assert len(traces) == 4
        assert [t[0]["attributes"]["index"] for t in traces] == [6, 7, 8, 9]


class TestCrossThreadPropagation:
    def test_bind_current_joins_worker_spans_to_the_trace(self, tracer):
        results = []

        def work():
            with span("svc.worker"):
                results.append(current_span().name)

        with root_span("svc.request") as root:
            bound = bind_current(work)
            worker = threading.Thread(target=bound)
            worker.start()
            worker.join()
        (trace,) = tracer.drain()
        by_name = {s["name"]: s for s in trace}
        assert results == ["svc.worker"]
        assert by_name["svc.worker"]["parent_id"] == root.span_id
        assert by_name["svc.worker"]["thread_id"] != root.thread_id

    def test_parallel_executor_map_propagates_context(self, tracer):
        from repro.core.parallel import ParallelExecutor

        def work(index):
            with span("svc.chunk", index=index):
                pass
            return index

        executor = ParallelExecutor(max_workers=2)
        try:
            with root_span("svc.request") as root:
                assert executor.map(work, [0, 1]) == [0, 1]
        finally:
            executor.shutdown()
        (trace,) = tracer.drain()
        chunks = [s for s in trace if s["name"] == "svc.chunk"]
        assert len(chunks) == 2
        assert all(c["parent_id"] == root.span_id for c in chunks)


class TestBatcherCoalesceEdges:
    def test_follower_spans_carry_the_leader_identity(self, tracer):
        """Concurrent submits for one key: the leader's flight records its
        (trace, span) identity, and every follower's ``batch.follower`` span
        is annotated with it -- the coalesce edge the Chrome exporter renders
        as a flow arrow."""
        from repro.service.batching import RequestBatcher

        batcher = RequestBatcher(window=0.0)
        n_followers = 3
        leader_entered = threading.Event()
        release = threading.Event()
        results = []

        def compute():
            leader_entered.set()
            release.wait(2.0)
            return "value"

        def request(index):
            with root_span("service.request", index=index):
                results.append(batcher.submit("key", compute))

        threads = [
            threading.Thread(target=request, args=(i,))
            for i in range(1 + n_followers)
        ]
        threads[0].start()
        leader_entered.wait(2.0)
        for t in threads[1:]:
            t.start()
        # Wait for the followers to actually coalesce onto the flight.
        for _ in range(2_000):
            if batcher.stats()["coalesced"] >= n_followers:
                break
            time.sleep(0.001)
        release.set()
        for t in threads:
            t.join()

        assert results == ["value"] * (1 + n_followers)
        traces = tracer.drain()
        assert len(traces) == 1 + n_followers
        leaders = [
            s
            for trace in traces
            for s in trace
            if s["name"] == "batch.leader"
        ]
        followers = [
            s
            for trace in traces
            for s in trace
            if s["name"] == "batch.follower"
        ]
        assert len(leaders) == 1
        leader = leaders[0]
        assert len(followers) == n_followers
        for follower in followers:
            assert follower["attributes"]["batch.leader_span"] == leader["span_id"]
            assert (
                follower["attributes"]["batch.leader_trace"] == leader["trace_id"]
            )
            # The coalesce edge crosses trace boundaries by design.
            assert follower["trace_id"] != leader["trace_id"]


class TestServiceSpans:
    def test_cold_preview_produces_the_acceptance_chain(self, tracer):
        from repro.mechanisms.registry import default_registry
        from repro.service import ExplorationService
        from repro.core.accuracy import AccuracySpec
        from repro.queries.builders import histogram_workload
        from repro.queries.query import WorkloadCountingQuery
        from tests.service.util import small_table

        service = ExplorationService(
            small_table(256),
            budget=10.0,
            registry=default_registry(mc_samples=50),
            seed=0,
            batch_window=0.0,
        )
        service.register_analyst("a-0")
        query = WorkloadCountingQuery(
            histogram_workload("amount", start=0, stop=10_000, bins=4),
            name="trace-q",
        )
        accuracy = AccuracySpec(alpha=8.0, beta=1e-3)
        service.preview_cost("a-0", query, accuracy)
        (trace,) = tracer.drain()
        names = {s["name"] for s in trace}
        assert {
            "service.preview_cost",
            "service.admission",
            "service.snapshot_pin",
            "batch.leader",
            "engine.preview_cost",
            "engine.translate",
            "workload.matrix_build",
            "wcqsm.search",
        } <= names
        translate = next(s for s in trace if s["name"] == "engine.translate")
        assert translate["attributes"]["cache_tier"] == "built"

        service.explore("a-0", query, accuracy)
        (trace,) = tracer.drain()
        names = {s["name"] for s in trace}
        assert {
            "service.explore",
            "engine.explore",
            "engine.translate",
            "engine.reserve",
            "mechanism.run",
            "engine.commit",
        } <= names
        translate = next(s for s in trace if s["name"] == "engine.translate")
        assert translate["attributes"]["cache_tier"] == "exact"
