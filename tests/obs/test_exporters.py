"""Exporter battery: Prometheus text, JSON snapshots, Chrome trace events."""

import json

from repro.obs import (
    MetricsRegistry,
    chrome_trace_events,
    install_tracer,
    prometheus_text,
    registry_json,
    root_span,
    span,
    write_chrome_trace,
)
from repro.obs.tracing import Tracer


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_test_total").inc(3)
    registry.gauge("repro_test_level").set(0.125)
    registry.histogram("repro_test_seconds").observe(1.0)
    return registry


class TestPrometheusText:
    def test_lines_are_sorted_and_newline_terminated(self):
        text = prometheus_text(_populated_registry())
        lines = text.splitlines()
        assert text.endswith("\n")
        assert lines == sorted(lines)
        assert "repro_test_total 3" in lines

    def test_whole_floats_render_as_integers(self):
        text = prometheus_text(_populated_registry())
        assert "repro_test_total 3" in text.splitlines()
        assert "repro_test_level 0.125" in text.splitlines()

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestRegistryJson:
    def test_snapshot_is_sorted_and_json_serializable(self):
        payload = registry_json(_populated_registry())
        assert list(payload) == sorted(payload)
        assert json.loads(json.dumps(payload)) == payload
        assert payload["repro_test_seconds_count"] == 1.0


def _traced_request(tracer: Tracer) -> list[list[dict]]:
    previous = install_tracer(tracer)
    try:
        with root_span("service.request", analyst="a0"):
            with span("engine.translate", cache_tier="built"):
                pass
    finally:
        install_tracer(previous)
    return tracer.drain()


class TestChromeTraceEvents:
    def test_spans_become_complete_events_rebased_to_zero(self):
        traces = _traced_request(Tracer(1.0, seed=0))
        events = chrome_trace_events(traces)
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        assert min(e["ts"] for e in complete) == 0
        assert all(
            isinstance(e["ts"], int) and isinstance(e["dur"], int)
            for e in complete
        )
        by_name = {e["name"]: e for e in complete}
        assert by_name["engine.translate"]["args"]["cache_tier"] == "built"
        assert by_name["engine.translate"]["cat"] == "engine"
        assert by_name["service.request"]["args"]["parent_id"] is None
        # pid groups by request: both spans share the trace's lane.
        assert by_name["service.request"]["pid"] == by_name["engine.translate"]["pid"]

    def test_coalesce_edges_become_flow_event_pairs(self):
        leader = {
            "trace_id": 1,
            "span_id": 10,
            "parent_id": None,
            "name": "batch.leader",
            "start": 0.0,
            "end": 0.002,
            "thread_id": 111,
            "attributes": {},
        }
        follower = {
            "trace_id": 2,
            "span_id": 20,
            "parent_id": None,
            "name": "batch.follower",
            "start": 0.001,
            "end": 0.002,
            "thread_id": 222,
            "attributes": {"batch.leader_trace": 1, "batch.leader_span": 10},
        }
        events = chrome_trace_events([[leader], [follower]])
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert len(starts) == 1 and len(finishes) == 1
        assert starts[0]["id"] == finishes[0]["id"] == 10
        assert starts[0]["pid"] == 1 and finishes[0]["pid"] == 2
        assert finishes[0]["bp"] == "e"

    def test_follower_without_leader_still_emits_the_finish(self):
        follower = {
            "trace_id": 2,
            "span_id": 20,
            "parent_id": None,
            "name": "batch.follower",
            "start": 0.001,
            "end": 0.002,
            "thread_id": 222,
            "attributes": {"batch.leader_trace": 1, "batch.leader_span": 99},
        }
        events = chrome_trace_events([[follower]])
        assert [e["ph"] for e in events] == ["X", "f"]

    def test_empty_input_yields_no_events(self):
        assert chrome_trace_events([]) == []
        assert chrome_trace_events([[]]) == []


class TestWriteChromeTrace:
    def test_writes_viewer_loadable_payload(self, tmp_path):
        traces = _traced_request(Tracer(1.0, seed=0))
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), traces)
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == count == 2
