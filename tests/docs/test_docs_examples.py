"""Docs stay executable: doctest every ``>>>`` example in README and docs/.

The markdown files double as doctest files (``python -m doctest <file>``
extracts interactive examples from anywhere in the text, fenced code blocks
included).  CI runs the same check as a docs-lint step; this test keeps it
enforced locally, so a refactor that breaks a documented example fails the
tier-1 suite instead of silently rotting the docs.
"""

import doctest
import pathlib

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: Every prose document whose examples must stay runnable.  Files without
#: ``>>>`` examples are still listed: doctest simply finds zero tests, and
#: new examples added later are covered automatically.
DOCUMENTS = sorted(
    [REPO_ROOT / "README.md", *sorted((REPO_ROOT / "docs").glob("*.md"))]
)


@pytest.mark.parametrize("path", DOCUMENTS, ids=lambda p: p.name)
def test_documented_examples_execute(path):
    results = doctest.testfile(
        str(path),
        module_relative=False,
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS,
    )
    assert results.failed == 0, f"{path.name}: {results.failed} failing examples"


def test_the_consistency_contract_has_examples():
    # docs/consistency.md is the contract document; its worked example must
    # exist (an empty doctest run would pass vacuously).
    text = (REPO_ROOT / "docs" / "consistency.md").read_text()
    assert text.count(">>>") >= 5
