"""Tests for the reporting helpers."""

import math

from repro.bench.reporting import (
    format_records,
    format_table,
    records_to_csv,
    summarize_by,
)


RECORDS = [
    {"query": "QW1", "alpha": 0.02, "epsilon": 0.5},
    {"query": "QW1", "alpha": 0.02, "epsilon": 0.7},
    {"query": "QW1", "alpha": 0.08, "epsilon": 0.1},
    {"query": "QW2", "alpha": 0.02, "epsilon": 2.0},
]


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table([[1, "abc"], [22, "d"]], ["num", "text"])
        lines = text.splitlines()
        assert lines[0].startswith("num")
        assert len(lines) == 4
        assert all("|" in line for line in lines if "-+-" not in line)

    def test_float_formatting(self):
        text = format_table([[0.000123456, 1234.5678, 0.5]], ["a", "b", "c"])
        assert "0.0001235" in text
        assert "1235" in text
        assert "0.5" in text

    def test_nan_and_zero(self):
        text = format_table([[float("nan"), 0.0]], ["a", "b"])
        assert "nan" in text and "0" in text


class TestFormatRecords:
    def test_empty(self):
        assert format_records([]) == "(no records)"

    def test_columns_default_to_keys(self):
        text = format_records(RECORDS)
        assert "query" in text and "epsilon" in text

    def test_column_subset(self):
        text = format_records(RECORDS, columns=["query"])
        assert "epsilon" not in text


class TestCsv:
    def test_round_trip_shape(self):
        csv = records_to_csv(RECORDS)
        lines = csv.strip().splitlines()
        assert lines[0] == "query,alpha,epsilon"
        assert len(lines) == 5

    def test_empty(self):
        assert records_to_csv([]) == ""


class TestSummarize:
    def test_grouping(self):
        summary = summarize_by(RECORDS, ["query", "alpha"], "epsilon")
        assert len(summary) == 3
        qw1_002 = next(s for s in summary if s["query"] == "QW1" and s["alpha"] == 0.02)
        assert qw1_002["count"] == 2
        assert qw1_002["median"] == 0.6
        assert qw1_002["mean"] == 0.6
        assert qw1_002["min"] == 0.5 and qw1_002["max"] == 0.7

    def test_single_value_quantiles(self):
        summary = summarize_by(RECORDS, ["query"], "epsilon")
        qw2 = next(s for s in summary if s["query"] == "QW2")
        assert qw2["q25"] == qw2["q75"] == 2.0

    def test_missing_value_key_skipped(self):
        records = RECORDS + [{"query": "QW3", "alpha": 0.02}]
        summary = summarize_by(records, ["query"], "epsilon")
        assert all(s["query"] != "QW3" for s in summary)

    def test_quartiles_interpolate(self):
        records = [{"g": "x", "v": float(i)} for i in range(1, 6)]
        summary = summarize_by(records, ["g"], "v")[0]
        assert summary["median"] == 3.0
        assert summary["q25"] == 2.0
        assert summary["q75"] == 4.0
        assert not math.isnan(summary["mean"])
