"""Tests for the experiment harness (scaled-down configurations)."""

import threading

import numpy as np
import pytest

from repro.bench.harness import (
    RunTimings,
    ERExperimentConfig,
    ExperimentConfig,
    empirical_error,
    run_figure2,
    run_figure3,
    run_figure4a,
    run_figure4b,
    run_figure4c,
    run_figure5,
    run_figure6,
    run_table2,
)
from repro.bench.queries import build_benchmark
from repro.queries.builders import histogram_workload, point_workload
from repro.queries.query import (
    IcebergCountingQuery,
    TopKCountingQuery,
    WorkloadCountingQuery,
)


@pytest.fixture(scope="module")
def tiny_config():
    config = ExperimentConfig(
        adult_rows=3_000,
        nytaxi_rows=5_000,
        alpha_fractions=(0.08, 0.32),
        n_runs=2,
        mc_samples=300,
    )
    config.build_benchmark()
    return config


class TestEmpiricalError:
    def test_wcq_error(self, toy_table):
        query = WorkloadCountingQuery(point_workload("state", ["A", "B", "C"]))
        truth = query.true_counts(toy_table)
        noisy = truth + np.array([1.0, -2.0, 0.5])
        assert empirical_error(query, toy_table, noisy) == pytest.approx(2.0 / 12)

    def test_icq_error_zero_when_correct(self, toy_table):
        query = IcebergCountingQuery(point_workload("state", ["A", "B", "C"]), threshold=3.5)
        assert empirical_error(query, toy_table, query.true_answer(toy_table)) == 0.0

    def test_icq_error_for_mislabel(self, toy_table):
        query = IcebergCountingQuery(point_workload("state", ["A", "B", "C"]), threshold=3.5)
        # wrongly include A (count 3, distance 0.5) and wrongly exclude C (count 5)
        assert empirical_error(query, toy_table, ["state = A", "state = B"]) == pytest.approx(1.5 / 12)

    def test_tcq_error(self, toy_table):
        query = TopKCountingQuery(point_workload("state", ["A", "B", "C"]), k=1)
        # true top-1 is C (5); reporting A (3) is off by 2
        assert empirical_error(query, toy_table, ["state = A"]) == pytest.approx(2.0 / 12)
        assert empirical_error(query, toy_table, ["state = C"]) == 0.0


class TestFigure2And3:
    def test_figure2_records(self, tiny_config):
        tiny_config.queries = ["QW1", "QI4", "QT1"]
        records = run_figure2(tiny_config)
        tiny_config.queries = None
        assert len(records) == 3 * 2 * 2  # queries x alphas x runs
        for record in records:
            assert record["epsilon"] > 0
            assert record["empirical_error"] < record["alpha_fraction"]

    def test_figure2_error_decreases_with_alpha(self, tiny_config):
        tiny_config.queries = ["QW1"]
        records = run_figure2(tiny_config)
        tiny_config.queries = None
        tight = [r["epsilon"] for r in records if r["alpha_fraction"] == 0.08]
        loose = [r["epsilon"] for r in records if r["alpha_fraction"] == 0.32]
        assert min(tight) > max(loose)

    def test_figure3_f1_in_range(self, tiny_config):
        records = run_figure3(tiny_config, queries=("QI4", "QT1"))
        assert records
        assert all(0.0 <= r["f1"] <= 1.0 for r in records)


class TestTable2:
    def test_all_mechanisms_reported(self, tiny_config):
        tiny_config.queries = ["QW2", "QI2", "QT2"]
        records = run_table2(tiny_config, alpha_fractions=(0.08,))
        tiny_config.queries = None
        by_query = {}
        for record in records:
            by_query.setdefault(record["query"], set()).add(record["mechanism"])
        assert by_query["QW2"] == {"WCQ-LM", "WCQ-SM"}
        assert by_query["QI2"] == {"ICQ-LM", "ICQ-SM", "ICQ-MPM"}
        assert by_query["QT2"] == {"TCQ-LM", "TCQ-LTM"}

    def test_strategy_wins_on_prefix_workload(self, tiny_config):
        tiny_config.queries = ["QW2"]
        records = run_table2(tiny_config, alpha_fractions=(0.08,))
        tiny_config.queries = None
        costs = {r["mechanism"]: r["epsilon_median"] for r in records}
        assert costs["WCQ-SM"] < costs["WCQ-LM"]

    def test_laplace_wins_on_disjoint_histogram(self, tiny_config):
        tiny_config.queries = ["QW1"]
        records = run_table2(tiny_config, alpha_fractions=(0.08,))
        tiny_config.queries = None
        costs = {r["mechanism"]: r["epsilon_median"] for r in records}
        assert costs["WCQ-LM"] < costs["WCQ-SM"]

    def test_ltm_wins_on_multi_attribute_topk(self, tiny_config):
        tiny_config.queries = ["QT2"]
        records = run_table2(tiny_config, alpha_fractions=(0.08,))
        tiny_config.queries = None
        costs = {r["mechanism"]: r["epsilon_median"] for r in records}
        assert costs["TCQ-LTM"] < costs["TCQ-LM"]


class TestFigure4:
    def test_figure4a_shapes(self, tiny_config):
        records = run_figure4a(tiny_config, workload_sizes=(20, 60))
        lm_qw2 = {r["workload_size"]: r["epsilon"] for r in records
                  if r["mechanism"] == "WCQ-LM" and r["template"] == "QW2"}
        lm_qw1 = {r["workload_size"]: r["epsilon"] for r in records
                  if r["mechanism"] == "WCQ-LM" and r["template"] == "QW1"}
        # LM on the cumulative workload grows roughly linearly with L
        assert lm_qw2[60] > 2 * lm_qw2[20]
        # LM on the disjoint histogram barely changes with L
        assert lm_qw1[60] < 1.5 * lm_qw1[20]

    def test_figure4b_shapes(self, tiny_config):
        records = run_figure4b(tiny_config, ks=(5, 10))
        ltm = {r["k"]: r["epsilon"] for r in records
               if r["mechanism"] == "TCQ-LTM" and r["template"] == "QT3"}
        lm = {r["k"]: r["epsilon"] for r in records
              if r["mechanism"] == "TCQ-LM" and r["template"] == "QT3"}
        # LTM cost is linear in k; LM cost is independent of k
        assert ltm[10] == pytest.approx(2 * ltm[5])
        assert lm[10] == pytest.approx(lm[5])

    def test_figure4c_mpm_varies_with_threshold(self, tiny_config):
        records = run_figure4c(tiny_config, threshold_fractions=(0.05, 0.9))
        mpm = {r["threshold_fraction"]: r["epsilon_median"] for r in records
               if r["mechanism"] == "ICQ-MPM"}
        lm = {r["threshold_fraction"]: r["epsilon_median"] for r in records
              if r["mechanism"] == "ICQ-LM"}
        # the baseline cost is flat; MPM's actual cost is data dependent
        assert lm[0.05] == pytest.approx(lm[0.9])
        assert mpm[0.9] < lm[0.9]


class TestERFigures:
    @pytest.fixture(scope="class")
    def er_config(self):
        return ERExperimentConfig(
            n_pairs=400,
            budgets=(0.5, 2.0),
            alpha_fractions=(0.08, 0.32),
            n_runs=1,
            mc_samples=200,
            strategies=("BS1", "MS2"),
        )

    def test_figure5_records(self, er_config):
        records = run_figure5(er_config)
        assert len(records) == 2 * 2 * 1  # strategies x budgets x runs
        for record in records:
            assert 0.0 <= record["quality"] <= 1.0
            assert record["epsilon_spent"] <= record["budget"] + 1e-9

    def test_figure6_records(self, er_config):
        records = run_figure6(er_config)
        assert len(records) == 2 * 2 * 1
        assert {r["figure"] for r in records} == {"6"}


class TestRunTimings:
    def test_mapping_reads_see_the_last_sample(self):
        timings = RunTimings()
        timings["figure2"] = 1.5
        timings["figure2"] = 2.5
        assert timings["figure2"] == 2.5
        assert dict(timings) == {"figure2": 2.5}
        assert len(timings) == 1

    def test_stats_aggregate_every_sample(self):
        timings = RunTimings()
        for value in (1.0, 2.0, 3.0):
            timings["figure2"] = value
        stats = timings.stats()["figure2"]
        assert stats["count"] == 3.0
        assert stats["mean"] == 2.0
        assert stats["min"] == 1.0
        assert stats["max"] == 3.0

    def test_delete_and_clear_drop_the_histograms_too(self):
        timings = RunTimings()
        timings["a"] = 1.0
        timings["b"] = 2.0
        del timings["a"]
        assert "a" not in timings.stats()
        timings.clear()
        assert dict(timings) == {} and timings.stats() == {}

    def test_concurrent_writers_lose_no_samples(self):
        timings = RunTimings()
        n_threads, n_writes = 4, 2_000
        barrier = threading.Barrier(n_threads)

        def writer():
            barrier.wait()
            for _ in range(n_writes):
                timings["service.explore"] = 0.5

        threads = [threading.Thread(target=writer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = timings.stats()["service.explore"]
        assert stats["count"] == float(n_threads * n_writes)
        assert stats["mean"] == 0.5
        assert timings["service.explore"] == 0.5


class TestConfig:
    def test_benchmark_cached(self, tiny_config):
        assert tiny_config.build_benchmark() is tiny_config.build_benchmark()

    def test_selected_subset(self, tiny_config):
        benchmark = tiny_config.build_benchmark()
        tiny_config.queries = ["QW1"]
        assert [e.name for e in tiny_config.selected(benchmark)] == ["QW1"]
        tiny_config.queries = None
        assert len(tiny_config.selected(benchmark)) == 12

    def test_er_config_builds_cache_once(self):
        config = ERExperimentConfig(n_pairs=100)
        table1, cache1 = config.build_table()
        table2, cache2 = config.build_table()
        assert table1 is table2 and cache1 is cache2
