"""Tests for the Table 1 query query_benchmark construction."""

import pytest

from repro.bench.queries import build_benchmark
from repro.queries.query import QueryKind


@pytest.fixture(scope="module")
def query_benchmark():
    return build_benchmark(adult_rows=3_000, nytaxi_rows=5_000, seed=0)


class TestBenchmarkStructure:
    def test_twelve_queries(self, query_benchmark):
        assert len(query_benchmark) == 12
        assert query_benchmark.names == [
            "QW1", "QW2", "QW3", "QW4", "QI1", "QI2", "QI3", "QI4",
            "QT1", "QT2", "QT3", "QT4",
        ]

    def test_kinds(self, query_benchmark):
        assert [entry.kind for entry in query_benchmark] == (
            ["WCQ"] * 4 + ["ICQ"] * 4 + ["TCQ"] * 4
        )
        assert len(query_benchmark.of_kind("ICQ")) == 4

    def test_datasets(self, query_benchmark):
        adult_queries = {e.name for e in query_benchmark if e.dataset == "Adult"}
        assert adult_queries == {"QW1", "QW2", "QI1", "QI2", "QT1", "QT2"}

    def test_table_binding(self, query_benchmark):
        assert query_benchmark.table_for(query_benchmark["QW1"]) is query_benchmark.adult
        assert query_benchmark.table_for(query_benchmark["QW3"]) is query_benchmark.nytaxi

    def test_lookup_by_name(self, query_benchmark):
        assert query_benchmark["QT1"].query.kind is QueryKind.TCQ

    def test_workload_sizes_are_100(self, query_benchmark):
        for name in ("QW1", "QW2", "QI2", "QT1", "QT2", "QT3", "QT4"):
            assert query_benchmark[name].query.workload_size == 100


class TestBenchmarkSensitivities:
    def test_histogram_queries_have_unit_sensitivity(self, query_benchmark):
        schema = query_benchmark.adult.schema
        assert query_benchmark["QW1"].query.sensitivity(schema) == 1.0
        assert query_benchmark["QW4"].query.sensitivity(query_benchmark.nytaxi.schema) == 1.0

    def test_cumulative_histogram_has_high_sensitivity(self, query_benchmark):
        assert query_benchmark["QW2"].query.sensitivity(query_benchmark.adult.schema) == 100.0

    def test_prefix_iceberg_has_high_sensitivity(self, query_benchmark):
        assert query_benchmark["QI1"].query.sensitivity(query_benchmark.adult.schema) == 100.0

    def test_multi_attribute_topk_sensitivity(self, query_benchmark):
        assert query_benchmark["QT2"].query.sensitivity(query_benchmark.adult.schema) == 74.0
        assert query_benchmark["QT4"].query.sensitivity(query_benchmark.nytaxi.schema) == 74.0

    def test_iceberg_thresholds_scale_with_data(self, query_benchmark):
        assert query_benchmark["QI1"].query.threshold == pytest.approx(0.1 * len(query_benchmark.adult))
        assert query_benchmark["QI3"].query.threshold == pytest.approx(0.1 * len(query_benchmark.nytaxi))

    def test_topk_k_default(self, query_benchmark):
        assert query_benchmark["QT1"].query.k == 10


class TestBenchmarkAnswers:
    def test_true_answers_computable(self, query_benchmark):
        for entry in query_benchmark:
            table = query_benchmark.table_for(entry)
            answer = entry.query.true_answer(table)
            assert answer is not None

    def test_wcq_counts_bounded_by_table_size(self, query_benchmark):
        for name in ("QW1", "QW2"):
            counts = query_benchmark[name].query.true_counts(query_benchmark.adult)
            assert counts.max() <= len(query_benchmark.adult)

    def test_reusing_prebuilt_tables(self, query_benchmark):
        rebuilt = build_benchmark(adult=query_benchmark.adult, nytaxi=query_benchmark.nytaxi)
        assert rebuilt.adult is query_benchmark.adult
        assert len(rebuilt) == 12
