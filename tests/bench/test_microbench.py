"""Tests for the microbenchmark suite and the timed harness plumbing."""

import json

import numpy as np
import pytest

from repro.bench.harness import RUN_TIMINGS, clear_run_timings, last_run_timings
from repro.bench.microbench import (
    bench_domain_analysis,
    bench_mask_evaluation,
    bench_schema,
    bench_translation_cache,
    build_bench_table,
    build_bench_workload,
)
from repro.bench.reporting import report, write_bench_json


@pytest.fixture(scope="module")
def tiny_table():
    return build_bench_table(800, seed=11)


@pytest.fixture(scope="module")
def tiny_workload():
    return build_bench_workload(16, n_amount_cuts=6)


class TestBenchInputs:
    def test_table_shape_and_nulls(self, tiny_table):
        assert len(tiny_table) == 800
        # NULLs present in both a categorical and a numeric column
        assert tiny_table.null_count("region") > 0
        assert tiny_table.null_count("amount") > 0

    def test_workload_supports_domain_analysis(self, tiny_workload):
        assert tiny_workload.size == 16
        assert tiny_workload.supports_domain_analysis

    def test_workload_deterministic(self):
        first = build_bench_workload(16, n_amount_cuts=6)
        second = build_bench_workload(16, n_amount_cuts=6)
        assert first.predicates == second.predicates


class TestMicrobenchResults:
    def test_mask_evaluation_payload(self, tiny_table, tiny_workload):
        result = bench_mask_evaluation(tiny_table, tiny_workload, repeats=1)
        assert result["n_rows"] == 800
        assert result["n_predicates"] == 16
        assert result["reference_seconds"] > 0
        assert result["vectorized_cold_seconds"] > 0
        assert result["speedup_warm"] >= result["speedup_cold"] * 0.5

    def test_domain_analysis_payload(self, tiny_workload):
        result = bench_domain_analysis(tiny_workload, bench_schema(), repeats=1)
        assert result["parity"] is True
        assert result["n_cells"] >= 1000
        assert result["n_partitions"] > 0

    def test_translation_cache_payload(self, tiny_table):
        workload = build_bench_workload(8, n_amount_cuts=4)
        result = bench_translation_cache(tiny_table, workload, mc_samples=200)
        assert result["translation_cache_hit"] is True
        assert result["matrix_rebuilt_on_second_call"] is False
        assert result["matrix_reused"] is True
        assert result["second_preview_seconds"] <= result["first_preview_seconds"]


class TestReportingHelpers:
    def test_write_bench_json_roundtrip(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        write_bench_json(str(path), {"bench": 1, "speedup": 12.5})
        assert json.loads(path.read_text()) == {"bench": 1, "speedup": 12.5}

    def test_report_prints_summary(self, capsys):
        records = [
            {"group": "a", "value": 1.0},
            {"group": "a", "value": 3.0},
            {"group": "b", "value": 2.0},
        ]
        report("demo", records, ["group"], "value")
        out = capsys.readouterr().out
        assert "=== demo ===" in out
        assert "median" in out


class TestRunTimings:
    def test_timed_decorator_records_wall_clock(self):
        from repro.bench.harness import _timed

        clear_run_timings()

        @_timed("unit-test")
        def slow():
            return sum(range(1000))

        assert slow() == sum(range(1000))
        timings = last_run_timings()
        assert "unit-test" in timings
        assert timings["unit-test"] >= 0.0
        # last_run_timings returns a copy, not the live registry
        timings["unit-test"] = -1.0
        assert RUN_TIMINGS["unit-test"] >= 0.0
        clear_run_timings()

    def test_timings_empty_after_clear(self):
        clear_run_timings()
        assert last_run_timings() == {}


def test_numpy_masks_from_bench_workload_are_boolean(tiny_table, tiny_workload):
    membership = tiny_workload.evaluate(tiny_table)
    assert membership.dtype == np.bool_
    assert membership.shape == (len(tiny_table), tiny_workload.size)
