"""Payload-shape and invariant checks for the BENCH_8 contention suite."""

from repro.bench.contention import (
    bench_commit_batch_latency,
    bench_contended_mixes,
    bench_pinned_version_parity,
    bench_uncontended_hits,
)


class TestContentionPayloads:
    def test_uncontended_hits_payload(self):
        payload = bench_uncontended_hits(n_ops=2_000, repeats=2)
        assert payload["optimistic_hits_per_second"] > 0
        assert payload["locked_hits_per_second"] > 0
        assert payload["speedup"] > 0
        # The hot-key loop must actually ride the optimistic path.
        assert payload["optimistic_hit_fraction"] > 0.99

    def test_contended_mix_payload_is_correct_and_labelled(self):
        results = bench_contended_mixes(
            thread_counts=(1, 2), ops_per_thread=1_500, max_attempts=2
        )
        assert [r["n_threads"] for r in results] == [1, 2]
        for record in results:
            assert record["torn_or_stale_values"] == 0, record["errors"]
            assert record["ops_per_second"] > 0
            assert record["optimistic_hits"] + record["lock_hits"] > 0

    def test_commit_batch_latency_is_exact_and_valid(self):
        payload = bench_commit_batch_latency(n_analysts=4, n_ops=8)
        assert payload["errors"] == []
        assert payload["spend_exact"]
        assert payload["transcript_valid"]
        assert payload["batched_commits"] == 4 * 8
        assert payload["latency_p50_seconds"] <= payload["latency_p99_seconds"]

    def test_pinned_version_parity_is_bit_identical(self):
        payload = bench_pinned_version_parity(500, seed=0, n_threads=2, rounds=20)
        assert payload["bit_identical"]
        assert payload["mask_cache_hits"] > 0
