"""Tests for the in-memory Table."""

import numpy as np
import pytest

from repro.core.exceptions import SchemaError
from repro.data.schema import Attribute, CategoricalDomain, NumericDomain, Schema
from repro.data.table import Table


class TestConstruction:
    def test_from_rows_counts(self, toy_table: Table):
        assert len(toy_table) == 12
        assert toy_table.n_rows == 12

    def test_empty(self, toy_schema):
        table = Table.empty(toy_schema)
        assert len(table) == 0
        assert table.count() == 0

    def test_missing_column_rejected(self, toy_schema):
        with pytest.raises(SchemaError):
            Table(toy_schema, {"state": np.array(["A"], dtype=object)})

    def test_extra_column_rejected(self, toy_schema):
        columns = {
            "state": np.array(["A"], dtype=object),
            "age": np.array([1.0]),
            "income": np.array([1.0]),
            "bogus": np.array([1.0]),
        }
        with pytest.raises(SchemaError):
            Table(toy_schema, columns)

    def test_ragged_columns_rejected(self, toy_schema):
        columns = {
            "state": np.array(["A", "B"], dtype=object),
            "age": np.array([1.0]),
            "income": np.array([1.0, 2.0]),
        }
        with pytest.raises(SchemaError):
            Table(toy_schema, columns)


class TestAccess:
    def test_column_read_only(self, toy_table: Table):
        col = toy_table.column("age")
        with pytest.raises(ValueError):
            col[0] = 999

    def test_unknown_column(self, toy_table: Table):
        with pytest.raises(SchemaError):
            toy_table.column("nope")

    def test_getitem_alias(self, toy_table: Table):
        assert np.array_equal(toy_table["age"], toy_table.column("age"))

    def test_row_roundtrip(self, toy_table: Table):
        row = toy_table.row(0)
        assert row == {"state": "A", "age": 10.0, "income": 100.0}

    def test_row_null_becomes_none(self, toy_table: Table):
        assert toy_table.row(11)["income"] is None

    def test_row_negative_index(self, toy_table: Table):
        assert toy_table.row(-1)["state"] == "C"

    def test_row_out_of_range(self, toy_table: Table):
        with pytest.raises(IndexError):
            toy_table.row(100)

    def test_iter_rows_length(self, toy_table: Table):
        assert len(list(toy_table.iter_rows())) == len(toy_table)


class TestNulls:
    def test_null_count_numeric(self, toy_table: Table):
        assert toy_table.null_count("income") == 1
        assert toy_table.null_count("age") == 0

    def test_is_null_mask_shape(self, toy_table: Table):
        assert toy_table.is_null("income").shape == (12,)

    def test_null_categorical(self, toy_schema):
        table = Table.from_rows(toy_schema, [{"age": 1, "income": 2}])
        assert table.null_count("state") == 1


class TestDerivedTables:
    def test_filter(self, toy_table: Table):
        mask = toy_table.column("age").astype(float) > 50
        filtered = toy_table.filter(mask)
        assert len(filtered) == int(mask.sum())

    def test_filter_wrong_length(self, toy_table: Table):
        with pytest.raises(SchemaError):
            toy_table.filter(np.array([True, False]))

    def test_take_order(self, toy_table: Table):
        taken = toy_table.take([2, 0])
        assert taken.row(0)["age"] == 30.0
        assert taken.row(1)["age"] == 10.0

    def test_sample_size_and_determinism(self, toy_table: Table):
        a = toy_table.sample(5, rng=3)
        b = toy_table.sample(5, rng=3)
        assert len(a) == 5
        assert [r["age"] for r in a.iter_rows()] == [r["age"] for r in b.iter_rows()]

    def test_sample_too_large(self, toy_table: Table):
        with pytest.raises(ValueError):
            toy_table.sample(100)

    def test_sample_negative(self, toy_table: Table):
        with pytest.raises(ValueError):
            toy_table.sample(-1)

    def test_head(self, toy_table: Table):
        assert len(toy_table.head(3)) == 3
        assert len(toy_table.head(100)) == len(toy_table)

    def test_project(self, toy_table: Table):
        projected = toy_table.project(["age"])
        assert projected.schema.attribute_names == ("age",)
        assert len(projected) == len(toy_table)

    def test_concat(self, toy_table: Table):
        combined = toy_table.concat(toy_table)
        assert len(combined) == 2 * len(toy_table)

    def test_concat_schema_mismatch(self, toy_table: Table):
        other_schema = Schema(
            [
                Attribute("x", NumericDomain(0, 1)),
                Attribute("y", CategoricalDomain(["a"])),
            ]
        )
        other = Table.from_rows(other_schema, [])
        with pytest.raises(SchemaError):
            toy_table.concat(other)


class TestCounting:
    def test_count_total(self, toy_table: Table):
        assert toy_table.count() == 12

    def test_count_with_mask(self, toy_table: Table):
        mask = np.zeros(12, dtype=bool)
        mask[:3] = True
        assert toy_table.count(mask) == 3

    def test_count_mask_wrong_length(self, toy_table: Table):
        with pytest.raises(SchemaError):
            toy_table.count(np.array([True]))
