"""Snapshot lifetime: the bounded memo, explicit close(), and the stats.

The request-scoped vs long-lived contract (``docs/consistency.md``): the
table memoises a bounded number of recent versions' snapshots (so
identity-keyed caches stay warm without unbounded pinning), evicted
snapshots keep serving the readers that hold them, and a long-lived holder
releases its pinned shard list explicitly via ``close()``.
"""

import numpy as np
import pytest

from repro.core.exceptions import SnapshotError
from repro.data.table import SNAPSHOT_MEMO_MAX_ENTRIES, Table
from repro.data.schema import Attribute, CategoricalDomain, NumericDomain, Schema
from repro.queries.predicates import Comparison


def make_table() -> Table:
    schema = Schema(
        [
            Attribute("state", CategoricalDomain(("CA", "NY"))),
            Attribute("score", NumericDomain(0, 100)),
        ],
        name="Lifetime",
    )
    rows = [{"state": ("CA", "NY")[i % 2], "score": float(i)} for i in range(20)]
    return Table.from_rows(schema, rows)


def grow(table: Table, n: int = 1) -> None:
    for _ in range(n):
        table.append_rows([{"state": "CA", "score": 1.0}])


class TestBoundedSnapshotMemo:
    def test_memo_is_bounded(self):
        table = make_table()
        held = []
        for _ in range(3 * SNAPSHOT_MEMO_MAX_ENTRIES):
            held.append(table.snapshot())
            grow(table)
        stats = table.snapshot_cache_stats()
        assert stats["live"] <= SNAPSHOT_MEMO_MAX_ENTRIES
        assert stats["evicted"] > 0
        assert stats["max_entries"] == SNAPSHOT_MEMO_MAX_ENTRIES

    def test_evicted_snapshot_keeps_working(self):
        table = make_table()
        old = table.snapshot()
        pinned = int(Comparison("state", "==", "CA").evaluate(old).sum())
        # Newer versions' snapshots push `old` out of the bounded memo.
        for _ in range(2 * SNAPSHOT_MEMO_MAX_ENTRIES):
            grow(table)
            table.snapshot()
        assert table.snapshot_cache_stats()["evicted"] > 0
        assert int(Comparison("state", "==", "CA").evaluate(old).sum()) == pinned
        assert len(old) == 20

    def test_created_and_reused_counters(self):
        table = make_table()
        first = table.snapshot()
        assert table.snapshot() is first
        stats = table.snapshot_cache_stats()
        assert stats["created"] == 1
        assert stats["reused"] >= 1


class TestClose:
    def test_close_of_owned_snapshot_releases_and_poisons_reads(self):
        table = make_table()
        snap = table.open_snapshot()
        snap.close()
        assert snap.closed
        assert table.snapshot_cache_stats()["closed"] == 1
        with pytest.raises(SnapshotError, match="closed"):
            snap.column("state")
        with pytest.raises(SnapshotError, match="closed"):
            Comparison("state", "==", "CA").evaluate(snap)
        with pytest.raises(SnapshotError, match="closed"):
            snap.shard_tables()

    def test_owned_snapshot_is_private(self):
        table = make_table()
        owned = table.open_snapshot()
        assert table.snapshot() is not owned
        assert owned.version_token == table.version_token
        assert int(Comparison("state", "==", "CA").evaluate(owned).sum()) == 10

    def test_close_of_shared_snapshot_only_detaches(self):
        """The memoised snapshot is shared by every reader admitted at its
        version: close() must evict it from the memo (the table stops
        pinning/handing it out) without gutting it under other readers."""
        table = make_table()
        shared = table.snapshot()
        other_reader = table.snapshot()
        assert other_reader is shared
        shared.close()
        assert not shared.closed  # never poisoned: another reader may hold it
        # ...but the table no longer hands it out.
        assert table.snapshot() is not shared
        # The concurrent holder's reads are untouched.
        assert int(Comparison("state", "==", "CA").evaluate(other_reader).sum()) == 10

    def test_close_is_idempotent(self):
        table = make_table()
        for snap in (table.snapshot(), table.open_snapshot()):
            closed_before = table.snapshot_cache_stats()["closed"]
            snap.close()
            snap.close()
            assert table.snapshot_cache_stats()["closed"] == closed_before + 1

    def test_context_manager_closes_on_exit(self):
        table = make_table()
        with table.open_snapshot() as snap:
            counts = np.asarray(snap.column("score"))
            assert len(counts) == 20
        assert snap.closed

    def test_closing_an_old_handle_does_not_disturb_the_live_table(self):
        table = make_table()
        old = table.open_snapshot()
        grow(table)
        current = table.snapshot()
        old.close()
        assert not current.closed
        assert table.snapshot() is current
        assert int(Comparison("state", "==", "CA").evaluate(table).sum()) == 11
