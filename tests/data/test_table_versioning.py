"""Sharded storage, the version token, and per-version cache invalidation."""

import numpy as np
import pytest

from repro.core.exceptions import SchemaError
from repro.data.schema import (
    Attribute,
    CategoricalDomain,
    NumericDomain,
    Schema,
)
from repro.data.table import Table, TableVersion


def make_schema() -> Schema:
    return Schema(
        [
            Attribute("state", CategoricalDomain(("CA", "NY", "TX")), nullable=True),
            Attribute("score", NumericDomain(0, 100), nullable=True),
        ],
        name="Versioned",
    )


def base_rows() -> list[dict]:
    return [
        {"state": "CA", "score": 10.0},
        {"state": "NY", "score": None},
        {"state": None, "score": 55.5},
        {"state": "TX", "score": 99.0},
    ]


def extra_rows() -> list[dict]:
    return [
        {"state": "NY", "score": 1.0},
        {"state": "CA", "score": None},
        {"state": "TX", "score": 42.0},
    ]


class TestVersionToken:
    def test_tokens_are_immutable_hashable_and_distinct_across_tables(self):
        a = Table.from_rows(make_schema(), base_rows())
        b = Table.from_rows(make_schema(), base_rows())
        assert a.version_token != b.version_token
        assert hash(a.version_token) != hash(b.version_token) or True  # hashable
        assert a.version_token == TableVersion(
            a.version_token.table_uid, a.version_token.ordinal
        )
        with pytest.raises(AttributeError):
            a.version_token.ordinal = 99  # frozen dataclass

    def test_append_and_refresh_advance_the_token(self):
        table = Table.from_rows(make_schema(), base_rows())
        v0 = table.version_token
        v1 = table.append_rows(extra_rows())
        assert v1 == table.version_token
        assert v1.table_uid == v0.table_uid
        assert v1.ordinal == v0.ordinal + 1
        v2 = table.refresh(base_rows())
        assert v2.ordinal == v1.ordinal + 1
        assert v0 != v1 != v2

    def test_derived_tables_get_fresh_identity(self):
        table = Table.from_rows(make_schema(), base_rows())
        derived = table.filter(np.array([True, False, True, True]))
        assert derived.version_token.table_uid != table.version_token.table_uid

    def test_clear_caches_does_not_advance_the_version(self):
        table = Table.from_rows(make_schema(), base_rows())
        v0 = table.version_token
        table.clear_caches()
        assert table.version_token == v0


class TestAppendRows:
    def test_append_grows_rows_and_shards_behind_the_same_api(self):
        table = Table.from_rows(make_schema(), base_rows())
        assert table.n_shards == 1
        table.append_rows(extra_rows())
        assert table.n_shards == 2
        assert len(table) == 7
        assert table.shard_sizes == (4, 3)
        expected = Table.from_rows(make_schema(), base_rows() + extra_rows())
        for name in table.schema.attribute_names:
            got, want = table.column(name), expected.column(name)
            for g, w in zip(got, want):
                if isinstance(w, float):
                    assert (np.isnan(g) and np.isnan(w)) or g == w
                else:
                    assert g == w
        assert table.row(5) == expected.row(5)

    def test_appended_columns_stay_frozen(self):
        table = Table.from_rows(make_schema(), base_rows())
        table.append_rows(extra_rows())
        with pytest.raises(ValueError):
            table.column("score")[0] = 1.0

    def test_append_validates_against_schema(self):
        table = Table.from_rows(make_schema(), base_rows())
        with pytest.raises(SchemaError):
            table.append_columns({"state": np.array(["CA"], dtype=object)})

    def test_refresh_replaces_contents(self):
        table = Table.from_rows(make_schema(), base_rows())
        table.append_rows(extra_rows())
        table.refresh(extra_rows())
        assert len(table) == 3
        assert table.n_shards == 1
        assert table.row(0)["state"] == "NY"

    def test_shard_views_are_single_shard_tables_over_the_chunks(self):
        table = Table.from_rows(make_schema(), base_rows())
        table.append_rows(extra_rows())
        views = table.shard_tables()
        assert [len(v) for v in views] == [4, 3]
        assert all(v.n_shards == 1 for v in views)
        # Views built before an append stay valid (shards are immutable).
        table.append_rows(extra_rows())
        new_views = table.shard_tables()
        assert new_views[0] is views[0]
        assert len(new_views) == 3

    def test_count_and_filter_track_grown_rows(self):
        table = Table.from_rows(make_schema(), base_rows())
        table.append_rows(extra_rows())
        mask = ~table.is_null("score")
        assert table.count(mask) == 5
        assert len(table.filter(mask)) == 5


class TestPerVersionCaches:
    def test_mask_lru_misses_after_append(self):
        from repro.queries.predicates import Comparison

        table = Table.from_rows(make_schema(), base_rows())
        predicate = Comparison("state", "==", "CA")
        before = predicate.evaluate(table)
        assert table.cached_mask(predicate) is not None
        assert len(before) == 4
        table.append_rows(extra_rows())
        # The versioned key makes the old entry unreachable...
        assert table.cached_mask(predicate) is None
        # ...and re-evaluation covers the appended rows.
        after = predicate.evaluate(table)
        assert len(after) == 7
        assert int(after.sum()) == int(before.sum()) + 1

    def test_columnar_caches_rebuild_on_new_version(self):
        table = Table.from_rows(make_schema(), base_rows())
        nulls_before = table.null_mask("score")
        codes_before, index_before = table.category_codes("state")
        table.append_rows(extra_rows())
        nulls_after = table.null_mask("score")
        codes_after, _ = table.category_codes("state")
        assert len(nulls_before) == 4 and len(nulls_after) == 7
        assert len(codes_before) == 4 and len(codes_after) == 7
        assert int(nulls_after.sum()) == 2
        assert index_before  # the old snapshot is untouched

    def test_mask_cache_capacity_tracks_grown_row_count(self):
        """The mask LRU's entry cap is a byte budget divided by the row
        count; growing the table must shrink the cap accordingly."""
        from repro.data.table import MASK_CACHE_BYTE_BUDGET

        schema = make_schema()
        n = 40_000
        columns = {
            "state": np.array(["CA"] * n, dtype=object),
            "score": np.ones(n, dtype=float),
        }
        table = Table(schema, dict(columns))
        assert table.mask_cache.max_entries == MASK_CACHE_BYTE_BUDGET // n
        table.append_columns(dict(columns))
        assert table.mask_cache.max_entries == MASK_CACHE_BYTE_BUDGET // (2 * n)

    def test_new_category_values_in_appended_shard_are_interned(self):
        from repro.queries.predicates import Comparison

        table = Table.from_rows(make_schema(), base_rows())
        predicate = Comparison("state", "==", "WY")
        assert int(predicate.evaluate(table).sum()) == 0
        table.append_rows([{"state": "WY", "score": 3.0}])
        assert int(predicate.evaluate(table).sum()) == 1
