"""Tests for attribute domains and schemas."""

import math

import pytest

from repro.core.exceptions import SchemaError
from repro.data.schema import (
    Attribute,
    AttributeKind,
    CategoricalDomain,
    NumericDomain,
    Schema,
    TextDomain,
)


class TestCategoricalDomain:
    def test_size_and_membership(self):
        domain = CategoricalDomain(["a", "b", "c"])
        assert domain.size == 3
        assert "a" in domain
        assert "z" not in domain

    def test_values_are_stringified(self):
        domain = CategoricalDomain([1, 2, 3])
        assert domain.values == ("1", "2", "3")
        assert 1 in domain

    def test_index_of(self):
        domain = CategoricalDomain(["x", "y"])
        assert domain.index_of("y") == 1

    def test_index_of_unknown_raises(self):
        domain = CategoricalDomain(["x"])
        with pytest.raises(SchemaError):
            domain.index_of("nope")

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalDomain([])

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            CategoricalDomain(["a", "a"])

    def test_kind(self):
        assert CategoricalDomain(["a"]).kind is AttributeKind.CATEGORICAL


class TestNumericDomain:
    def test_membership_bounds(self):
        domain = NumericDomain(0, 10)
        assert 0 in domain
        assert 10 in domain
        assert 10.5 not in domain
        assert -1 not in domain

    def test_integral_restriction(self):
        domain = NumericDomain(0, 10, integral=True)
        assert 5 in domain
        assert 5.5 not in domain

    def test_nan_not_member(self):
        assert float("nan") not in NumericDomain(0, 10)

    def test_non_numeric_not_member(self):
        assert "abc" not in NumericDomain(0, 10)

    def test_unbounded_default(self):
        domain = NumericDomain()
        assert not domain.bounded
        assert 1e12 in domain

    def test_invalid_bounds_rejected(self):
        with pytest.raises(SchemaError):
            NumericDomain(10, 5)

    def test_nan_bounds_rejected(self):
        with pytest.raises(SchemaError):
            NumericDomain(math.nan, 10)

    def test_bin_edges(self):
        edges = NumericDomain(0, 10).bin_edges(5)
        assert edges == [0, 2, 4, 6, 8, 10]

    def test_bin_edges_unbounded_needs_high(self):
        with pytest.raises(SchemaError):
            NumericDomain(0).bin_edges(5)
        assert len(NumericDomain(0).bin_edges(5, high=50)) == 6

    def test_bin_edges_invalid_count(self):
        with pytest.raises(SchemaError):
            NumericDomain(0, 10).bin_edges(0)


class TestTextDomain:
    def test_membership(self):
        domain = TextDomain()
        assert "hello" in domain
        assert 5 not in domain

    def test_max_length(self):
        domain = TextDomain(max_length=3)
        assert "abc" in domain
        assert "abcd" not in domain

    def test_kind(self):
        assert TextDomain().kind is AttributeKind.TEXT


class TestAttribute:
    def test_validate_respects_domain(self):
        attr = Attribute("age", NumericDomain(0, 100))
        assert attr.validate(50)
        assert not attr.validate(200)

    def test_nullable(self):
        nullable = Attribute("x", NumericDomain(0, 1), nullable=True)
        strict = Attribute("x", NumericDomain(0, 1), nullable=False)
        assert nullable.validate(None)
        assert not strict.validate(None)

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("  ", NumericDomain(0, 1))


class TestSchema:
    def test_lookup_and_len(self, toy_schema: Schema):
        assert len(toy_schema) == 3
        assert "age" in toy_schema
        assert toy_schema["age"].kind is AttributeKind.NUMERIC

    def test_unknown_attribute_raises(self, toy_schema: Schema):
        with pytest.raises(SchemaError):
            toy_schema["missing"]

    def test_duplicate_names_rejected(self):
        attr = Attribute("a", NumericDomain(0, 1))
        with pytest.raises(SchemaError):
            Schema([attr, attr])

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_project(self, toy_schema: Schema):
        projected = toy_schema.project(["income", "state"])
        assert projected.attribute_names == ("income", "state")

    def test_kind_views(self, toy_schema: Schema):
        assert [a.name for a in toy_schema.categorical_attributes()] == ["state"]
        assert [a.name for a in toy_schema.numeric_attributes()] == ["age", "income"]
        assert toy_schema.text_attributes() == ()

    def test_validate_row(self, toy_schema: Schema):
        good = {"state": "A", "age": 10, "income": 5.0}
        assert toy_schema.validate_row(good) == []
        bad = {"state": "Z", "age": 10, "income": 5.0, "extra": 1}
        problems = toy_schema.validate_row(bad)
        assert "state" in problems and "extra" in problems

    def test_validate_row_missing_is_null(self, toy_schema: Schema):
        problems = toy_schema.validate_row({"state": "A", "age": 10})
        assert problems == ["income"]
