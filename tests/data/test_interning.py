"""The shared append-only category dictionary and per-shard code interning.

Categorical columns are dictionary-encoded per *shard* against one
append-only ``value -> code`` index shared by a table, its shard views and
its snapshots.  The contract: codes are stable for the table's lifetime
(values are only ever added), a shard is interned at most once, and the
parent's per-version code column is a concatenation of per-shard arrays --
so after an append only the new shard pays the interning loop.
"""

import numpy as np

from repro.data.schema import (
    Attribute,
    CategoricalDomain,
    NumericDomain,
    Schema,
)
from repro.data.table import Table
from repro.queries.predicates import Comparison, In


def make_schema() -> Schema:
    return Schema(
        [
            Attribute(
                "state",
                CategoricalDomain(("CA", "NY", "TX", "WY")),
                nullable=True,
            ),
            Attribute("score", NumericDomain(0, 100), nullable=True),
        ],
        name="Interning",
    )


def make_rows(n: int, states=("CA", "NY", None)) -> list[dict]:
    return [
        {"state": states[i % len(states)], "score": float(i % 97)}
        for i in range(n)
    ]


def decode(codes: np.ndarray, index: dict) -> list:
    inverse = {code: value for value, code in index.items()}
    return [None if c == -1 else inverse[int(c)] for c in codes]


class TestSharedDictionary:
    def test_codes_round_trip_across_shards(self):
        table = Table.from_rows(make_schema(), make_rows(9))
        table.append_rows(make_rows(6, states=("TX", "WY")))
        codes, index = table.category_codes("state")
        assert codes.dtype == np.int32
        assert decode(codes, index) == list(table.column("state"))

    def test_append_reuses_old_shard_codes_by_identity(self):
        table = Table.from_rows(make_schema(), make_rows(50))
        table.category_codes("state")
        base_codes = table._shards[0].codes["state"]
        table.append_rows(make_rows(10, states=("TX",)))
        codes, _ = table.category_codes("state")
        # The base shard was NOT re-interned: same array object.
        assert table._shards[0].codes["state"] is base_codes
        assert len(codes) == 60

    def test_index_is_append_only_and_never_rebound(self):
        table = Table.from_rows(make_schema(), make_rows(12))
        _, index_before = table.category_codes("state")
        ca_code = index_before["CA"]
        table.append_rows(make_rows(4, states=("WY",)))
        _, index_after = table.category_codes("state")
        assert index_after is index_before  # one dictionary per table lineage
        assert index_after["CA"] == ca_code  # codes never renumber
        assert "WY" in index_after

    def test_refresh_keeps_the_dictionary(self):
        table = Table.from_rows(make_schema(), make_rows(12))
        _, index = table.category_codes("state")
        ny_code = index["NY"]
        table.refresh(make_rows(5, states=("TX",)))
        codes, index_after = table.category_codes("state")
        assert index_after is index
        assert index_after["NY"] == ny_code  # vanished value keeps its code
        assert ny_code not in codes  # ...and matches no current row

    def test_shard_views_share_the_dictionary_and_code_arrays(self):
        table = Table.from_rows(make_schema(), make_rows(20))
        table.append_rows(make_rows(10, states=("TX", "WY")))
        views = table.shard_tables()
        view_codes, view_index = views[1].category_codes("state")
        parent_codes, parent_index = table.category_codes("state")
        assert view_index is parent_index
        # The view's array IS the per-shard slice the parent concatenated.
        assert view_codes is table._shards[1].codes["state"]
        assert np.array_equal(parent_codes[20:], view_codes)

    def test_snapshots_share_the_dictionary(self):
        table = Table.from_rows(make_schema(), make_rows(15))
        snap = table.snapshot()
        _, snap_index = snap.category_codes("state")
        _, live_index = table.category_codes("state")
        assert snap_index is live_index

    def test_predicates_match_values_interned_by_other_shards(self):
        # A value first seen in shard 2 must be invisible to shard-1-only
        # data and visible on the full table -- regardless of interning order.
        table = Table.from_rows(make_schema(), make_rows(8, states=("CA",)))
        eq_wy = Comparison("state", "==", "WY")
        assert int(eq_wy.evaluate(table).sum()) == 0
        table.append_rows(make_rows(4, states=("WY",)))
        assert int(eq_wy.evaluate(table).sum()) == 4
        assert int(In("state", ["WY", "CA"]).evaluate(table).sum()) == 12

    def test_extra_dictionary_values_do_not_leak_into_matches(self):
        # The shared index may hold values no current row carries; != and IN
        # must still match exactly the rows that carry a *present* value.
        table = Table.from_rows(make_schema(), make_rows(10, states=("CA", "NY")))
        table.category_codes("state")
        table.refresh(make_rows(6, states=("TX", None)))
        ne_tx = Comparison("state", "!=", "TX")
        # NULLs never match; only TX rows exist, so != TX matches nothing.
        assert int(ne_tx.evaluate(table).sum()) == 0
        assert int(In("state", ["CA", "NY"]).evaluate(table).sum()) == 0
