"""Tests for the synthetic Adult, NYTaxi and citation-pair generators."""

import numpy as np
import pytest

from repro.data.adult import ADULT_SCHEMA, generate_adult
from repro.data.citations import (
    CITATION_PAIR_SCHEMA,
    ER_ATTRIBUTE_PAIRS,
    generate_citation_pairs,
    generate_citation_records,
    pairs_to_table,
)
from repro.data.nytaxi import NYTAXI_SCHEMA, generate_nytaxi


class TestAdult:
    def test_default_size_matches_paper(self):
        # do not generate the full table here; just check the default argument
        assert generate_adult.__defaults__[0] == 32_561

    def test_schema_and_rows(self, adult_small):
        assert adult_small.schema is ADULT_SCHEMA
        assert len(adult_small) == 5_000

    def test_deterministic_for_seed(self):
        a = generate_adult(n_rows=500, seed=3)
        b = generate_adult(n_rows=500, seed=3)
        assert np.array_equal(a.column("age"), b.column("age"))
        assert list(a.column("sex")) == list(b.column("sex"))

    def test_different_seed_differs(self):
        a = generate_adult(n_rows=500, seed=3)
        b = generate_adult(n_rows=500, seed=4)
        assert not np.array_equal(a.column("capital_gain"), b.column("capital_gain"))

    def test_capital_gain_is_skewed(self, adult_small):
        gains = adult_small.column("capital_gain").astype(float)
        assert (gains == 0).mean() > 0.8
        assert gains.max() > 5_000

    def test_age_range(self, adult_small):
        ages = adult_small.column("age").astype(float)
        assert ages.min() >= 17
        assert ages.max() <= 90

    def test_values_respect_domains(self, adult_small):
        for attr in ADULT_SCHEMA.categorical_attributes():
            values = set(adult_small.column(attr.name))
            assert values <= set(attr.domain.values)

    def test_sex_marginal_roughly_two_thirds_male(self, adult_small):
        fraction_male = (adult_small.column("sex") == "M").mean()
        assert 0.6 < fraction_male < 0.75


class TestNYTaxi:
    def test_schema_and_rows(self, nytaxi_small):
        assert nytaxi_small.schema is NYTAXI_SCHEMA
        assert len(nytaxi_small) == 10_000

    def test_deterministic_for_seed(self):
        a = generate_nytaxi(n_rows=500, seed=1)
        b = generate_nytaxi(n_rows=500, seed=1)
        assert np.allclose(a.column("trip_distance"), b.column("trip_distance"))

    def test_total_amount_exceeds_fare(self, nytaxi_small):
        fares = nytaxi_small.column("fare_amount").astype(float)
        totals = nytaxi_small.column("total_amount").astype(float)
        assert (totals >= fares).mean() > 0.99

    def test_zone_ids_in_range(self, nytaxi_small):
        for column in ("PUID", "DOID"):
            zones = nytaxi_small.column(column).astype(float)
            assert zones.min() >= 1
            assert zones.max() <= 265

    def test_passenger_count_mostly_one(self, nytaxi_small):
        passengers = nytaxi_small.column("passenger_count").astype(float)
        assert (passengers == 1).mean() > 0.5

    def test_hours_valid(self, nytaxi_small):
        hours = nytaxi_small.column("pickup_hour").astype(float)
        assert hours.min() >= 0 and hours.max() <= 23


class TestCitations:
    def test_pair_count_and_schema(self):
        pairs = generate_citation_pairs(200, seed=0)
        assert len(pairs) == 200
        table = pairs_to_table(pairs)
        assert table.schema is CITATION_PAIR_SCHEMA
        assert len(table) == 200

    def test_match_fraction(self):
        pairs = generate_citation_pairs(1_000, match_fraction=0.2, seed=0)
        matches = sum(1 for p in pairs if p.is_match)
        assert abs(matches - 200) <= 1

    def test_invalid_match_fraction(self):
        with pytest.raises(ValueError):
            generate_citation_pairs(100, match_fraction=1.5)

    def test_labels_consistent(self):
        pairs = generate_citation_pairs(100, seed=0)
        for pair in pairs:
            assert pair.label == ("MATCH" if pair.is_match else "NON-MATCH")

    def test_deterministic(self):
        a = pairs_to_table(generate_citation_pairs(100, seed=5))
        b = pairs_to_table(generate_citation_pairs(100, seed=5))
        assert list(a.column("title_l")) == list(b.column("title_l"))
        assert list(a.column("label")) == list(b.column("label"))

    def test_matches_are_more_similar_than_nonmatches(self, citation_table):
        """MATCH pairs should overlap far more in title vocabulary."""
        labels = np.array([v == "MATCH" for v in citation_table.column("label")])

        def mean_overlap(mask):
            lefts = citation_table.column("title_l")[mask]
            rights = citation_table.column("title_r")[mask]
            scores = []
            for left, right in zip(lefts, rights):
                if left is None or right is None:
                    continue
                a, b = set(left.split()), set(right.split())
                if not a or not b:
                    continue
                scores.append(len(a & b) / len(a | b))
            return np.mean(scores)

        assert mean_overlap(labels) > mean_overlap(~labels) + 0.3

    def test_attribute_pairs_reference_schema(self):
        for _, left, right in ER_ATTRIBUTE_PAIRS:
            assert left in CITATION_PAIR_SCHEMA
            assert right in CITATION_PAIR_SCHEMA

    def test_title_has_fewest_nulls(self):
        table = pairs_to_table(generate_citation_pairs(2_000, seed=0))
        null_counts = {
            logical: table.null_count(left) + table.null_count(right)
            for logical, left, right in ER_ATTRIBUTE_PAIRS
        }
        assert null_counts["title"] < null_counts["venue"]
        assert null_counts["title"] < null_counts["year"]

    def test_record_generation(self):
        rng = np.random.default_rng(0)
        records = generate_citation_records(50, rng)
        assert len(records) == 50
        titled = [r for r in records if r.title is not None]
        assert titled and all(r.title == r.title.lower() for r in titled)
