"""Snapshot-isolated reads: wait-free against concurrent appends, bit-for-bit.

The tentpole contract of the snapshot read path:

* ``Table.snapshot()`` pins the shard list and the version token; nothing a
  concurrent ``append_rows``/``refresh`` does can reach a pinned reader --
  no shape-check errors, no mixed versions, no blocking on writers.
* Every evaluation consumer (predicate masks, ``Workload.evaluate``,
  mechanism runs, ``APExEngine.explore``, the service entry points) answers
  for exactly the version it was admitted at, byte for byte.
* Snapshot-scoped evaluations are always cacheable under the pinned token
  (the mask-LRU admission bugfix).
"""

import threading

import numpy as np
import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.engine import APExEngine
from repro.core.exceptions import SnapshotError
from repro.data.schema import (
    Attribute,
    CategoricalDomain,
    NumericDomain,
    Schema,
)
from repro.data.table import Table, TableSnapshot
from repro.mechanisms.registry import default_registry
from repro.queries.predicates import Between, Comparison
from repro.queries.query import WorkloadCountingQuery
from repro.queries.reference import reference_mask
from repro.queries.workload import Workload


def make_schema() -> Schema:
    return Schema(
        [
            Attribute("state", CategoricalDomain(("CA", "NY", "TX")), nullable=True),
            Attribute("score", NumericDomain(0, 100), nullable=True),
        ],
        name="SnapshotIsolation",
    )


def make_rows(n: int, offset: int = 0) -> list[dict]:
    return [
        {
            "state": ("CA", "NY", "TX", None)[(offset + i) % 4],
            "score": float((offset + 7 * i) % 97),
        }
        for i in range(n)
    ]


def make_workload() -> Workload:
    return Workload(
        [
            Comparison("state", "==", "CA"),
            Between("score", 10.0, 60.0),
            Comparison("score", ">", 80.0),
        ]
    )


ACCURACY = AccuracySpec(alpha=0.5, beta=1e-3)


class TestSnapshotBasics:
    def test_snapshot_pins_version_rows_and_shards(self):
        table = Table.from_rows(make_schema(), make_rows(40))
        snap = table.snapshot()
        assert isinstance(snap, TableSnapshot)
        assert snap.is_snapshot and not table.is_snapshot
        assert snap.version_token == table.version_token
        table.append_rows(make_rows(10, offset=40))
        assert len(snap) == 40
        assert len(table) == 50
        assert snap.version_token != table.version_token
        # The pinned columns are byte-identical to the pre-append state.
        assert len(snap.column("score")) == 40

    def test_snapshot_is_memoised_per_version(self):
        table = Table.from_rows(make_schema(), make_rows(12))
        first = table.snapshot()
        assert table.snapshot() is first
        assert first.snapshot() is first  # snapshot of a snapshot is itself
        table.append_rows(make_rows(4, offset=12))
        second = table.snapshot()
        assert second is not first
        assert table.snapshot() is second

    def test_snapshot_mutators_raise(self):
        table = Table.from_rows(make_schema(), make_rows(8))
        snap = table.snapshot()
        with pytest.raises(SnapshotError):
            snap.append_rows(make_rows(1))
        with pytest.raises(SnapshotError):
            snap.append_columns({})
        with pytest.raises(SnapshotError):
            snap.refresh(make_rows(1))
        with pytest.raises(SnapshotError):
            snap.compact()

    def test_snapshot_derivations_are_mutable_tables(self):
        table = Table.from_rows(make_schema(), make_rows(8))
        snap = table.snapshot()
        derived = snap.filter(np.ones(8, dtype=bool))
        assert not derived.is_snapshot
        derived.append_rows(make_rows(2))  # fresh table, mutation allowed
        assert len(derived) == 10

    def test_snapshot_shares_mask_cache_with_same_version_reads(self):
        table = Table.from_rows(make_schema(), make_rows(30))
        snap = table.snapshot()
        predicate = Comparison("state", "==", "CA")
        mask = predicate.evaluate(snap)
        # Live-table reads at the same version are served the same entry.
        assert table.cached_mask(predicate) is mask
        assert predicate.evaluate(table) is mask

    def test_snapshot_survives_refresh(self):
        table = Table.from_rows(make_schema(), make_rows(20))
        snap = table.snapshot()
        expected = snap.column("score").copy()
        table.refresh(make_rows(5, offset=500))
        assert len(table) == 5
        assert np.array_equal(
            np.nan_to_num(snap.column("score")), np.nan_to_num(expected)
        )

    def test_snapshot_scoped_evaluation_is_always_cached(self):
        """The mask-LRU admission bugfix: an evaluation that runs while a
        mutation lands is snapshot-scoped, so it is cached under the pinned
        token instead of being discarded."""
        table = Table.from_rows(make_schema(), make_rows(25))
        snap = table.snapshot()
        v0 = snap.version_token
        table.append_rows(make_rows(5, offset=25))  # mutation "in flight"
        predicate = Between("score", 10.0, 60.0)
        mask = predicate.evaluate(snap)  # evaluated after the append landed
        assert len(mask) == 25
        assert snap.cached_mask(predicate, v0) is mask  # never discarded
        assert predicate.evaluate(snap) is mask


class TestWaitFreeRace:
    """Background appends racing reads: no errors, answers pin the version."""

    N_APPENDS = 30
    ROWS_PER_APPEND = 20

    def _run_race(self, read_once, table):
        """Drive ``read_once`` in the foreground while appends land."""
        errors: list[BaseException] = []
        stop = threading.Event()

        def appender():
            try:
                for i in range(self.N_APPENDS):
                    table.append_rows(
                        make_rows(self.ROWS_PER_APPEND, offset=1000 + i)
                    )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        thread = threading.Thread(target=appender)
        thread.start()
        try:
            while not stop.is_set():
                read_once()
            read_once()  # once more after the final append
        finally:
            thread.join()
        assert not errors, errors

    def test_workload_evaluation_never_fails_and_pins_its_version(self):
        table = Table.from_rows(make_schema(), make_rows(200))
        workload = make_workload()

        def read_once():
            snap = table.snapshot()
            expected_rows = len(snap)
            counts = workload.true_answers(snap)
            # The counts describe the pinned version: re-counting the same
            # snapshot after any number of appends is bit-for-bit identical.
            assert len(snap) == expected_rows
            assert np.array_equal(counts, workload.true_answers(snap))

        self._run_race(read_once, table)
        # After the race the live table has every appended row.
        assert len(table) == 200 + self.N_APPENDS * self.ROWS_PER_APPEND

    def test_explore_never_fails_under_concurrent_appends(self):
        table = Table.from_rows(make_schema(), make_rows(200))
        engine = APExEngine(
            table, budget=1e9, registry=default_registry(mc_samples=100), seed=3
        )
        query = WorkloadCountingQuery(make_workload(), name="race-wcq")
        results = []

        def read_once():
            result = engine.explore(query, ACCURACY)
            assert result
            assert len(result.noisy_counts) == query.workload_size
            results.append(result)

        self._run_race(read_once, table)
        assert results

    def test_pinned_explore_matches_static_twin_bit_for_bit(self):
        """An explore admitted on a pinned snapshot answers exactly as an
        identical engine over a frozen copy of that version -- even though
        appends land while the mechanism runs."""
        schema = make_schema()
        rows_v0 = make_rows(300)
        live = Table.from_rows(schema, rows_v0)
        frozen = Table.from_rows(schema, rows_v0)
        pinned = live.snapshot()

        live_engine = APExEngine(
            live, budget=1e9, registry=default_registry(mc_samples=100), seed=11
        )
        twin_engine = APExEngine(
            frozen, budget=1e9, registry=default_registry(mc_samples=100), seed=11
        )
        live_query = WorkloadCountingQuery(make_workload(), name="pinned")
        twin_query = WorkloadCountingQuery(make_workload(), name="pinned")

        def read_once():
            live_result = live_engine.explore(
                live_query, ACCURACY, snapshot=pinned
            )
            twin_result = twin_engine.explore(twin_query, ACCURACY)
            assert np.array_equal(
                live_result.noisy_counts, twin_result.noisy_counts
            )
            assert live_result.epsilon_spent == twin_result.epsilon_spent

        self._run_race(read_once, live)
        assert len(live) > len(pinned)

    def test_true_counts_at_pinned_version_match_reference(self):
        table = Table.from_rows(make_schema(), make_rows(150))
        workload = make_workload()
        snap = table.snapshot()
        expected = np.array(
            [reference_mask(p, snap).sum() for p in workload.predicates],
            dtype=float,
        )

        def read_once():
            assert np.array_equal(workload.true_answers(snap), expected)

        self._run_race(read_once, table)


class TestServiceSnapshotAdmission:
    def test_service_explores_race_appends_without_errors(self):
        from repro.service import ExplorationService

        table = Table.from_rows(make_schema(), make_rows(200))
        service = ExplorationService(
            {"t": table},
            budget=1e9,
            registry=default_registry(mc_samples=100),
            seed=7,
            batch_window=0.0,
        )
        service.register_analyst("alice", table="t")
        query = WorkloadCountingQuery(make_workload(), name="svc-race")
        errors: list[BaseException] = []
        stop = threading.Event()

        def appender():
            try:
                for i in range(20):
                    service.append_rows("t", make_rows(25, offset=2000 + i))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        thread = threading.Thread(target=appender)
        thread.start()
        answered = 0
        try:
            # At least three requests, and keep going while appends land.
            while not stop.is_set() or answered < 3:
                service.preview_cost("alice", query, ACCURACY)
                result = service.explore("alice", query, ACCURACY)
                assert result
                answered += 1
        finally:
            thread.join()
        assert not errors, errors
        assert answered >= 1
        assert service.validate()
        assert len(table) == 200 + 20 * 25
