"""Shard compaction: layout-only rewrites under an unchanged version token.

The policy (``COMPACT_MAX_SHARDS`` / ``COMPACT_MIN_FRACTION``) bounds shard
fragmentation under streaming appends; the contract is that compaction may
change *only* the physical layout -- row order, contents, the version token,
and therefore every version-keyed cache, are untouched, and shards large
enough to stand alone keep their warm views and interned codes by identity.
"""

import numpy as np
import pytest

from repro.data.schema import (
    Attribute,
    CategoricalDomain,
    NumericDomain,
    Schema,
)
from repro.data.table import (
    COMPACT_MAX_SHARDS,
    Table,
)
from repro.queries.predicates import Between, Comparison
from repro.queries.workload import Workload


def make_schema() -> Schema:
    return Schema(
        [
            Attribute("state", CategoricalDomain(("CA", "NY", "TX")), nullable=True),
            Attribute("score", NumericDomain(0, 100), nullable=True),
        ],
        name="Compaction",
    )


def make_rows(n: int, offset: int = 0) -> list[dict]:
    return [
        {
            "state": ("CA", "NY", "TX", None)[(offset + i) % 4],
            "score": float((offset + 3 * i) % 97),
        }
        for i in range(n)
    ]


def columns_equal(a: Table, b: Table) -> bool:
    for name in a.schema.attribute_names:
        left, right = a.column(name), b.column(name)
        if len(left) != len(right):
            return False
        if left.dtype == float:
            if not np.array_equal(
                np.nan_to_num(left), np.nan_to_num(right)
            ) or not np.array_equal(np.isnan(left), np.isnan(right)):
                return False
        elif not all(x == y for x, y in zip(left, right)):
            return False
    return True


class TestCompactionPolicy:
    def test_small_tail_shards_merge(self):
        table = Table.from_rows(make_schema(), make_rows(10_000))
        for i in range(5):
            table.append_rows(make_rows(20, offset=i * 20))
        # 20-row appends are far below 1% of ~10k rows: the tail runs merge.
        assert table.n_shards == 2
        assert table.shard_sizes == (10_000, 100)

    def test_balanced_appends_do_not_compact(self):
        table = Table.from_rows(make_schema(), make_rows(100))
        table.append_rows(make_rows(80, offset=100))
        table.append_rows(make_rows(90, offset=180))
        assert table.n_shards == 3  # every shard is >= 1% of the rows

    def test_shard_count_is_bounded(self):
        table = Table.from_rows(make_schema(), make_rows(50))
        for i in range(3 * COMPACT_MAX_SHARDS):
            table.append_rows(make_rows(50, offset=50 * i))
        assert table.n_shards <= COMPACT_MAX_SHARDS

    def test_auto_compact_false_accumulates_shards(self):
        table = Table(
            make_schema(),
            {
                "state": np.array(["CA"] * 1000, dtype=object),
                "score": np.arange(1000, dtype=float),
            },
            auto_compact=False,
        )
        for i in range(8):
            table.append_rows(make_rows(2, offset=i))
        assert table.n_shards == 9
        assert table.compact()  # manual compaction still available
        # Small shards merge into ~threshold-sized groups (here: the 1000-row
        # base stands alone, the 8x2-row tail folds into two groups).
        assert table.shard_sizes == (1000, 12, 4)

    def test_singleton_small_run_is_a_noop(self):
        table = Table.from_rows(make_schema(), make_rows(10_000))
        table.append_rows(make_rows(20, offset=0))
        assert table.n_shards == 2  # nothing adjacent to merge with
        assert table.compact() is False
        assert table.n_shards == 2


class TestCompactionContract:
    def build_fragmented(self, auto_compact: bool) -> Table:
        table = Table(
            make_schema(),
            {
                "state": np.array(
                    [("CA", "NY", "TX", None)[i % 4] for i in range(400)],
                    dtype=object,
                ),
                "score": np.arange(400, dtype=float),
            },
            auto_compact=auto_compact,
        )
        for i in range(12):
            table.append_rows(make_rows(3, offset=100 * i))
        return table

    def test_parity_with_uncompacted_layout(self):
        compacted = self.build_fragmented(auto_compact=True)
        fragmented = self.build_fragmented(auto_compact=False)
        assert compacted.n_shards < fragmented.n_shards
        assert len(compacted) == len(fragmented)
        assert columns_equal(compacted, fragmented)
        workload = Workload(
            [
                Comparison("state", "==", "CA"),
                Between("score", 10.0, 200.0),
                Comparison("score", ">", 300.0),
            ]
        )
        assert np.array_equal(
            workload.evaluate(compacted), workload.evaluate(fragmented)
        )

    def test_compact_preserves_version_token_and_caches(self):
        table = self.build_fragmented(auto_compact=False)
        predicate = Comparison("state", "==", "CA")
        mask = predicate.evaluate(table)
        version = table.version_token
        snap = table.snapshot()
        assert table.compact()
        # Layout changed, nothing else did.
        assert table.version_token == version
        assert columns_equal(table, snap)
        # The cached mask is still row-aligned and still served by identity.
        assert predicate.evaluate(table) is mask
        # Earlier snapshots keep their own pinned (uncompacted) shard list.
        assert snap.n_shards > table.n_shards
        assert np.array_equal(predicate.evaluate(snap), mask)

    def test_compact_refreshes_the_memoised_snapshot(self):
        """New admissions after an explicit compact() must see the merged
        layout (the memoised snapshot is re-pinned), while masks stay warm
        across the re-pin -- same version token, same shared LRU."""
        table = self.build_fragmented(auto_compact=False)
        predicate = Comparison("state", "==", "CA")
        before = table.snapshot()
        mask = predicate.evaluate(before)
        assert table.compact()
        after = table.snapshot()
        assert after is not before
        assert after.n_shards == table.n_shards < before.n_shards
        assert after.version_token == before.version_token
        assert predicate.evaluate(after) is mask  # shared LRU stayed warm

    def test_untouched_large_shards_keep_their_views(self):
        table = self.build_fragmented(auto_compact=False)
        views_before = table.shard_tables()
        base_view = views_before[0]  # the 400-row base shard stands alone
        assert table.compact()
        views_after = table.shard_tables()
        assert views_after[0] is base_view
        assert len(views_after) < len(views_before)

    def test_merged_shards_inherit_interned_codes(self):
        table = self.build_fragmented(auto_compact=False)
        codes_before, index = table.category_codes("state")
        assert table.compact()
        codes_after, index_after = table.category_codes("state")
        assert index_after is index  # shared dictionary, never rebound
        assert np.array_equal(codes_before, codes_after)

    def test_compaction_with_appends_racing_reads(self):
        """Auto-compaction under a pinned reader: the snapshot's masks and
        counts are unaffected by merges happening on the live table."""
        table = Table.from_rows(make_schema(), make_rows(5_000))
        snap = table.snapshot()
        workload = Workload(
            [Comparison("state", "==", "NY"), Between("score", 0.0, 50.0)]
        )
        expected = workload.true_answers(snap)
        for i in range(10):
            table.append_rows(make_rows(5, offset=i))  # triggers compaction
        assert table.n_shards < 11
        assert np.array_equal(workload.true_answers(snap), expected)
