"""Cross-process sharing: a fresh interpreter warm-starts from the store.

The acceptance criterion of the subsystem, pinned as a test (the
``--suite store`` benchmark measures the same scenario at full size): a
restarted process -- fresh interpreter, ``store=`` pointing at the prior
run's directory -- answers a structurally identical ``preview_cost`` with
**zero** matrix rebuilds and **zero** Monte-Carlo re-searches, bit-identical
to the cold result.
"""

import json
import os
import subprocess
import sys

import repro
from repro.bench.microbench import build_bench_table, build_bench_workload
from repro.core.accuracy import AccuracySpec
from repro.core.engine import APExEngine
from repro.mechanisms.registry import default_registry
from repro.queries.query import WorkloadCountingQuery
from repro.queries.workload import clear_matrix_cache
from repro.store import ArtifactStore

N_ROWS = 2_000
N_PREDICATES = 8
N_AMOUNT_CUTS = 4
MC_SAMPLES = 200
SEED = 20190501


def run_worker(store_dir: str) -> dict:
    env = dict(os.environ)
    package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.bench.store_worker",
            "--store",
            store_dir,
            "--rows",
            str(N_ROWS),
            "--predicates",
            str(N_PREDICATES),
            "--amount-cuts",
            str(N_AMOUNT_CUTS),
            "--mc-samples",
            str(MC_SAMPLES),
            "--seed",
            str(SEED),
        ],
        capture_output=True,
        text=True,
        env=env,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    return json.loads(completed.stdout)


class TestWarmStartAcrossProcesses:
    def test_restarted_process_rebuilds_nothing_and_matches_bitwise(self, tmp_path):
        clear_matrix_cache()
        store_dir = str(tmp_path / "store")
        table = build_bench_table(N_ROWS, seed=SEED)
        workload = build_bench_workload(N_PREDICATES, n_amount_cuts=N_AMOUNT_CUTS)
        engine = APExEngine(
            table,
            budget=10.0,
            registry=default_registry(mc_samples=MC_SAMPLES),
            seed=7,
            store=ArtifactStore(store_dir),
        )
        accuracy = AccuracySpec(alpha=0.05 * N_ROWS, beta=5e-4)
        cold = engine.preview_cost(
            WorkloadCountingQuery(workload, name="bench-wcq"), accuracy
        )

        worker = run_worker(store_dir)
        assert worker["matrix_builds"] == 0
        assert worker["mc_searches"] == 0
        assert worker["translation_builds"] == 0
        assert worker["translation_disk_hits"] >= 1
        # JSON round-trips floats exactly: this is bit-identity.
        cold_json = json.loads(
            json.dumps({name: list(pair) for name, pair in cold.items()})
        )
        assert worker["costs"] == cold_json

    def test_subprocess_writes_are_readable_by_the_parent(self, tmp_path):
        """The sharing works in the other direction too: a child process
        populates an empty store, then the parent warm-starts from it."""
        clear_matrix_cache()
        store_dir = str(tmp_path / "store")
        worker = run_worker(store_dir)  # cold in the child: builds + persists
        assert worker["matrix_builds"] >= 1

        from repro.mechanisms.strategy_mechanism import reset_search_stats, search_stats

        clear_matrix_cache()
        reset_search_stats()
        table = build_bench_table(N_ROWS, seed=SEED)
        workload = build_bench_workload(N_PREDICATES, n_amount_cuts=N_AMOUNT_CUTS)
        engine = APExEngine(
            table,
            budget=10.0,
            registry=default_registry(mc_samples=MC_SAMPLES),
            seed=7,
            store=ArtifactStore(store_dir),
        )
        accuracy = AccuracySpec(alpha=0.05 * N_ROWS, beta=5e-4)
        warm = engine.preview_cost(
            WorkloadCountingQuery(workload, name="bench-wcq"), accuracy
        )
        stats = engine.cache_stats()
        assert stats["workload_matrices"]["built"] == 0
        assert search_stats()["searches"] == 0
        warm_json = json.loads(
            json.dumps({name: list(pair) for name, pair in warm.items()})
        )
        assert warm_json == worker["costs"]
