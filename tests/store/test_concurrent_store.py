"""HISTEX-style concurrent exercising of one shared store directory.

Writers, readers, an evicting writer and a corruption injector all hammer
the same :class:`~repro.store.ArtifactStore` (as concurrent processes on a
shared cache directory would).  The invariant is the history one: no thread
ever crashes, and every load returns either ``None`` or a *complete, valid*
artifact -- never a torn or corrupted value.
"""

import threading

import numpy as np

from repro.store import ArtifactStore, stable_digest


def artifact_for(index: int) -> dict:
    """A self-describing artifact whose integrity is checkable on read."""
    values = np.arange(64, dtype=float) * index
    return {"index": index, "values": values, "checksum": float(values.sum())}


def is_intact(loaded: object) -> bool:
    if loaded is None:
        return True  # miss, eviction, or corruption handled as a miss
    if not isinstance(loaded, dict):
        return False
    values = loaded["values"]
    return (
        len(values) == 64
        and float(values.sum()) == loaded["checksum"]
        and bool(np.all(values == np.arange(64, dtype=float) * loaded["index"]))
    )


class TestConcurrentWritersAndReaders:
    N_KEYS = 12
    N_THREADS = 8
    ROUNDS = 25

    def test_history_stays_consistent_under_concurrency(self, tmp_path):
        keys = [stable_digest(("concurrent", i)) for i in range(self.N_KEYS)]
        stores = [
            ArtifactStore(tmp_path / "shared", max_bytes=200_000)
            for _ in range(self.N_THREADS)
        ]
        errors: list[str] = []
        torn: list[object] = []
        barrier = threading.Barrier(self.N_THREADS)

        def worker(thread_index: int) -> None:
            store = stores[thread_index]  # own handle, shared directory
            rng = np.random.default_rng(thread_index)
            try:
                barrier.wait()
                for round_index in range(self.ROUNDS):
                    index = int(rng.integers(self.N_KEYS))
                    key = keys[index]
                    action = (thread_index + round_index) % 3
                    if action == 0:
                        store.save("exercise", key, artifact_for(index))
                    elif action == 1:
                        loaded = store.load("exercise", key)
                        if not is_intact(loaded):
                            torn.append(loaded)
                        elif loaded is not None and loaded["index"] != index:
                            torn.append(loaded)
                    else:
                        # The corruption injector: scribble over the file a
                        # writer may be concurrently replacing.
                        path = store._path("exercise", key)
                        try:
                            with open(path, "r+b") as handle:
                                handle.seek(20)
                                handle.write(b"\x00garbage\x00")
                        except OSError:
                            pass  # absent or mid-rename: nothing to corrupt
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(f"thread-{thread_index}: {type(exc).__name__}: {exc}")

        threads = [
            threading.Thread(target=worker, args=(i,), name=f"store-exercise-{i}")
            for i in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert errors == []
        assert torn == []
        # The directory is still fully usable afterwards.
        survivor = ArtifactStore(tmp_path / "shared")
        key = stable_digest(("post", "exercise"))
        survivor.save("exercise", key, artifact_for(3))
        assert is_intact(survivor.load("exercise", key))

    def test_concurrent_eviction_never_breaks_readers(self, tmp_path):
        """Writers overflow a tiny cap (forcing eviction storms) while
        readers loop over every key; reads stay intact-or-miss throughout."""
        store = ArtifactStore(tmp_path / "tiny", max_bytes=20_000)
        keys = [stable_digest(("evict", i)) for i in range(30)]
        errors: list[str] = []
        stop = threading.Event()

        def writer() -> None:
            try:
                for round_index in range(3):
                    for index, key in enumerate(keys):
                        store.save("exercise", key, artifact_for(index))
            except Exception as exc:  # noqa: BLE001
                errors.append(f"writer: {exc!r}")
            finally:
                stop.set()

        def reader() -> None:
            try:
                while not stop.is_set():
                    for index, key in enumerate(keys):
                        loaded = store.load("exercise", key)
                        if not is_intact(loaded):
                            errors.append(f"torn read at {index}")
                            return
            except Exception as exc:  # noqa: BLE001
                errors.append(f"reader: {exc!r}")

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert store.disk_bytes() <= 20_000
