"""Domain fingerprints and process-stable digests.

The revalidation layer's soundness rests on two properties pinned here:
fingerprints are pure functions of (schema, data at one version) -- equal
across processes, equal across domain-preserving mutations, different after
domain-changing ones -- and the store digests are content-stable (no
``hash()`` salting, no object identity).
"""

import numpy as np
import pytest

from repro.data.schema import (
    Attribute,
    CategoricalDomain,
    NumericDomain,
    Schema,
    TextDomain,
)
from repro.data.table import DomainStamp, Table
from repro.queries.predicates import And, Between, Comparison, FunctionPredicate, In
from repro.store import canonical_form, stable_digest


def make_schema() -> Schema:
    return Schema(
        [
            Attribute("state", CategoricalDomain(("CA", "NY", "TX")), nullable=True),
            Attribute("score", NumericDomain(0, 100), nullable=True),
            Attribute("note", TextDomain()),
        ],
        name="FP",
    )


def make_table(schema=None) -> Table:
    schema = schema or make_schema()
    rows = [
        {"state": ("CA", "NY")[i % 2], "score": float(i % 7), "note": f"n{i}"}
        for i in range(50)
    ]
    return Table.from_rows(schema, rows)


class TestDomainFingerprint:
    def test_pure_function_of_schema_and_data(self):
        schema = make_schema()
        a, b = make_table(schema), make_table(schema)
        for name in ("state", "score", "note"):
            assert a.domain_fingerprint(name) == b.domain_fingerprint(name)

    def test_distinct_per_attribute(self):
        table = make_table()
        assert table.domain_fingerprint("state") != table.domain_fingerprint("score")

    def test_domain_preserving_append_keeps_fingerprints(self):
        table = make_table()
        before = {n: table.domain_fingerprint(n) for n in ("state", "score", "note")}
        table.append_rows([{"state": "CA", "score": 3.0, "note": "zzz"}])
        for name, fingerprint in before.items():
            assert table.domain_fingerprint(name) == fingerprint

    def test_new_categorical_value_changes_fingerprint(self):
        table = make_table()
        before = table.domain_fingerprint("state")
        score_before = table.domain_fingerprint("score")
        table.append_rows([{"state": "TX", "score": 1.0, "note": "x"}])
        assert table.domain_fingerprint("state") != before
        # Numeric fingerprints depend on the declared bounds only.
        assert table.domain_fingerprint("score") == score_before

    def test_first_null_changes_categorical_fingerprint(self):
        schema = make_schema()
        rows = [{"state": "CA", "score": 1.0, "note": "a"}] * 5
        table = Table.from_rows(schema, rows)
        before = table.domain_fingerprint("state")
        table.append_rows([{"state": None, "score": 1.0, "note": "a"}])
        assert table.domain_fingerprint("state") != before

    def test_text_fingerprint_ignores_values(self):
        table = make_table()
        before = table.domain_fingerprint("note")
        table.append_rows([{"state": "CA", "score": 1.0, "note": "never-seen"}])
        assert table.domain_fingerprint("note") == before

    def test_snapshot_shares_fingerprints_and_pins_them(self):
        table = make_table()
        snap = table.snapshot()
        before = snap.domain_fingerprint("state")
        table.append_rows([{"state": "TX", "score": 1.0, "note": "x"}])
        assert snap.domain_fingerprint("state") == before
        assert table.domain_fingerprint("state") != before

    def test_refresh_recomputes_fingerprints(self):
        table = make_table()
        before = table.domain_fingerprint("state")
        table.refresh([{"state": "TX", "score": 1.0, "note": "x"}])
        assert table.domain_fingerprint("state") != before

    def test_compaction_preserves_fingerprints(self):
        table = Table(
            make_schema(),
            {
                "state": np.array(["CA"] * 100, dtype=object),
                "score": np.ones(100),
                "note": np.array(["n"] * 100, dtype=object),
            },
            auto_compact=False,
        )
        for i in range(10):
            table.append_rows([{"state": "NY", "score": float(i), "note": "m"}])
        before = table.domain_fingerprint("state")
        assert table.compact()
        assert table.domain_fingerprint("state") == before


class TestDomainStamp:
    def test_equality_covers_version_and_fingerprints(self):
        table = make_table()
        s1 = table.domain_stamp(["state", "score"])
        s2 = table.domain_stamp(["score", "state"])  # order-insensitive
        assert s1 == s2 and hash(s1) == hash(s2)
        table.append_rows([{"state": "CA", "score": 1.0, "note": "x"}])
        s3 = table.domain_stamp(["state", "score"])
        assert s3 != s1  # version advanced
        assert s3.fingerprints == s1.fingerprints  # ...but domains preserved
        assert s3.domain_key == s1.domain_key

    def test_store_never_affects_equality(self):
        table = make_table()
        s1 = table.domain_stamp(["state"], store=object())
        s2 = table.domain_stamp(["state"])
        assert s1 == s2 and hash(s1) == hash(s2)

    def test_unknown_attributes_are_skipped(self):
        table = make_table()
        stamp = table.domain_stamp(["state", "no-such-column"])
        assert [name for name, _ in stamp.fingerprints] == ["state"]
        assert isinstance(stamp, DomainStamp)


class TestStableDigest:
    def test_digest_is_content_stable(self):
        schema = make_schema()
        predicates = (
            Comparison("state", "==", "CA"),
            And([Between("score", 1.0, 2.0), In("state", ["CA", "NY"])]),
        )
        d1 = stable_digest(("matrix", predicates, schema, 0.05))
        d2 = stable_digest(
            (
                "matrix",
                (
                    Comparison("state", "==", "CA"),
                    And([Between("score", 1.0, 2.0), In("state", ["CA", "NY"])]),
                ),
                make_schema(),
                0.05,
            )
        )
        assert d1 == d2 and len(d1) == 64

    def test_digest_distinguishes_content(self):
        base = (Comparison("state", "==", "CA"),)
        assert stable_digest(base) != stable_digest((Comparison("state", "==", "NY"),))
        assert stable_digest((0.05,)) != stable_digest((0.050000001,))
        assert stable_digest((1,)) != stable_digest((1.0,))
        assert stable_digest((True,)) != stable_digest((1,))

    def test_opaque_objects_disable_the_digest(self):
        opaque = FunctionPredicate("f", lambda table: np.zeros(len(table), bool))
        assert stable_digest(("translation", (opaque,))) is None
        with pytest.raises(TypeError):
            canonical_form(opaque)

    def test_float_encoding_is_exact(self):
        form = canonical_form(0.1 + 0.2)
        assert form == ["f", (0.1 + 0.2).hex()]
