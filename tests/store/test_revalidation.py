"""Fingerprint revalidation: re-tag across domain-preserving appends.

The contract (``docs/store.md``): a mutation that preserves every referenced
attribute domain must never force a rebuild of the data-independent
artifacts -- the workload matrix is re-tagged (same object), the translation
list is re-tagged, and the WCQ-SM Monte-Carlo search is never re-run --
while a domain-changing mutation rebuilds conservatively.  Data-dependent
caches (true counts, histograms) stay strictly version-scoped either way.
"""

import numpy as np
import pytest

from repro.core.accuracy import AccuracySpec
from repro.core.engine import APExEngine
from repro.data.schema import Attribute, CategoricalDomain, NumericDomain, Schema
from repro.data.table import Table
from repro.mechanisms.registry import default_registry
from repro.mechanisms.strategy_mechanism import reset_search_stats, search_stats
from repro.queries.predicates import Between, Comparison
from repro.queries.query import WorkloadCountingQuery
from repro.queries.reference import reference_mask
from repro.queries.workload import (
    Workload,
    clear_matrix_cache,
    matrix_cache_stats,
)

ACCURACY = AccuracySpec(alpha=20.0, beta=1e-3)


def make_schema() -> Schema:
    return Schema(
        [
            Attribute("state", CategoricalDomain(("CA", "NY", "TX")), nullable=True),
            Attribute("score", NumericDomain(0, 100), nullable=True),
        ],
        name="Reval",
    )


def make_table(schema) -> Table:
    rows = [
        {"state": ("CA", "NY")[i % 2], "score": float(i % 97)} for i in range(200)
    ]
    return Table.from_rows(schema, rows)


def make_workload() -> Workload:
    return Workload(
        [
            Comparison("state", "==", "CA"),
            Between("score", 10.0, 60.0),
            Comparison("score", ">", 80.0),
        ]
    )


def preserving_rows(n: int = 30) -> list[dict]:
    return [{"state": "CA", "score": float(3 * i % 100)} for i in range(n)]


@pytest.fixture(autouse=True)
def _fresh_process_wide_caches():
    clear_matrix_cache()
    reset_search_stats()
    yield


class TestMatrixRevalidation:
    def test_preserving_append_retags_the_same_matrix_object(self):
        schema = make_schema()
        table = make_table(schema)
        workload = make_workload()
        first = workload.analyze(schema, version=table.domain_stamp(workload.attributes()))
        assert matrix_cache_stats()["built"] == 1

        table.append_rows(preserving_rows())
        again = workload.analyze(schema, version=table.domain_stamp(workload.attributes()))
        stats = matrix_cache_stats()
        assert again is first  # the *object* is re-tagged, not rebuilt
        assert stats["built"] == 1
        assert stats["revalidated"] == 1

        # The re-tag makes the new version warm at the exact tier.
        third = workload.analyze(schema, version=table.domain_stamp(workload.attributes()))
        assert third is first
        assert matrix_cache_stats()["revalidated"] == 1

    def test_changing_append_rebuilds(self):
        schema = make_schema()
        table = make_table(schema)
        workload = make_workload()
        first = workload.analyze(schema, version=table.domain_stamp(workload.attributes()))
        table.append_rows([{"state": "TX", "score": 1.0}])  # TX never observed
        rebuilt = workload.analyze(schema, version=table.domain_stamp(workload.attributes()))
        stats = matrix_cache_stats()
        assert rebuilt is not first
        assert stats["built"] == 2
        assert stats["revalidated"] == 0
        # Data-independent content is nevertheless identical.
        assert np.array_equal(rebuilt.matrix, first.matrix)

    def test_bare_version_tokens_stay_strictly_version_scoped(self):
        """Callers that pass raw tokens (no stamp) keep the conservative
        pre-store behaviour: every mutation rebuilds."""
        schema = make_schema()
        table = make_table(schema)
        workload = make_workload()
        first = workload.analyze(schema, version=table.version_token)
        table.append_rows(preserving_rows())
        rebuilt = workload.analyze(schema, version=table.version_token)
        assert rebuilt is not first
        assert matrix_cache_stats()["built"] == 2


class TestEngineRevalidation:
    def make_engine(self, table) -> APExEngine:
        return APExEngine(
            table, budget=1e6, registry=default_registry(mc_samples=200), seed=5
        )

    def test_preview_after_preserving_append_runs_zero_searches(self):
        table = make_table(make_schema())
        engine = self.make_engine(table)
        query = WorkloadCountingQuery(make_workload(), name="q")
        first = engine.preview_cost(query, ACCURACY)
        searches_before = search_stats()["searches"]
        assert searches_before >= 1

        table.append_rows(preserving_rows())
        post = engine.preview_cost(WorkloadCountingQuery(make_workload(), name="q"), ACCURACY)
        stats = engine.cache_stats()
        assert post == first
        assert search_stats()["searches"] == searches_before
        assert stats["workload_matrices"]["built"] == 1
        assert stats["translations"]["revalidated"] == 1
        assert stats["translations"]["built"] == 1

    def test_explore_after_preserving_append_reuses_search_but_recounts(self):
        table = make_table(make_schema())
        engine = self.make_engine(table)
        query = WorkloadCountingQuery(make_workload(), name="q")
        tight = AccuracySpec(alpha=0.5, beta=1e-3)  # sub-row noise scale
        first = engine.explore(query, tight)
        searches_before = search_stats()["searches"]

        table.append_rows(preserving_rows())
        second = engine.explore(query, tight)
        # Derivations were revalidated, not rebuilt...
        assert search_stats()["searches"] == searches_before
        assert engine.cache_stats()["workload_matrices"]["built"] == 1
        # ...but the data-dependent answer tracks the grown table.
        truth = np.array(
            [reference_mask(p, table).sum() for p in query.workload.predicates],
            dtype=float,
        )
        assert first and second
        assert np.allclose(second.noisy_counts, truth, atol=1.0)
        assert not np.allclose(first.noisy_counts, second.noisy_counts)

    def test_cache_stats_shape(self, tmp_path):
        from repro.store import ArtifactStore

        table = make_table(make_schema())
        engine = APExEngine(
            table,
            budget=10.0,
            registry=default_registry(mc_samples=200),
            seed=5,
            store=ArtifactStore(tmp_path / "store"),
        )
        engine.preview_cost(WorkloadCountingQuery(make_workload(), name="q"), ACCURACY)
        stats = engine.cache_stats()
        for section in ("translations", "workload_matrices"):
            for key in ("hits", "misses", "built", "revalidated", "disk_hits"):
                assert key in stats[section], (section, key)
        assert set(stats["wcqsm_search"]) == {"searches", "disk_hits", "disk_writes"}
        assert stats["store"]["writes"] >= 1
