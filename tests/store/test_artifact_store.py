"""ArtifactStore: atomic persistence, corruption safety, eviction, stats."""

import os

import numpy as np
import pytest

from repro.store import ArtifactStore, stable_digest


def digest_of(*parts) -> str:
    digest = stable_digest(parts)
    assert digest is not None
    return digest


@pytest.fixture()
def store(tmp_path) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store", max_bytes=1_000_000)


class TestRoundTrip:
    def test_save_load_roundtrip(self, store):
        key = digest_of("matrix", 1)
        payload = {"matrix": np.arange(12.0).reshape(3, 4), "descriptions": ["a"]}
        assert store.save("matrix", key, payload)
        loaded = store.load("matrix", key)
        assert np.array_equal(loaded["matrix"], payload["matrix"])
        assert store.stats()["hits"] == 1

    def test_absent_key_is_a_miss(self, store):
        assert store.load("matrix", digest_of("nope")) is None
        assert store.stats()["misses"] == 1

    def test_kinds_are_namespaced(self, store):
        key = digest_of("shared")
        store.save("matrix", key, {"kind": "matrix"})
        store.save("translation", key, {"kind": "translation"})
        assert store.load("matrix", key)["kind"] == "matrix"
        assert store.load("translation", key)["kind"] == "translation"

    def test_malformed_digest_rejected(self, store):
        with pytest.raises(ValueError):
            store.save("matrix", "../../evil", {})

    def test_unpicklable_artifact_fails_softly(self, store):
        assert not store.save("matrix", digest_of("fn"), lambda: None)


class TestCorruptionSafety:
    def _path_of(self, store, kind, key):
        return store._path(kind, key)

    def test_bit_flip_is_a_silent_miss_and_removed(self, store):
        key = digest_of("victim")
        store.save("matrix", key, {"value": 42})
        path = self._path_of(store, "matrix", key)
        with open(path, "r+b") as handle:
            handle.seek(os.path.getsize(path) // 2)
            handle.write(b"\xff\xff\xff")
        assert store.load("matrix", key) is None
        assert store.stats()["corrupt"] == 1
        assert not os.path.exists(path)
        # The caller rebuilds and re-saves; the store recovers.
        store.save("matrix", key, {"value": 42})
        assert store.load("matrix", key) == {"value": 42}

    def test_truncation_is_a_silent_miss(self, store):
        key = digest_of("short")
        store.save("matrix", key, {"value": list(range(1000))})
        path = self._path_of(store, "matrix", key)
        with open(path, "r+b") as handle:
            handle.truncate(40)
        assert store.load("matrix", key) is None
        assert store.stats()["corrupt"] == 1

    def test_foreign_file_is_a_silent_miss(self, store):
        key = digest_of("foreign")
        path = self._path_of(store, "matrix", key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"not a store file at all")
        assert store.load("matrix", key) is None

    def test_no_partial_files_visible_after_save(self, store):
        key = digest_of("atomic")
        store.save("matrix", key, {"value": 1})
        leftovers = [
            name
            for _, _, names in os.walk(store.root)
            for name in names
            if name.endswith(".tmp")
        ]
        assert leftovers == []


class TestEviction:
    def test_size_cap_evicts_lru(self, tmp_path):
        store = ArtifactStore(tmp_path / "small", max_bytes=8_000)
        keys = [digest_of("artifact", i) for i in range(40)]
        for key in keys:
            store.save("matrix", key, {"blob": b"x" * 400})
        assert store.disk_bytes() <= 8_000
        stats = store.stats()
        assert stats["evicted"] > 0
        assert stats["entries"] < 40
        # The newest artifacts survive.
        assert store.load("matrix", keys[-1]) is not None

    def test_clear_removes_everything(self, store):
        for i in range(5):
            store.save("matrix", digest_of(i), {"i": i})
        store.clear()
        assert store.stats()["entries"] == 0
        assert store.load("matrix", digest_of(0)) is None


class TestSharing:
    def test_two_store_objects_share_one_directory(self, tmp_path):
        """Two ArtifactStore instances (as two processes would hold) read
        each other's writes through the filesystem."""
        writer = ArtifactStore(tmp_path / "shared")
        reader = ArtifactStore(tmp_path / "shared")
        key = digest_of("cross")
        writer.save("wcqsm", key, {"epsilon": 0.25})
        assert reader.load("wcqsm", key) == {"epsilon": 0.25}
